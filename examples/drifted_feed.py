"""Governed ingest: a data contract catches a silently drifting feed.

Run with::

    python examples/drifted_feed.py

A storefront designer puts a :class:`~repro.contracts.DataContract` on
their scheduled products feed — typed fields, canonical-key upserts, a
freshness SLA. The producer then silently changes the feed (a new
column, free-text prices), ships junk rows, and finally goes dark.
The contract layer flags the schema drift within one refresh interval,
quarantines the violating rows without losing them, raises a staleness
alert once the SLA is breached, and — after the designer amends the
contract — replays the quarantine so the recoverable rows load.

The same scenario backs ``python -m repro.cli contracts`` and the X15
benchmark; this script exits non-zero if any invariant fails.
"""

import sys

from repro import Symphony
from repro.contracts.scenario import run_drifted_feed


def main() -> int:
    symphony = Symphony(contracts=True, slo=True)
    report = run_drifted_feed(symphony)
    print(report.render())
    print()
    print(report.status_text)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
