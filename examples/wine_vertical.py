"""The wine connoisseur's search vertical (§I of the paper).

Run with::

    python examples/wine_vertical.py

Claire combines her cellar knowledge with targeted web search, publishes
the vertical to her site, lets visitors' preferences personalize queries
(customer data), and monetizes through referral reporting. The example
also exercises the workbook ("Excel") upload path, the SOAP review
archive, and the supplemental-content recommender.
"""

import json

from repro import Symphony
from repro.analytics import SupplementalRecommender
from repro.services.samples import ReviewArchiveService
from repro.sitesuggest import SiteCooccurrenceGraph, SiteSuggest


def build_cellar_workbook(wines) -> bytes:
    """Claire keeps her cellar in a spreadsheet — upload it as-is."""
    rows = [
        [wine, f"Region {i}", 2000 + (i % 10),
         round(15.0 + 7.5 * i, 2),
         f"elegant {wine} with a long finish"]
        for i, wine in enumerate(wines)
    ]
    return json.dumps({
        "workbook": "cellar",
        "sheets": [
            {"name": "Cellar",
             "header": ["name", "region", "vintage", "price", "notes"],
             "rows": rows},
            {"name": "Wishlist",
             "header": ["name"],
             "rows": [[w] for w in wines[:2]]},
        ],
    }).encode()


def main() -> None:
    symphony = Symphony()
    symphony.bus.register(ReviewArchiveService(web=symphony.web))

    claire = symphony.register_designer("Claire")
    wines = symphony.web.entities["wine"][:10]

    # Upload the "Excel" workbook; Symphony reads the Cellar sheet.
    report = symphony.upload_http(
        claire, "cellar.xlsw", build_cellar_workbook(wines),
        "cellar", content_type="application/x-workbook", sheet="Cellar",
    )
    print(f"Cellar uploaded from workbook: {report.inserted} wines")
    schema = claire.tenant.table("cellar").schema
    print("Inferred schema:",
          {f.name: f.type.value for f in schema.fields})

    # Sources: cellar + wine-site-restricted web search + SOAP reviews.
    cellar = symphony.add_proprietary_source(
        claire, "cellar", search_fields=("name", "notes", "region")
    )
    wine_sites = ("winespectator.example", "cellartracker.example",
                  "vinography.example")
    articles = symphony.add_web_source("Wine articles", "web",
                                       sites=wine_sites)
    archive = symphony.add_service_source(
        "Review archive", "review-archive", "GetAverageScore",
        "entity", item_fields=("entity", "average", "count"),
        title_field="entity",
    )
    customers = symphony.add_customer_source("Visitor preferences")
    customers.set_profile("bold-reds-fan", ("cabernet", "tannin"))

    # Design with the wizard.
    designer = symphony.designer()
    session = designer.new_application("Claire's Cellar",
                                       claire.tenant.tenant_id)
    recommendation = session.run_wizard(tone="professional",
                                        accent_color="#7a1f3d")
    print(f"Wizard chose theme {recommendation['theme']!r}")
    slot = session.drag_source_onto_app(
        cellar.source_id, heading="From the cellar", max_results=3,
        search_fields=("name", "notes", "region"),
    )
    session.add_hyperlink(slot, "name", font_weight="bold")
    session.add_text(slot, "region", color="#888")
    session.add_text(slot, "notes", font_style="italic")
    session.drag_source_onto_result_layout(
        slot, articles.source_id, drive_fields=("name",),
        heading="From around the web", max_results=2,
    )
    session.drag_source_onto_result_layout(
        slot, archive.source_id, drive_fields=("name",),
        heading="Critics", max_results=1,
    )
    session.attach_customer_source(customers.source_id)
    app_id = symphony.host(session)
    symphony.publish_embed(app_id, "http://claires-cellar.example")
    print(f"Hosted as {app_id}")

    # Visitors search; one has a stored preference profile.
    print()
    for visitor, query in (("anonymous", wines[0]),
                           ("bold-reds-fan", wines[0])):
        response = symphony.query(app_id, query, session_id=visitor,
                                  customer_id=visitor)
        rewrite = response.trace.stage("customer-rewrite")
        print(f"[{visitor}] {query!r} ({rewrite.detail})")
        for view in response.views:
            print(f"  * {view.item.get('name')} — "
                  f"{view.item.get('region')}")
            for result in view.supplemental.values():
                for item in result.items:
                    extra = (f"avg {item.fields['average']}"
                             if "average" in item.fields
                             else item.get("site"))
                    print(f"      + {item.title[:44]:<44} {extra}")
            symphony.record_click(app_id, query,
                                  f"http://{wine_sites[0]}/clicked")

    # Monetization: referral compensation for traffic sent to wine sites.
    print()
    print("Referral report (for invoicing the wine sites):")
    print(symphony.referral_report(app_id, rate_per_click=0.08).to_csv())

    # Future-work feature: recommend supplemental sites for her cellar.
    recommender = SupplementalRecommender(
        symphony.engine,
        site_suggest=SiteSuggest(
            SiteCooccurrenceGraph.from_query_log(symphony.engine.log)
        ),
    )
    recommendations = recommender.recommend(
        claire.tenant.table("cellar"), "name", count=4,
        probe_suffix="tasting",
    )
    print("Recommended supplemental sites for the cellar:")
    for rec in recommendations:
        print(f"  {rec.site:<28} coverage={rec.coverage:.2f} "
              f"mean_rank={rec.mean_rank:.1f}")


if __name__ == "__main__":
    main()
