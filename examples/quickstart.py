"""Quickstart: build and query your first search-driven application.

Run with::

    python examples/quickstart.py

This walks the minimum path: stand up a platform, upload a small
proprietary dataset, drag it onto an application together with focused
web search, host the app, and run a customer query.
"""

from repro import Symphony


def main() -> None:
    # One Symphony instance = one platform deployment. It fabricates a
    # deterministic synthetic web and indexes it as the "Bing" substrate.
    symphony = Symphony()
    print("Platform up. Synthetic web:", symphony.web.stats())

    # Register as an application designer; you get a private tenant space.
    ann = symphony.register_designer("Ann")

    # Upload proprietary data (any of csv/tsv/xml/json/workbook/rss).
    games = symphony.web.entities["video_games"][:5]
    csv_rows = ["title,producer,description"]
    csv_rows += [
        f'{game},Studio {i},"A classic {game} experience"'
        for i, game in enumerate(games)
    ]
    report = symphony.upload_http(
        ann, "inventory.csv", "\n".join(csv_rows).encode(),
        "inventory", content_type="text/csv",
    )
    print(f"Uploaded inventory: {report.inserted} records "
          f"(format: {report.format})")

    # Turn the table into a searchable data source, and configure a
    # site-restricted web-search source for supplemental content.
    inventory = symphony.add_proprietary_source(
        ann, "inventory", search_fields=("title", "producer",
                                         "description"),
    )
    reviews = symphony.add_web_source(
        "Game reviews", "web",
        sites=("gamespot.com", "ign.com", "teamxbox.com"),
    )

    # Design the application: no code, just drag-and-drop gestures.
    designer = symphony.designer()
    session = designer.new_application("GamerQueen",
                                       ann.tenant.tenant_id)
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=3,
        search_fields=("title", "producer", "description"),
    )
    session.add_hyperlink(slot, "title")
    session.add_text(slot, "description")
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        heading="Reviews", max_results=2, query_suffix="review",
    )
    print()
    print(session.describe_canvas())

    # Host it and get the copy-pasteable embed snippet.
    app_id = symphony.host(session)
    snippet = symphony.publish_embed(app_id, "http://gamerqueen.example")
    print()
    print("Hosted as", app_id, "— embed snippet:")
    print(snippet.html)

    # A customer searches.
    query = games[0]
    response = symphony.query(app_id, query, session_id="demo")
    print()
    print(f"Customer query: {query!r}")
    print(response.trace.describe())
    for view in response.views:
        print(f"  * {view.item.title}")
        for result in view.supplemental.values():
            for item in result.items:
                print(f"      review: {item.title}  ({item.get('site')})")


if __name__ == "__main__":
    main()
