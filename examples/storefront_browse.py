"""A faceted storefront: richer structured querying in action (§IV).

Run with::

    python examples/storefront_browse.py

The paper's future work includes "supporting richer querying of
structured data". This example drives that surface: typed predicates
with ordering and paging over the proprietary inventory, range filters
in the query language, facet counts, related-search suggestions, CTR-by-
position analytics, and query trends — everything a storefront owner
uses to run the shop.
"""

from repro import Symphony
from repro.analytics.ctr import ctr_by_position
from repro.analytics.trends import compute_trends
from repro.core.structured import StructuredQuery
from repro.searchengine.related import RelatedSearches


def build_inventory(symphony, account, games) -> bytes:
    lines = ["title,genre,price,stock,released,detail_url"]
    genres = ("shooter", "adventure", "puzzle", "strategy")
    for i, game in enumerate(games):
        lines.append(
            f"{game},{genres[i % 4]},{9.99 + 5 * i:.2f},{i % 6},"
            f"200{i % 10}-0{1 + i % 9}-15,"
            f"http://sams-games.example/items/{i}"
        )
    data = "\n".join(lines).encode()
    return symphony.upload_http(account, "inventory.csv", data,
                                "inventory", content_type="text/csv")


def main() -> None:
    symphony = Symphony()
    owner = symphony.register_designer("Sam")
    games = symphony.web.entities["video_games"][:12]
    report = build_inventory(symphony, owner, games)
    print(f"Inventory: {report.inserted} titles")

    inventory = symphony.add_proprietary_source(
        owner, "inventory", search_fields=("title", "genre"))

    # -- Structured browsing: predicates + ordering + paging ----------------
    print("\nIn-stock games under $40, cheapest first:")
    query = (StructuredQuery(limit=4, order_by="price")
             .where("stock", "ge", 1)
             .where("price", "le", 40))
    result = inventory.structured_search(query)
    for item in result.items:
        print(f"  ${item.fields['price']:>6.2f}  "
              f"{item.get('title'):<28} ({item.fields['genre']}, "
              f"{item.fields['stock']} in stock)")
    print(f"  ... {result.total_matches} total matches")

    print("\nPage 2 of the same browse:")
    page2 = inventory.structured_search(StructuredQuery(
        limit=4, offset=4, order_by="price",
    ).where("stock", "ge", 1).where("price", "le", 40))
    for item in page2.items:
        print(f"  ${item.fields['price']:>6.2f}  {item.get('title')}")

    # -- Range filters in the query language --------------------------------
    from repro.core.datasources import SourceQuery
    print("\nQuery-language range filter "
          "'adventure price:[15 TO 45]':")
    ranged = inventory.search(SourceQuery(
        "adventure price:[15 TO 45]", count=10))
    for item in ranged.items:
        print(f"  {item.get('title'):<28} "
              f"${item.fields['price']:.2f}")

    # -- Facets over the web vertical ----------------------------------------
    print("\nWho covers these games? (facets over the web vertical)")
    facets = symphony.engine.facets("web", f'"{games[0]}"', ("site",))
    for facet_count in facets["site"].top(5):
        print(f"  {facet_count.value:<34} {facet_count.count}")

    # -- Build + run the storefront app, generating usage --------------------
    session = symphony.designer().new_application(
        "Sam's Games", owner.tenant.tenant_id)
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Catalog", max_results=3,
        search_fields=("title", "genre"))
    session.add_hyperlink(slot, "title")
    session.add_text(slot, "genre")
    app_id = symphony.host(session)

    day_ms = 86_400_000
    for day, queries in enumerate((
        [games[0], f"{games[0]} review", games[1]],
        [games[0], "adventure", games[2]],
        [games[0], f"{games[0]} cheap", "adventure", games[3]],
    )):
        session_id = f"day-{day}"  # one browsing session per day
        for text in queries:
            response = symphony.query(app_id, text,
                                      session_id=session_id)
            if response.views and response.views[0].item.url:
                symphony.record_click(app_id, text,
                                      response.views[0].item.url,
                                      session_id=session_id)
        symphony.clock.advance(day_ms)

    # -- Analytics: trends, CTR by position, related searches ----------------
    trends = compute_trends(symphony.engine.log, app_id,
                            now_ms=symphony.clock.now_ms,
                            window_days=2)
    print("\nRising queries (last 2 days vs the 2 before):")
    for rising in trends.rising[:3]:
        print(f"  {rising.query:<24} {rising.recent_count} recent / "
              f"{rising.previous_count} before  "
              f"(score {rising.score})")

    print("\nClick-through rate by position:")
    for stats in ctr_by_position(symphony.engine.log, app_id,
                                 max_positions=3):
        print(f"  rank {stats.position}: {stats.clicks}/"
              f"{stats.impressions} = {stats.ctr:.2f}")

    related = RelatedSearches(symphony.engine.log)
    print(f"\nSearches related to {games[0]!r}:")
    for suggestion in related.related(games[0], count=3):
        print(f"  {suggestion.query}  (score {suggestion.score})")


if __name__ == "__main__":
    main()
