"""The complete GamerQueen scenario from §II-B/§II-C of the paper.

Run with::

    python examples/video_game_store.py

Ann, a video game store owner, builds a search experience around her
inventory: primary proprietary content, focused web-search reviews,
a real-time pricing/in-stock service, keyword ads, Facebook publishing,
and the full monetization loop (click logging, ad crediting, referral
report).
"""

from repro import Symphony
from repro.services.samples import PricingService


def build_inventory_csv(games) -> bytes:
    lines = ["title,producer,description,image_url,detail_url"]
    for i, game in enumerate(games):
        lines.append(
            f'{game},Studio {i},"A classic {game} experience for all '
            f'players",http://img.gamerqueen.example/{i}.jpg,'
            f"http://gamerqueen.example/games/{i}"
        )
    return "\n".join(lines).encode()


def main() -> None:
    symphony = Symphony()
    pricing_service = PricingService(seed=42)
    symphony.bus.register(pricing_service)

    # -- Ann registers and uploads her inventory --------------------------
    ann = symphony.register_designer("Ann")
    games = symphony.web.entities["video_games"][:8]
    report = symphony.upload_http(
        ann, "inventory.csv", build_inventory_csv(games),
        "inventory", content_type="text/csv",
        key_field="title", indexed_fields=("title",),
    )
    print(f"Inventory registered: {report.inserted} titles")

    # Keep a couple of titles' pricing under Ann's own control.
    pricing_service.set_price(games[0], 59.99, 12)
    pricing_service.set_price(games[1], 19.99, 0)  # out of stock

    # -- Data sources -------------------------------------------------------
    inventory = symphony.add_proprietary_source(
        ann, "inventory",
        search_fields=("title", "producer", "description"),
        name="GamerQueen inventory",
    )
    reviews = symphony.add_web_source(
        "Game reviews", "web",
        sites=("gamespot.com", "ign.com", "teamxbox.com"),
    )
    trailers = symphony.add_web_source("Trailers", "video")
    pricing = symphony.add_service_source(
        "Live pricing", "pricing", "GET /prices/{sku}", "sku",
        item_fields=("sku", "price", "stock", "in_stock"),
        title_field="sku",
    )
    ads = symphony.add_ad_source("Sponsored", max_ads=2)

    # An advertiser runs a campaign against game keywords.
    advertiser = symphony.ads.create_advertiser("GameCo", 100.0)
    symphony.ads.create_campaign(
        advertiser.advertiser_id,
        keywords=[games[0], games[1], "game"],
        bid_per_click=0.45,
        headline="GameCo Megastore — every title in stock",
        url="http://gameco.example/store",
    )

    # -- Drag-and-drop design (Fig. 1) ---------------------------------------
    designer = symphony.designer()
    session = designer.new_application("GamerQueen",
                                       ann.tenant.tenant_id)
    session.apply_template("storefront")
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=4,
        search_fields=("title", "producer", "description"),
    )
    session.add_hyperlink(slot, "title", href_field="detail_url",
                          font_weight="bold", font_size="16px")
    session.add_image(slot, "image_url")
    session.add_text(slot, "description", color="#444")
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        heading="Reviews from the web", max_results=2,
        query_suffix="review",
    )
    session.drag_source_onto_result_layout(
        slot, trailers.source_id, drive_fields=("title",),
        heading="Trailers", max_results=1,
    )
    session.drag_source_onto_result_layout(
        slot, pricing.source_id, drive_fields=("title",),
        max_results=1,
    )
    session.drag_source_onto_app(ads.source_id, heading="Sponsored")

    issues = session.validate()
    print(f"Design issues: {issues or 'none'}")
    print()
    print(session.describe_canvas())

    # -- Host, embed, publish to Facebook ----------------------------------
    app_id = symphony.host(session)
    snippet = symphony.publish_embed(app_id,
                                     "http://gamerqueen.example")
    publication = symphony.publish_social(app_id, "facebook")
    print()
    print(f"Hosted: {app_id}")
    print(f"Facebook canvas: {publication.location}")
    print("Embed JavaScript (first lines):")
    print("\n".join(snippet.javascript.splitlines()[:3]))

    # -- Customers use the app (Fig. 2) ---------------------------------------
    print()
    for customer, query in (("c1", games[0]), ("c2", games[1]),
                            ("c1", games[0])):
        response = symphony.query(app_id, query, session_id=customer)
        best = response.views[0]
        print(f"[{customer}] {query!r} -> {best.item.title} "
              f"(total {response.trace.total_ms():.1f} ms, "
              f"cache hits {response.trace.cache_hits})")
        for binding_id, result in best.supplemental.items():
            for item in result.items:
                label = item.get("site") or item.get("sku") or ""
                print(f"        + {item.title[:48]:<48} {label}")
        # Customers click through.
        symphony.record_click(app_id, query,
                              best.item.get("detail_url"),
                              session_id=customer)
        for ad in response.ads:
            symphony.record_click(app_id, query, ad.url,
                                  ad_id=ad.get("ad_id"))

    # -- Monetization summaries -------------------------------------------------
    summary = symphony.traffic_summary(app_id)
    print()
    print(f"Traffic: {summary.query_count} queries, "
          f"{summary.click_count} clicks "
          f"({summary.ad_click_count} on ads), "
          f"CTR {summary.click_through_rate:.2f}")
    print(f"Ad earnings credited to Ann: "
          f"${symphony.designer_ad_earnings(app_id):.4f}")
    print("Referral report:")
    print(symphony.referral_report(app_id, rate_per_click=0.05).to_csv())

    # -- Site Suggest -----------------------------------------------------------
    suggestions = symphony.site_suggest(
        ["gamespot.com", "ign.com"], count=3
    )
    print("Site Suggest (seeds: gamespot.com, ign.com):")
    for suggestion in suggestions:
        print(f"  {suggestion.site:<28} score={suggestion.score:.4f}")


if __name__ == "__main__":
    main()
