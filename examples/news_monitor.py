"""A news-monitoring application: RSS + crawling + the news vertical +
application composition.

Run with::

    python examples/news_monitor.py

A media analyst ingests RSS feeds and a focused crawl into private
tables, builds a fresh-news application over the news vertical, then
composes it with a second topic application into a single dashboard —
the paper's future-work item "creating new applications by composing
other applications".
"""

from repro import Symphony
from repro.analytics import compose_applications
from repro.ingest.crawler import CrawlPolicy
from repro.simweb.vocab import topic_vocabulary


def main() -> None:
    symphony = Symphony()
    analyst = symphony.register_designer("Marco")

    # -- Ingest: RSS feeds from two news sites, plus a focused crawl -------
    news_sites = topic_vocabulary("news").sites[:2]
    total = 0
    for domain in news_sites:
        report = symphony.ingest_rss_feed(
            analyst, domain, "feed_items",
            key_field="link", indexed_fields=("link",),
        )
        total += report.inserted + report.updated
    print(f"RSS ingested from {len(news_sites)} feeds: "
          f"{total} items")

    seeds = [p.url for p in symphony.web.pages_on(news_sites[0])[:3]]
    crawl_report = symphony.crawl_into(
        analyst, seeds, "crawled_pages",
        CrawlPolicy(max_pages=12, max_depth=2,
                    allowed_domains=tuple(news_sites)),
    )
    print(f"Crawled {crawl_report.inserted} pages from "
          f"{news_sites[0]}")

    # -- Sources -------------------------------------------------------------
    feed_source = symphony.add_proprietary_source(
        analyst, "feed_items", search_fields=("title", "description"),
        name="Tracked feeds",
    )
    live_news = symphony.add_web_source(
        "Breaking news", "news", freshness_days=90,
    )
    tech_web = symphony.add_web_source(
        "Tech coverage", "web",
        sites=tuple(topic_vocabulary("tech").sites[:3]),
    )

    designer = symphony.designer()

    # -- App 1: the news monitor ------------------------------------------------
    news_session = designer.new_application(
        "Newsroom Monitor", analyst.tenant.tenant_id
    )
    news_session.apply_template("midnight")
    slot = news_session.drag_source_onto_app(
        feed_source.source_id, heading="Tracked headlines",
        max_results=3, search_fields=("title", "description"),
    )
    news_session.add_hyperlink(slot, "title", href_field="link")
    news_session.add_text(slot, "description", font_size="12px")
    news_session.drag_source_onto_result_layout(
        slot, live_news.source_id, drive_fields=("title",),
        heading="Latest coverage", max_results=2,
    )
    news_app = news_session.build()

    # -- App 2: a tech vertical ---------------------------------------------------
    tech_session = designer.new_application(
        "Tech Radar", analyst.tenant.tenant_id
    )
    tech_slot = tech_session.drag_source_onto_app(
        tech_web.source_id, heading="Tech stories", max_results=3,
    )
    tech_session.add_hyperlink(tech_slot, "title")
    tech_session.add_text(tech_slot, "snippet", color="#789")
    tech_app = tech_session.build()

    # -- Compose them into one dashboard -------------------------------------------
    dashboard = compose_applications(
        "Morning Dashboard", analyst.tenant.tenant_id,
        [news_app, tech_app], theme="midnight",
    )
    for app in (news_app, tech_app, dashboard):
        symphony.host(app)
    print(f"Hosted three applications: {symphony.apps.ids()}")

    # -- Query the composed dashboard -----------------------------------------------
    query = "market report"
    response = symphony.query(dashboard.app_id, query,
                              session_id="marco")
    print()
    print(f"Dashboard query: {query!r} "
          f"({response.trace.total_ms():.1f} ms)")
    by_slot: dict = {}
    for view in response.views:
        by_slot.setdefault(view.slot_binding_id, []).append(view)
    for slot_def in dashboard.slots:
        views = by_slot.get(slot_def.binding_id, [])
        print(f"  [{slot_def.heading}] {len(views)} results")
        for view in views[:2]:
            print(f"     * {view.item.title[:60]}")
            for result in view.supplemental.values():
                for item in result.items:
                    print(f"         + {item.title[:56]}")

    # -- Freshness matters for the news vertical --------------------------------------
    from repro.searchengine.engine import SearchOptions
    all_time = symphony.engine.search("news", "report",
                                      SearchOptions(count=50))
    recent = symphony.engine.search(
        "news", "report", SearchOptions(count=50, freshness_days=30)
    )
    print()
    print(f"News vertical: {all_time.total_matches} matches all-time, "
          f"{recent.total_matches} within 30 days")


if __name__ == "__main__":
    main()
