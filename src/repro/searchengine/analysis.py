"""Text analysis: tokenization, stopword filtering, and stemming.

The analyzer is the single normalization point shared by indexing and query
parsing, so a term always stems the same way on both sides.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["tokenize", "STOPWORDS", "PorterStemmer", "Analyzer"]

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z0-9]+)?")

STOPWORDS = frozenset(
    """a an and are as at be but by for from has have if in into is it its
    of on or such that the their then there these they this to was were will
    with""".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase ``text`` and split into alphanumeric tokens.

    >>> tokenize("Halo: Combat Evolved (2001)")
    ['halo', 'combat', 'evolved', '2001']
    """
    return _TOKEN_RE.findall(text.lower())


class PorterStemmer:
    """The Porter (1980) suffix-stripping stemmer.

    A faithful implementation of the five-step algorithm; enough fidelity
    that morphological variants ("review", "reviews", "reviewing") collapse
    to one index term.
    """

    _VOWELS = "aeiou"

    def stem(self, word: str) -> str:
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- measure and predicates --------------------------------------------

    def _is_consonant(self, word: str, i: int) -> bool:
        ch = word[i]
        if ch in self._VOWELS:
            return False
        if ch == "y":
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem: str) -> int:
        """The Porter 'm' value: number of VC sequences in the stem."""
        m = 0
        prev_vowel = False
        for i in range(len(stem)):
            vowel = not self._is_consonant(stem, i)
            if prev_vowel and not vowel:
                m += 1
            prev_vowel = vowel
        return m

    def _has_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        if len(word) < 3:
            return False
        c1 = self._is_consonant(word, len(word) - 3)
        v = not self._is_consonant(word, len(word) - 2)
        c2 = self._is_consonant(word, len(word) - 1)
        return c1 and v and c2 and word[-1] not in "wxy"

    # -- steps ---------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            return word[:-1] if self._measure(stem) > 0 else word
        flagged = None
        if word.endswith("ed") and self._has_vowel(word[:-2]):
            flagged = word[:-2]
        elif word.endswith("ing") and self._has_vowel(word[:-3]):
            flagged = word[:-3]
        if flagged is None:
            return word
        word = flagged
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if self._ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if self._measure(word) == 1 and self._ends_cvc(word):
            return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._has_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        return self._replace_longest(word, self._STEP2_SUFFIXES, 0)

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        return self._replace_longest(word, self._STEP3_SUFFIXES, 0)

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        for suffix in sorted(self._STEP4_SUFFIXES, key=len, reverse=True):
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            self._measure(word) > 1
            and self._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word

    def _replace_longest(self, word, suffixes, min_measure) -> str:
        for suffix, replacement in sorted(
            suffixes, key=lambda pair: len(pair[0]), reverse=True
        ):
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > min_measure:
                    return stem + replacement
                return word
        return word


@dataclass
class Analyzer:
    """Tokenize → drop stopwords → stem. Shared by index and query sides."""

    use_stopwords: bool = True
    use_stemming: bool = True
    _stemmer: PorterStemmer = field(default_factory=PorterStemmer)

    def analyze(self, text: str) -> list[str]:
        tokens = tokenize(text)
        if self.use_stopwords:
            tokens = [t for t in tokens if t not in STOPWORDS]
        if self.use_stemming:
            tokens = [self._stemmer.stem(t) for t in tokens]
        return tokens

    def analyze_with_positions(self, text: str) -> list[tuple[str, int]]:
        """Like :meth:`analyze` but keeps original token positions.

        Positions are indices into the *unfiltered* token stream so phrase
        queries respect stopword gaps.
        """
        out = []
        for position, token in enumerate(tokenize(text)):
            if self.use_stopwords and token in STOPWORDS:
                continue
            if self.use_stemming:
                token = self._stemmer.stem(token)
            out.append((token, position))
        return out
