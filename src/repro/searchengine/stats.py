"""Corpus statistics, separable from any single index.

BM25 mixes *global* corpus statistics (document count, document
frequency, average field length) with *local* per-document statistics
(term frequency, field length). On one index both come from the same
object; on a document-partitioned cluster the global half must be
gathered across shards first, or idf drifts and shard scores stop being
comparable. This module makes that split explicit:

* :class:`CorpusStats` — the global half, collectable per shard and
  mergeable by summation;
* :class:`StatsOverlayIndex` — a shard-local index with the merged
  global statistics substituted in, so a stock
  :class:`~repro.searchengine.ranking.BM25Scorer` over one shard scores
  exactly as it would over the union of all shards.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FieldStats", "CorpusStats", "StatsOverlayIndex"]


@dataclass(frozen=True)
class FieldStats:
    """Aggregate length statistics for one text field."""

    total_length: int = 0
    doc_count: int = 0


@dataclass(frozen=True)
class CorpusStats:
    """The global half of BM25's inputs, summable across shards."""

    doc_count: int
    fields: dict            # field name -> FieldStats
    doc_frequency: dict     # (field name, term) -> int

    @classmethod
    def empty(cls) -> "CorpusStats":
        return cls(0, {}, {})

    @classmethod
    def collect(cls, index, fields, terms) -> "CorpusStats":
        """Gather statistics for ``terms`` over ``fields`` of one index."""
        field_stats = {
            name: FieldStats(index.total_field_length(name),
                             index.field_doc_count(name))
            for name in fields
        }
        doc_frequency = {
            (name, term): index.document_frequency(name, term)
            for name in fields
            for term in terms
        }
        return cls(len(index), field_stats, doc_frequency)

    @staticmethod
    def merge(parts) -> "CorpusStats":
        """Sum per-shard statistics into corpus-wide ones."""
        doc_count = 0
        fields: dict[str, FieldStats] = {}
        doc_frequency: dict[tuple[str, str], int] = {}
        for part in parts:
            doc_count += part.doc_count
            for name, stats in part.fields.items():
                seen = fields.get(name, FieldStats())
                fields[name] = FieldStats(
                    seen.total_length + stats.total_length,
                    seen.doc_count + stats.doc_count,
                )
            for key, df in part.doc_frequency.items():
                doc_frequency[key] = doc_frequency.get(key, 0) + df
        return CorpusStats(doc_count, fields, doc_frequency)

    def average_field_length(self, name: str) -> float:
        stats = self.fields.get(name)
        if stats is None or stats.doc_count == 0:
            return 0.0
        # Same integer operands as InvertedIndex.average_field_length on
        # the union index, hence bit-identical float results.
        return stats.total_length / stats.doc_count


class StatsOverlayIndex:
    """A shard's index scored under corpus-wide statistics.

    Implements exactly the surface :class:`BM25Scorer` consumes: the
    global methods answer from :class:`CorpusStats`, the per-document
    ones delegate to the wrapped shard index.
    """

    def __init__(self, local_index, stats: CorpusStats) -> None:
        self._local = local_index
        self._stats = stats

    def __len__(self) -> int:
        return self._stats.doc_count

    def document_frequency(self, name: str, term: str) -> int:
        return self._stats.doc_frequency.get((name, term), 0)

    def average_field_length(self, name: str) -> float:
        return self._stats.average_field_length(name)

    def field_length(self, name: str, doc_id: str) -> int:
        return self._local.field_length(name, doc_id)

    def postings(self, name: str, term: str):
        return self._local.postings(name, term)

    def document(self, doc_id: str):
        return self._local.document(doc_id)

    @property
    def analyzer(self):
        return self._local.analyzer
