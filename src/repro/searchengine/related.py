"""Related-searches mining from the query log.

The "searches related to ..." strip under a result list. Two signals,
blended: queries sharing analyzed terms with the input (content
similarity via Jaccard over term sets), and queries issued in the same
sessions (behavioural co-occurrence). Frequency breaks ties so popular
reformulations surface first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.searchengine.analysis import Analyzer

__all__ = ["RelatedSearch", "RelatedSearches"]


@dataclass(frozen=True)
class RelatedSearch:
    query: str
    score: float
    shared_terms: int


class RelatedSearches:
    """Builds its model once from a log; ``related(query)`` is cheap."""

    def __init__(self, log, analyzer: Analyzer | None = None,
                 session_weight: float = 0.5) -> None:
        self._analyzer = analyzer or Analyzer()
        self._session_weight = session_weight
        self._term_sets: dict[str, frozenset] = {}
        self._frequency: dict[str, int] = {}
        self._by_session: dict[str, set] = {}
        for event in log.queries:
            key = event.query.strip().lower()
            if not key:
                continue
            if key not in self._term_sets:
                self._term_sets[key] = frozenset(
                    self._analyzer.analyze(key)
                )
            self._frequency[key] = self._frequency.get(key, 0) + 1
            if event.session_id:
                self._by_session.setdefault(
                    event.session_id, set()
                ).add(key)
        # query -> set of queries co-issued in some session
        self._cooccurring: dict[str, set] = {}
        for queries in self._by_session.values():
            for query in queries:
                self._cooccurring.setdefault(query, set()).update(
                    q for q in queries if q != query
                )

    def known_queries(self) -> list[str]:
        return sorted(self._term_sets)

    def related(self, query_text: str,
                count: int = 5) -> list[RelatedSearch]:
        """Related past queries for ``query_text``, best first."""
        key = query_text.strip().lower()
        terms = frozenset(self._analyzer.analyze(key))
        session_neighbors = self._cooccurring.get(key, set())
        max_frequency = max(self._frequency.values(), default=1)
        scored = []
        for candidate, candidate_terms in self._term_sets.items():
            if candidate == key:
                continue
            union = terms | candidate_terms
            overlap = len(terms & candidate_terms)
            jaccard = overlap / len(union) if union else 0.0
            session_bonus = (self._session_weight
                             if candidate in session_neighbors else 0.0)
            if jaccard == 0.0 and session_bonus == 0.0:
                continue
            popularity = self._frequency[candidate] / max_frequency
            score = jaccard + session_bonus + 0.1 * popularity
            scored.append(RelatedSearch(
                query=candidate,
                score=round(score, 6),
                shared_terms=overlap,
            ))
        scored.sort(key=lambda r: (-r.score, r.query))
        return scored[:count]
