"""Faceted counts over keyword fields.

Specialized sites live and die by facets ("results by site / topic /
year"); the designer uses them to understand a source's distribution
before configuring restrictions, and applications can display them next
to results. Facets are computed over the *full* candidate set of a
query, not just the returned page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.searchengine.query import QueryEvaluator, parse_query

__all__ = ["FacetCount", "FacetResult", "compute_facets"]


@dataclass(frozen=True)
class FacetCount:
    value: str
    count: int


@dataclass(frozen=True)
class FacetResult:
    field: str
    counts: tuple  # FacetCount, descending by count then value

    def top(self, n: int = 5) -> list:
        return list(self.counts[:n])

    def as_dict(self) -> dict:
        return {fc.value: fc.count for fc in self.counts}


def compute_facets(index, text_fields, query_text: str,
                   facet_fields) -> dict:
    """Facet counts for ``query_text`` over the given keyword fields.

    Returns ``{field: FacetResult}``. Facet fields must be stored on
    documents (keyword or plain); values are bucketed verbatim
    (lowercased), missing values land in ``"(none)"``.
    """
    if not facet_fields:
        raise QueryError("no facet fields requested")
    node = parse_query(query_text)
    candidates = QueryEvaluator(index, list(text_fields)).candidates(
        node
    )
    results = {}
    for field_name in facet_fields:
        buckets: dict[str, int] = {}
        for doc_id in candidates:
            raw = index.document(doc_id).fields.get(field_name)
            value = (str(raw).lower() if raw not in (None, "")
                     else "(none)")
            buckets[value] = buckets.get(value, 0) + 1
        counts = tuple(
            FacetCount(value, count)
            for value, count in sorted(
                buckets.items(), key=lambda pair: (-pair[1], pair[0])
            )
        )
        results[field_name] = FacetResult(field_name, counts)
    return results
