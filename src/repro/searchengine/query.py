"""Query language: lexer, recursive-descent parser, AST, and evaluator.

Grammar (whitespace-separated, implicit AND):

    query    := or_expr
    or_expr  := and_expr ("OR" and_expr)*
    and_expr := unary ("AND"? unary)*
    unary    := "NOT" unary | atom
    atom     := "(" query ")" | PHRASE | FILTER | TERM
    FILTER   := name ":" value            e.g. site:gamespot.com
    PHRASE   := '"' words '"'

``site:`` (and any other keyword-mode field) filters exactly; text fields
match analyzed terms. Evaluation returns the candidate doc-id set plus the
analyzed scoring terms, so ranking happens once, outside the boolean logic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryError

__all__ = [
    "QueryNode", "TermNode", "PhraseNode", "FilterNode", "RangeNode",
    "AndNode", "OrNode", "NotNode",
    "parse_query", "QueryEvaluator", "extract_terms",
]


class QueryNode:
    """Base class for query AST nodes."""


@dataclass(frozen=True)
class TermNode(QueryNode):
    text: str


@dataclass(frozen=True)
class PhraseNode(QueryNode):
    text: str


@dataclass(frozen=True)
class FilterNode(QueryNode):
    field: str
    value: str


@dataclass(frozen=True)
class RangeNode(QueryNode):
    """Inclusive range filter: ``price:[10 TO 30]``.

    Either bound may be ``*`` (open). Bounds compare numerically when
    both the bound and the document value parse as numbers, otherwise
    lexicographically (which covers ISO dates).
    """

    field: str
    low: str
    high: str


@dataclass(frozen=True)
class AndNode(QueryNode):
    children: tuple


@dataclass(frozen=True)
class OrNode(QueryNode):
    children: tuple


@dataclass(frozen=True)
class NotNode(QueryNode):
    child: QueryNode


# -- lexer -------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
      (?P<phrase>"[^"]*")
    | (?P<range>[A-Za-z_][A-Za-z0-9_.]*:\[[^\]]+\])
    | (?P<lparen>\()
    | (?P<rparen>\))
    | (?P<filter>[A-Za-z_][A-Za-z0-9_.]*:[^\s()"]+)
    | (?P<word>[^\s()":]+)
    )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str


def _lex(text: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot lex query near: {remainder[:20]!r}")
        pos = match.end()
        for kind in ("phrase", "range", "lparen", "rparen", "filter",
                     "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


# -- parser -------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> QueryNode:
        node = self._or_expr()
        if self._pos != len(self._tokens):
            raise QueryError("unexpected trailing tokens in query")
        return node

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._pos += 1
        return token

    def _or_expr(self) -> QueryNode:
        children = [self._and_expr()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "word" \
                    and token.value == "OR":
                self._next()
                children.append(self._and_expr())
            else:
                break
        if len(children) == 1:
            return children[0]
        return OrNode(tuple(children))

    def _and_expr(self) -> QueryNode:
        children = [self._unary()]
        while True:
            token = self._peek()
            if token is None or token.kind == "rparen":
                break
            if token.kind == "word" and token.value == "OR":
                break
            if token.kind == "word" and token.value == "AND":
                self._next()
                continue
            children.append(self._unary())
        if len(children) == 1:
            return children[0]
        return AndNode(tuple(children))

    def _unary(self) -> QueryNode:
        token = self._peek()
        if token is not None and token.kind == "word" \
                and token.value == "NOT":
            self._next()
            return NotNode(self._unary())
        return self._atom()

    def _atom(self) -> QueryNode:
        token = self._next()
        if token.kind == "lparen":
            node = self._or_expr()
            closing = self._next()
            if closing.kind != "rparen":
                raise QueryError("expected closing parenthesis")
            return node
        if token.kind == "phrase":
            return PhraseNode(token.value.strip('"'))
        if token.kind == "range":
            name, __, body = token.value.partition(":")
            inner = body.strip()[1:-1]  # drop the brackets
            low, sep, high = inner.partition(" TO ")
            if not sep:
                raise QueryError(
                    f"range filter needs 'low TO high': {token.value!r}"
                )
            return RangeNode(name.lower(), low.strip(), high.strip())
        if token.kind == "filter":
            name, __, value = token.value.partition(":")
            return FilterNode(name.lower(), value)
        if token.kind == "word":
            return TermNode(token.value)
        raise QueryError(f"unexpected token: {token.value!r}")


def parse_query(text: str) -> QueryNode:
    """Parse ``text`` into an AST; raises :class:`QueryError` on bad input."""
    if not text or not text.strip():
        raise QueryError("empty query")
    tokens = _lex(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens).parse()


def extract_terms(node: QueryNode, analyzer) -> list[str]:
    """Analyzed positive terms of a query, for BM25 scoring and snippets."""
    terms: list[str] = []

    def walk(current: QueryNode, positive: bool) -> None:
        if isinstance(current, TermNode) and positive:
            terms.extend(analyzer.analyze(current.text))
        elif isinstance(current, PhraseNode) and positive:
            terms.extend(analyzer.analyze(current.text))
        elif isinstance(current, (AndNode, OrNode)):
            for child in current.children:
                walk(child, positive)
        elif isinstance(current, NotNode):
            walk(current.child, not positive)

    walk(node, True)
    # Deduplicate but keep first-seen order.
    return list(dict.fromkeys(terms))


class QueryEvaluator:
    """Evaluates a query AST against an :class:`InvertedIndex`.

    ``text_fields`` are the fields searched for bare terms and phrases;
    filters address their named field directly (keyword fields match
    exactly, text fields match all analyzed terms of the value).
    """

    def __init__(self, index, text_fields: list[str]) -> None:
        self._index = index
        self._text_fields = list(text_fields)

    def candidates(self, node: QueryNode) -> set:
        return self._eval(node)

    def _eval(self, node: QueryNode) -> set:
        if isinstance(node, TermNode):
            return self._eval_term(node.text)
        if isinstance(node, PhraseNode):
            return self._eval_phrase(node.text)
        if isinstance(node, FilterNode):
            return self._eval_filter(node.field, node.value)
        if isinstance(node, RangeNode):
            return self._eval_range(node)
        if isinstance(node, AndNode):
            result: set | None = None
            for child in node.children:
                child_set = self._eval(child)
                result = child_set if result is None else result & child_set
                if not result:
                    return set()
            return result or set()
        if isinstance(node, OrNode):
            result: set = set()
            for child in node.children:
                result |= self._eval(child)
            return result
        if isinstance(node, NotNode):
            return self._index.all_doc_ids() - self._eval(node.child)
        raise QueryError(f"unknown query node: {node!r}")

    def _eval_term(self, text: str) -> set:
        terms = self._index.analyzer.analyze(text)
        if not terms:
            return set()
        matched: set = set()
        for term in terms:
            for field_name in self._text_fields:
                matched |= set(self._index.postings(field_name, term))
        return matched

    def _eval_phrase(self, text: str) -> set:
        terms = self._index.analyzer.analyze(text)
        if not terms:
            return set()
        matched: set = set()
        for field_name in self._text_fields:
            matched |= self._index.phrase_matches(field_name, terms)
        return matched

    def _eval_range(self, node: RangeNode) -> set:
        """Inclusive range scan over stored field values.

        Ranges are evaluated against the raw document fields (not the
        analyzed postings), which is what makes them work for numeric
        and date columns of proprietary data.
        """
        matched = set()
        for doc_id in self._index.all_doc_ids():
            raw = self._index.document(doc_id).fields.get(node.field)
            if raw is None or raw == "":
                continue
            if self._in_range(str(raw), node.low, node.high):
                matched.add(doc_id)
        return matched

    @staticmethod
    def _in_range(value: str, low: str, high: str) -> bool:
        def compare(bound: str, is_low: bool) -> bool:
            if bound == "*":
                return True
            try:
                return (float(value) >= float(bound) if is_low
                        else float(value) <= float(bound))
            except ValueError:
                return (value >= bound if is_low else value <= bound)

        return compare(low, True) and compare(high, False)

    def _eval_filter(self, field_name: str, value: str) -> set:
        if field_name in self._index.keyword_fields():
            return self._index.keyword_matches(field_name, value)
        terms = self._index.analyzer.analyze(value)
        if not terms:
            return set()
        result: set | None = None
        for term in terms:
            term_docs = set(self._index.postings(field_name, term))
            result = term_docs if result is None else result & term_docs
        return result or set()
