"""The search-engine facade: four verticals over the synthetic web.

:func:`build_engine` indexes a :class:`~repro.simweb.model.SyntheticWeb`
into web / image / video / news verticals and returns a
:class:`SearchEngine` exposing the Bing-shaped contract Symphony consumes:
ranked captioned results with site restriction, paging, and (for news)
freshness filtering. Every query is charged simulated latency and logged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument, FieldMode
from repro.searchengine.index import InvertedIndex
from repro.searchengine.logs import QueryEvent, QueryLog
from repro.searchengine.query import (
    AndNode,
    FilterNode,
    OrNode,
    QueryEvaluator,
    extract_terms,
    parse_query,
)
from repro.searchengine.ranking import (
    BM25Parameters,
    BM25Scorer,
    blend_scores,
    pagerank,
    recency_boost,
)
from repro.searchengine.snippets import best_window
from repro.searchengine.spelling import SpellingCorrector
from repro.util import SimClock

__all__ = [
    "Vertical",
    "SearchOptions",
    "SearchResult",
    "SearchResponse",
    "VerticalIndex",
    "SearchEngine",
    "build_engine",
    "apply_options_to_ast",
    "evaluate_candidates",
    "rank_candidates",
    "materialize_result",
    "simulated_latency_ms",
    "compute_authority",
    "make_vertical_indexes",
    "iter_corpus_documents",
]


class Vertical(str, Enum):
    """The four search verticals the engine serves."""

    WEB = "web"
    IMAGE = "image"
    VIDEO = "video"
    NEWS = "news"


@dataclass(frozen=True)
class SearchOptions:
    """Per-query options mirroring a commercial search API's parameters."""

    count: int = 10
    offset: int = 0
    sites: tuple[str, ...] = ()          # restrict to these domains
    exclude_sites: tuple[str, ...] = ()  # drop these domains
    freshness_days: int | None = None    # news-only recency window
    augment_terms: tuple[str, ...] = ()  # terms silently ANDed in

    def restricted(self) -> bool:
        return bool(self.sites)


@dataclass(frozen=True)
class SearchResult:
    """One ranked result; ``fields`` carries vertical-specific extras."""

    url: str
    title: str
    snippet: str
    site: str
    score: float
    vertical: str
    fields: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SearchResponse:
    query: str
    vertical: str
    results: tuple
    total_matches: int
    elapsed_ms: float
    suggestion: str | None = None  # "did you mean", set on zero hits

    def urls(self) -> list[str]:
        return [r.url for r in self.results]


class VerticalIndex:
    """One vertical's index plus its ranking configuration."""

    def __init__(self, vertical: Vertical, text_fields: list[str],
                 params: BM25Parameters,
                 authority: dict | None = None) -> None:
        self.vertical = vertical
        self.text_fields = list(text_fields)
        self.params = params
        self.authority = authority or {}
        modes = {"site": FieldMode.KEYWORD, "topic": FieldMode.KEYWORD}
        self.index = InvertedIndex(Analyzer(), field_modes=modes)

    def add(self, document: FieldedDocument) -> None:
        self.index.add(document)

    def __len__(self) -> int:
        return len(self.index)


# -- search core ---------------------------------------------------------------
#
# The per-index query path is exposed as module functions so a clustered
# engine can run the exact same pipeline per shard (repro.cluster); the
# single-node SearchEngine below is a thin orchestration of these.

# Simulated latency model: fixed overhead plus a per-candidate cost.
BASE_LATENCY_MS = 12.0
PER_CANDIDATE_US = 40.0


def simulated_latency_ms(candidate_count: int) -> float:
    """Simulated cost of ranking ``candidate_count`` docs on one node."""
    return BASE_LATENCY_MS + candidate_count * PER_CANDIDATE_US / 1000.0


def apply_options_to_ast(node, options: SearchOptions):
    """Fold augment terms and site restriction into the AST."""
    extra = []
    for term in options.augment_terms:
        extra.append(parse_query(term))
    if options.sites:
        site_filters = tuple(
            FilterNode("site", site) for site in options.sites
        )
        extra.append(
            site_filters[0] if len(site_filters) == 1
            else OrNode(site_filters)
        )
    if not extra:
        return node
    return AndNode(tuple([node, *extra]))


def evaluate_candidates(vindex: VerticalIndex, node,
                        options: SearchOptions, now_ms: int) -> set:
    """Candidate doc ids of one index after all option constraints."""
    evaluator = QueryEvaluator(vindex.index, vindex.text_fields)
    candidates = evaluator.candidates(node)
    if options.exclude_sites:
        excluded = set()
        for site in options.exclude_sites:
            excluded |= vindex.index.keyword_matches("site", site)
        candidates = candidates - excluded
    if options.freshness_days is not None:
        horizon = now_ms - options.freshness_days * 86_400_000
        fresh = set()
        for doc_id in candidates:
            doc = vindex.index.document(doc_id)
            published = doc.fields.get("_published_ms", 0)
            if published and int(published) >= horizon:
                fresh.add(doc_id)
        candidates = fresh
    return candidates


def rank_candidates(vindex: VerticalIndex, candidates, terms,
                    scorer: BM25Scorer, now_ms: int) -> list:
    """Score and order candidates of one index (score desc, then id)."""
    scored = []
    for doc_id in candidates:
        relevance = scorer.score(doc_id, terms) if terms else 1.0
        if vindex.vertical == Vertical.WEB:
            prior = vindex.authority.get(doc_id, 0.0)
            total = blend_scores(relevance, prior, prior_weight=0.3)
        elif vindex.vertical == Vertical.NEWS:
            doc = vindex.index.document(doc_id)
            published = int(doc.fields.get("_published_ms", 0))
            total = blend_scores(
                relevance, recency_boost(published, now_ms),
                prior_weight=0.5,
            )
        else:
            total = relevance
        scored.append((doc_id, total))
    # Deterministic ordering: score desc, then doc id.
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored


def materialize_result(vindex: VerticalIndex, doc_id: str, score: float,
                       terms) -> SearchResult:
    """Build the captioned :class:`SearchResult` for one ranked doc."""
    doc = vindex.index.document(doc_id)
    extras = {
        k: v for k, v in doc.fields.items()
        if not k.startswith("_") and k not in
        ("title", "body", "site", "url")
    }
    return SearchResult(
        url=doc.get("url") or doc_id,
        title=doc.get("title"),
        snippet=best_window(doc.get("body"), terms,
                            vindex.index.analyzer, width=28),
        site=doc.get("site"),
        score=round(score, 6),
        vertical=vindex.vertical.value,
        fields=extras,
    )


class SearchEngine:
    """Query entry point across verticals, with logging and latency."""

    _BASE_LATENCY_MS = BASE_LATENCY_MS
    _PER_CANDIDATE_US = PER_CANDIDATE_US

    def __init__(self, verticals: dict, clock: SimClock | None = None,
                 log: QueryLog | None = None) -> None:
        self._verticals = dict(verticals)
        self.clock = clock or SimClock()
        self.log = log or QueryLog()
        self._correctors: dict = {}  # vertical -> SpellingCorrector

    def vertical(self, vertical: Vertical | str) -> VerticalIndex:
        key = Vertical(vertical)
        return self._verticals[key]

    def search(self, vertical: Vertical | str, query_text: str,
               options: SearchOptions | None = None,
               app_id: str | None = None,
               session_id: str | None = None) -> SearchResponse:
        """Run ``query_text`` against one vertical and log the event."""
        options = options or SearchOptions()
        vindex = self.vertical(vertical)
        node = parse_query(query_text)
        node = apply_options_to_ast(node, options)

        candidates = evaluate_candidates(vindex, node, options,
                                         self.clock.now_ms)
        terms = extract_terms(node, vindex.index.analyzer)
        scorer = BM25Scorer(vindex.index, vindex.text_fields, vindex.params)
        scored = rank_candidates(vindex, candidates, terms, scorer,
                                 self.clock.now_ms)

        elapsed = simulated_latency_ms(len(candidates))
        self.clock.advance(elapsed)

        window = scored[options.offset:options.offset + options.count]
        results = tuple(
            materialize_result(vindex, doc_id, score, terms)
            for doc_id, score in window
        )
        suggestion = None
        if not scored and terms:
            suggestion = self._suggest(vindex, terms)
        response = SearchResponse(
            query=query_text,
            vertical=Vertical(vertical).value,
            results=results,
            total_matches=len(scored),
            elapsed_ms=elapsed,
            suggestion=suggestion,
        )
        self.log.log_query(QueryEvent(
            timestamp_ms=self.clock.now_ms,
            query=query_text,
            vertical=response.vertical,
            app_id=app_id,
            session_id=session_id,
            result_urls=tuple(response.urls()),
        ))
        return response

    def facets(self, vertical: Vertical | str, query_text: str,
               facet_fields=("site", "topic")) -> dict:
        """Facet counts over the query's full candidate set."""
        from repro.searchengine.facets import compute_facets
        vindex = self.vertical(vertical)
        self.clock.advance(self._BASE_LATENCY_MS)
        return compute_facets(vindex.index, vindex.text_fields,
                              query_text, facet_fields)

    # -- internals ------------------------------------------------------------

    def _suggest(self, vindex, terms) -> str | None:
        """'Did you mean' over the vertical's vocabulary (lazy, cached)."""
        corrector = self._correctors.get(vindex.vertical)
        if corrector is None:
            corrector = SpellingCorrector(vindex.index,
                                          vindex.text_fields)
            self._correctors[vindex.vertical] = corrector
        corrected = corrector.suggest_query(terms)
        if corrected is None:
            return None
        return " ".join(corrected)


def compute_authority(web) -> dict:
    """Normalized PageRank over the web's link graph, in [0, 1]."""
    ranks = pagerank(web.link_graph())
    if not ranks:
        return {}
    top = max(ranks.values())
    return {url: value / top for url, value in ranks.items()}


def make_vertical_indexes(authority: dict | None = None) -> dict:
    """Fresh empty per-vertical indexes with the standard ranking config.

    Shared by the single-node engine and every cluster shard replica so
    analyzers, field modes, and BM25 parameters never diverge.
    """
    web_params = BM25Parameters(field_boosts={"title": 2.0, "body": 1.0})
    media_params = BM25Parameters(field_boosts={"title": 2.0,
                                                "caption": 2.0,
                                                "body": 1.0})
    return {
        Vertical.WEB: VerticalIndex(
            Vertical.WEB, ["title", "body"], web_params, authority
        ),
        Vertical.IMAGE: VerticalIndex(
            Vertical.IMAGE, ["caption"], media_params
        ),
        Vertical.VIDEO: VerticalIndex(
            Vertical.VIDEO, ["title", "body"], media_params
        ),
        Vertical.NEWS: VerticalIndex(
            Vertical.NEWS, ["title", "body"], web_params
        ),
    }


def iter_corpus_documents(web):
    """Yield every asset of the web as ``(Vertical, FieldedDocument)``."""
    for page in web.pages.values():
        yield Vertical.WEB, FieldedDocument(
            doc_id=page.url,
            fields={
                "url": page.url, "title": page.title, "body": page.body,
                "site": page.site, "topic": page.topic,
                "_published_ms": page.published_ms,
                "entity": page.entity or "",
            },
            payload=page,
        )
    for image in web.images.values():
        yield Vertical.IMAGE, FieldedDocument(
            doc_id=image.url,
            fields={
                "url": image.url, "title": image.caption,
                "caption": image.caption, "body": image.caption,
                "site": image.site, "topic": image.topic,
                "width": image.width, "height": image.height,
                "entity": image.entity or "",
            },
            payload=image,
        )
    for video in web.videos.values():
        yield Vertical.VIDEO, FieldedDocument(
            doc_id=video.url,
            fields={
                "url": video.url, "title": video.title,
                "body": video.description, "site": video.site,
                "topic": video.topic, "duration_s": video.duration_s,
                "entity": video.entity or "",
            },
            payload=video,
        )
    for article in web.news.values():
        yield Vertical.NEWS, FieldedDocument(
            doc_id=article.url,
            fields={
                "url": article.url, "title": article.headline,
                "body": article.body, "site": article.site,
                "topic": article.topic,
                "_published_ms": article.published_ms,
                "entity": article.entity or "",
            },
            payload=article,
        )


def build_engine(web, clock: SimClock | None = None,
                 use_authority: bool = True) -> SearchEngine:
    """Index a synthetic web into a ready-to-query :class:`SearchEngine`."""
    authority = compute_authority(web) if use_authority else {}
    verticals = make_vertical_indexes(authority)
    for vertical, document in iter_corpus_documents(web):
        verticals[vertical].add(document)
    return SearchEngine(verticals, clock=clock)
