"""Spelling suggestion ("did you mean") from the index vocabulary.

A classic engine nicety the paper's substrate would provide: when a
query term is absent from (or very rare in) the corpus, suggest the
most frequent vocabulary term within small edit distance.
"""

from __future__ import annotations

__all__ = ["edit_distance", "collect_term_frequencies",
           "SpellingCorrector"]


def edit_distance(a: str, b: str, cap: int = 3) -> int:
    """Levenshtein distance with an early-exit ``cap``."""
    if a == b:
        return 0
    if abs(len(a) - len(b)) >= cap:
        return cap
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            value = min(previous[j] + 1, current[j - 1] + 1,
                        previous[j - 1] + cost)
            current.append(value)
            row_min = min(row_min, value)
        if row_min >= cap:
            return cap
        previous = current
    return min(previous[-1], cap)


def collect_term_frequencies(index, fields=None) -> dict[str, int]:
    """Unfiltered per-term document frequencies over ``fields``.

    Collectable per shard and mergeable by summation, so a clustered
    engine can build one corrector over its union vocabulary.
    """
    frequencies: dict[str, int] = {}
    for field_name in fields or index.text_fields():
        for term, count in index.term_frequencies(field_name).items():
            frequencies[term] = frequencies.get(term, 0) + count
    return frequencies


class SpellingCorrector:
    """Suggests corrections from term frequencies in one or more fields.

    Pass either an ``index`` (with optional ``fields``) or pre-merged
    ``frequencies``; the ``min_frequency`` floor applies in both cases.
    """

    def __init__(self, index=None, fields=None, max_distance: int = 2,
                 min_frequency: int = 2,
                 frequencies: dict | None = None) -> None:
        self._max_distance = max_distance
        if frequencies is None:
            if index is None:
                raise ValueError("need an index or a frequencies dict")
            frequencies = collect_term_frequencies(index, fields)
        self._frequencies = {
            term: count for term, count in frequencies.items()
            if count >= min_frequency
        }

    def known(self, term: str) -> bool:
        return term in self._frequencies

    def suggest(self, term: str) -> str | None:
        """The most frequent in-vocabulary term within edit distance.

        Returns None when ``term`` is already known or nothing close
        enough exists. Ties break toward higher frequency, then
        lexicographically for determinism.
        """
        if not term or self.known(term):
            return None
        best: tuple | None = None
        for candidate, frequency in self._frequencies.items():
            if abs(len(candidate) - len(term)) > self._max_distance:
                continue
            distance = edit_distance(term, candidate,
                                     cap=self._max_distance + 1)
            if distance > self._max_distance:
                continue
            key = (distance, -frequency, candidate)
            if best is None or key < best[0]:
                best = (key, candidate)
        return best[1] if best else None

    def suggest_query(self, terms) -> list[str] | None:
        """Correct a whole analyzed query; None when nothing to fix."""
        corrected = []
        changed = False
        for term in terms:
            suggestion = self.suggest(term)
            if suggestion is not None:
                corrected.append(suggestion)
                changed = True
            else:
                corrected.append(term)
        return corrected if changed else None
