"""Document abstraction shared by the engine and proprietary-data indexes.

A :class:`FieldedDocument` is a bag of named fields. Fields are indexed in
one of two modes:

* **text** — analyzed (tokenized, stemmed) and scored with BM25;
* **keyword** — stored verbatim and matched exactly (e.g. ``site``), which
  is how ``site:`` restriction works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["FieldMode", "FieldedDocument"]


class FieldMode(str, Enum):
    """How a field is indexed: analyzed text or exact keyword."""

    TEXT = "text"
    KEYWORD = "keyword"


@dataclass(frozen=True)
class FieldedDocument:
    """An indexable unit: id, fields, and an opaque payload.

    ``payload`` carries the original object (a simweb page, a proprietary
    record...) back out of the index untouched.
    """

    doc_id: str
    fields: dict = field(default_factory=dict)
    payload: object = None

    def get(self, name: str, default: str = "") -> str:
        value = self.fields.get(name, default)
        return "" if value is None else str(value)

    def with_field(self, name: str, value: str) -> "FieldedDocument":
        fields = dict(self.fields)
        fields[name] = value
        return FieldedDocument(self.doc_id, fields, self.payload)
