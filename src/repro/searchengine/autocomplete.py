"""Query auto-completion from past queries and the index vocabulary.

A character trie over normalized past queries (weighted by frequency),
optionally seeded from the index vocabulary so a cold application still
completes to real corpus terms. ``complete(prefix)`` returns the top-k
completions by weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Completion", "AutocompleteIndex"]


@dataclass(frozen=True)
class Completion:
    text: str
    weight: int


@dataclass
class _TrieNode:
    children: dict = field(default_factory=dict)
    # Terminal weight: >0 means a full entry ends here.
    weight: int = 0


class AutocompleteIndex:
    """Prefix completion over weighted entries."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._entries: dict[str, int] = {}

    # -- construction -----------------------------------------------------------

    def add(self, text: str, weight: int = 1) -> None:
        key = " ".join(text.lower().split())
        if not key or weight <= 0:
            return
        self._entries[key] = self._entries.get(key, 0) + weight
        node = self._root
        for char in key:
            node = node.children.setdefault(char, _TrieNode())
        node.weight = self._entries[key]

    @classmethod
    def from_query_log(cls, log,
                       app_id: str | None = None) -> "AutocompleteIndex":
        index = cls()
        for event in log.queries:
            if app_id is not None and event.app_id != app_id:
                continue
            index.add(event.query)
        return index

    def seed_from_vocabulary(self, inverted_index, field_name: str,
                             min_df: int = 2) -> int:
        """Add frequent index terms as single-word completions."""
        added = 0
        term_map = inverted_index._postings.get(field_name, {})
        for term, by_doc in term_map.items():
            if len(by_doc) >= min_df:
                self.add(term, weight=len(by_doc))
                added += 1
        return added

    # -- lookup -------------------------------------------------------------------

    def complete(self, prefix: str, count: int = 5) -> list[Completion]:
        """Top-``count`` completions of ``prefix`` by weight."""
        key = " ".join(prefix.lower().split())
        if not key:
            return []
        node = self._root
        for char in key:
            node = node.children.get(char)
            if node is None:
                return []
        found: list[tuple[str, int]] = []
        self._collect(node, key, found)
        found.sort(key=lambda pair: (-pair[1], pair[0]))
        return [Completion(text, weight)
                for text, weight in found[:count]]

    def _collect(self, node: _TrieNode, prefix: str, out: list) -> None:
        if node.weight > 0:
            # Read the live weight (adds may have bumped it).
            out.append((prefix, self._entries[prefix]))
        for char, child in node.children.items():
            self._collect(child, prefix + char, out)

    def __len__(self) -> int:
        return len(self._entries)
