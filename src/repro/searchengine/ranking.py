"""Ranking: BM25 scoring, PageRank link authority, and score blending.

The web vertical blends BM25 text relevance with a link-authority prior;
the news vertical blends BM25 with recency. Both blends are ablatable (see
DESIGN.md §6) by zeroing the respective weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["BM25Parameters", "BM25Scorer", "pagerank", "recency_boost",
           "blend_scores"]


@dataclass(frozen=True)
class BM25Parameters:
    """Okapi BM25 free parameters plus per-field boosts."""

    k1: float = 1.2
    b: float = 0.75
    field_boosts: dict = field(default_factory=dict)  # field -> multiplier

    def boost(self, field_name: str) -> float:
        return self.field_boosts.get(field_name, 1.0)


class BM25Scorer:
    """Scores documents for a bag of query terms against one index.

    The scorer is constructed per query so it can cache idf values; the
    index supplies df/tf/length statistics.
    """

    def __init__(self, index, fields: list[str],
                 params: BM25Parameters | None = None) -> None:
        self._index = index
        self._fields = list(fields)
        self._params = params or BM25Parameters()
        self._idf_cache: dict[tuple[str, str], float] = {}

    def _idf(self, field_name: str, term: str) -> float:
        key = (field_name, term)
        if key not in self._idf_cache:
            n = len(self._index)
            df = self._index.document_frequency(field_name, term)
            # BM25+ style floor keeps idf positive for very common terms.
            self._idf_cache[key] = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        return self._idf_cache[key]

    def score(self, doc_id: str, terms: list[str]) -> float:
        params = self._params
        total = 0.0
        for field_name in self._fields:
            avg_len = self._index.average_field_length(field_name)
            if avg_len == 0:
                continue
            doc_len = self._index.field_length(field_name, doc_id)
            norm = params.k1 * (
                1.0 - params.b + params.b * doc_len / avg_len
            )
            boost = params.boost(field_name)
            for term in terms:
                posting = self._index.postings(field_name, term).get(doc_id)
                if posting is None:
                    continue
                tf = posting.term_frequency
                total += boost * self._idf(field_name, term) * (
                    tf * (params.k1 + 1.0) / (tf + norm)
                )
        return total

    def score_many(self, doc_ids, terms: list[str]) -> dict[str, float]:
        return {doc_id: self.score(doc_id, terms) for doc_id in doc_ids}


def pagerank(graph: dict, damping: float = 0.85,
             iterations: int = 40, tolerance: float = 1e-9) -> dict:
    """Power-iteration PageRank over an adjacency dict ``node -> [targets]``.

    Dangling nodes redistribute uniformly. Returns a probability
    distribution over all nodes appearing as keys or targets.
    """
    nodes = set(graph)
    for targets in graph.values():
        nodes.update(targets)
    if not nodes:
        return {}
    ordered = sorted(nodes)
    n = len(ordered)
    rank = {node: 1.0 / n for node in ordered}
    out_degree = {node: len(graph.get(node, [])) for node in ordered}
    for _ in range(iterations):
        dangling_mass = sum(
            rank[node] for node in ordered if out_degree[node] == 0
        )
        next_rank = {
            node: (1.0 - damping) / n + damping * dangling_mass / n
            for node in ordered
        }
        for node in ordered:
            targets = graph.get(node, [])
            if not targets:
                continue
            share = damping * rank[node] / len(targets)
            for target in targets:
                next_rank[target] += share
        delta = sum(abs(next_rank[node] - rank[node]) for node in ordered)
        rank = next_rank
        if delta < tolerance:
            break
    return rank


def recency_boost(published_ms: int, now_ms: int,
                  half_life_days: float = 30.0) -> float:
    """Exponential-decay freshness in (0, 1]; 1.0 for just-published."""
    if published_ms <= 0:
        return 0.0
    age_days = max(0.0, (now_ms - published_ms) / 86_400_000.0)
    return 0.5 ** (age_days / half_life_days)


def blend_scores(relevance: float, prior: float,
                 prior_weight: float = 0.3) -> float:
    """Combine text relevance with an authority/freshness prior.

    The prior acts multiplicatively on a (1 + prior) basis so documents
    with zero prior are demoted but never eliminated.
    """
    return relevance * (1.0 + prior_weight * prior)
