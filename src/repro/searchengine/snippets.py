"""Query-biased snippet extraction.

Real search APIs return captions centred on the query terms; Symphony's
result layouts bind to that ``snippet`` field. This module picks the
window of the document body containing the most (distinct, then total)
query-term matches and optionally highlights them.
"""

from __future__ import annotations

import re

__all__ = ["best_window", "highlight"]

_WORD_RE = re.compile(r"\S+")


def best_window(text: str, terms, analyzer, width: int = 30) -> str:
    """The ``width``-word window of ``text`` best covering ``terms``.

    ``terms`` are analyzed terms; each word of ``text`` is analyzed the
    same way before matching, so stemmed variants count. Falls back to
    the leading window when nothing matches. An ellipsis marks a window
    that does not start at the beginning.
    """
    words = _WORD_RE.findall(text)
    if not words:
        return ""
    if not terms:
        return _render(words, 0, width)
    term_set = set(terms)
    matches = []
    for i, word in enumerate(words):
        analyzed = analyzer.analyze(word)
        matches.append(bool(term_set.intersection(analyzed)))
    best_start, best_key = 0, (-1, -1)
    window_hits = sum(matches[:width])
    # Slide the window; score = (distinct-ish via hits, earlier wins).
    best_key = (window_hits, 0)
    for start in range(1, max(1, len(words) - width + 1)):
        window_hits += matches[start + width - 1] \
            if start + width - 1 < len(words) else 0
        window_hits -= matches[start - 1]
        key = (window_hits, -start)
        if key > best_key:
            best_key = key
            best_start = start
    return _render(words, best_start, width)


def _render(words, start: int, width: int) -> str:
    window = words[start:start + width]
    prefix = "… " if start > 0 else ""
    suffix = " …" if start + width < len(words) else ""
    return f"{prefix}{' '.join(window)}{suffix}"


def highlight(snippet: str, terms, analyzer,
              open_tag: str = "<b>", close_tag: str = "</b>") -> str:
    """Wrap matching words of ``snippet`` in highlight tags."""
    if not terms:
        return snippet
    term_set = set(terms)

    def wrap(match):
        word = match.group(0)
        if term_set.intersection(analyzer.analyze(word)):
            return f"{open_tag}{word}{close_tag}"
        return word

    return _WORD_RE.sub(wrap, snippet)
