"""Positional inverted index with per-field postings.

Supports incremental adds and deletes, text fields (analyzed, positional)
and keyword fields (exact match), and exposes the statistics BM25 needs
(document frequency, term frequency, field lengths).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DuplicateError, NotFoundError
from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument, FieldMode

__all__ = ["InvertedIndex", "Posting"]


@dataclass(frozen=True)
class Posting:
    """Occurrences of one term in one document's field."""

    doc_id: str
    positions: tuple[int, ...]

    @property
    def term_frequency(self) -> int:
        return len(self.positions)


class InvertedIndex:
    """A multi-field positional inverted index.

    ``field_modes`` fixes which fields are analyzed text vs exact keywords;
    fields not listed default to TEXT. All structures are plain dicts so
    behaviour is easy to audit and deterministic to iterate (insertion
    order).
    """

    def __init__(self, analyzer: Analyzer | None = None,
                 field_modes: dict | None = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self.field_modes = dict(field_modes or {})
        # postings[field][term] -> {doc_id: Posting}
        self._postings: dict[str, dict[str, dict[str, Posting]]] = {}
        # keyword[field][value] -> set of doc ids
        self._keyword: dict[str, dict[str, set]] = {}
        self._docs: dict[str, FieldedDocument] = {}
        self._field_lengths: dict[str, dict[str, int]] = {}
        self._total_field_length: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def add(self, document: FieldedDocument) -> None:
        """Index ``document``; raises :class:`DuplicateError` on id reuse."""
        if document.doc_id in self._docs:
            raise DuplicateError(f"document already indexed: "
                                 f"{document.doc_id}")
        self._docs[document.doc_id] = document
        for name, value in document.fields.items():
            if value is None:
                continue
            mode = self.field_modes.get(name, FieldMode.TEXT)
            if mode == FieldMode.KEYWORD:
                self._add_keyword(name, str(value), document.doc_id)
            else:
                self._add_text(name, str(value), document.doc_id)

    def upsert(self, document: FieldedDocument) -> None:
        """Replace any existing document with the same id, then add."""
        if document.doc_id in self._docs:
            self.remove(document.doc_id)
        self.add(document)

    def remove(self, doc_id: str) -> None:
        if doc_id not in self._docs:
            raise NotFoundError(f"document not indexed: {doc_id}")
        del self._docs[doc_id]
        for term_map in self._postings.values():
            empty_terms = []
            for term, by_doc in term_map.items():
                by_doc.pop(doc_id, None)
                if not by_doc:
                    empty_terms.append(term)
            for term in empty_terms:
                del term_map[term]
        for value_map in self._keyword.values():
            for docs in value_map.values():
                docs.discard(doc_id)
        for name, lengths in self._field_lengths.items():
            length = lengths.pop(doc_id, 0)
            self._total_field_length[name] -= length

    # -- ingestion internals --------------------------------------------------

    def _add_text(self, name: str, value: str, doc_id: str) -> None:
        tokens = self.analyzer.analyze_with_positions(value)
        by_term: dict[str, list[int]] = {}
        for term, position in tokens:
            by_term.setdefault(term, []).append(position)
        term_map = self._postings.setdefault(name, {})
        for term, positions in by_term.items():
            term_map.setdefault(term, {})[doc_id] = Posting(
                doc_id, tuple(positions)
            )
        lengths = self._field_lengths.setdefault(name, {})
        lengths[doc_id] = len(tokens)
        self._total_field_length[name] = (
            self._total_field_length.get(name, 0) + len(tokens)
        )

    def _add_keyword(self, name: str, value: str, doc_id: str) -> None:
        value_map = self._keyword.setdefault(name, {})
        value_map.setdefault(value.lower(), set()).add(doc_id)

    # -- lookups ---------------------------------------------------------------

    def document(self, doc_id: str) -> FieldedDocument:
        try:
            return self._docs[doc_id]
        except KeyError:
            raise NotFoundError(f"document not indexed: {doc_id}") from None

    def all_doc_ids(self) -> set:
        return set(self._docs)

    def postings(self, name: str, term: str) -> dict[str, Posting]:
        """Postings for an *already analyzed* term in a text field."""
        return self._postings.get(name, {}).get(term, {})

    def keyword_matches(self, name: str, value: str) -> set:
        return set(self._keyword.get(name, {}).get(value.lower(), set()))

    def document_frequency(self, name: str, term: str) -> int:
        return len(self.postings(name, term))

    def field_length(self, name: str, doc_id: str) -> int:
        return self._field_lengths.get(name, {}).get(doc_id, 0)

    def average_field_length(self, name: str) -> float:
        lengths = self._field_lengths.get(name)
        if not lengths:
            return 0.0
        return self._total_field_length.get(name, 0) / len(lengths)

    def total_field_length(self, name: str) -> int:
        """Sum of analyzed token counts across all docs with the field."""
        return self._total_field_length.get(name, 0)

    def field_doc_count(self, name: str) -> int:
        """How many documents carry the (text) field ``name``."""
        return len(self._field_lengths.get(name, {}))

    def term_frequencies(self, name: str) -> dict[str, int]:
        """Document frequency per term of one text field (copied)."""
        term_map = self._postings.get(name, {})
        return {term: len(by_doc) for term, by_doc in term_map.items()}

    def text_fields(self) -> list[str]:
        return sorted(self._postings)

    def keyword_fields(self) -> list[str]:
        return sorted(self._keyword)

    def vocabulary_size(self, name: str) -> int:
        return len(self._postings.get(name, {}))

    # -- phrase support ----------------------------------------------------------

    def phrase_matches(self, name: str, terms: list[str]) -> set:
        """Doc ids where ``terms`` appear consecutively in field ``name``.

        Consecutive means adjacent positions in the analyzed stream, which
        tolerates removed stopwords between the words of the original text.
        """
        if not terms:
            return set()
        if len(terms) == 1:
            return set(self.postings(name, terms[0]))
        candidate_postings = [self.postings(name, term) for term in terms]
        if not all(candidate_postings):
            return set()
        docs = set(candidate_postings[0])
        for by_doc in candidate_postings[1:]:
            docs &= set(by_doc)
        matched = set()
        for doc_id in docs:
            first_positions = set(candidate_postings[0][doc_id].positions)
            for start in sorted(first_positions):
                if self._phrase_at(candidate_postings, doc_id, start):
                    matched.add(doc_id)
                    break
        return matched

    @staticmethod
    def _phrase_at(candidate_postings, doc_id, start) -> bool:
        expected = start
        for by_doc in candidate_postings[1:]:
            positions = by_doc[doc_id].positions
            following = [p for p in positions if p > expected]
            if not following or min(following) > expected + 2:
                # Allow one stopword-sized gap between consecutive terms.
                return False
            expected = min(following)
        return True
