"""Query and click logging.

The paper's Conclusions argue that per-application usage logs can provide
topic- and community-specific relevance signals; Site Suggest (ref [2])
also mines logs. This module is the substrate both consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import urlparse

__all__ = ["QueryEvent", "ClickEvent", "QueryLog"]


@dataclass(frozen=True)
class QueryEvent:
    """One query issued against the engine or an application."""

    timestamp_ms: int
    query: str
    vertical: str
    app_id: str | None = None
    session_id: str | None = None
    result_urls: tuple[str, ...] = ()


@dataclass(frozen=True)
class ClickEvent:
    """One click on a result (or ad) from a query's result list."""

    timestamp_ms: int
    query: str
    url: str
    app_id: str | None = None
    session_id: str | None = None
    is_ad: bool = False

    @property
    def site(self) -> str:
        return urlparse(self.url).netloc


@dataclass
class QueryLog:
    """Append-only in-memory log with simple slicing helpers."""

    queries: list = field(default_factory=list)
    clicks: list = field(default_factory=list)

    def log_query(self, event: QueryEvent) -> None:
        self.queries.append(event)

    def log_click(self, event: ClickEvent) -> None:
        self.clicks.append(event)

    def queries_for_app(self, app_id: str) -> list:
        return [q for q in self.queries if q.app_id == app_id]

    def clicks_for_app(self, app_id: str) -> list:
        return [c for c in self.clicks if c.app_id == app_id]

    def clicked_sites_by_query(self) -> dict:
        """Map normalized query text -> set of clicked sites.

        This is the co-occurrence raw material for Site Suggest: two sites
        co-occur when users clicked both for the same query string.
        """
        by_query: dict[str, set] = {}
        for click in self.clicks:
            if click.is_ad:
                continue
            by_query.setdefault(click.query.strip().lower(), set()).add(
                click.site
            )
        return by_query

    def clear(self) -> None:
        self.queries.clear()
        self.clicks.clear()
