"""Local search-engine substrate (the reproduction's Bing).

The engine indexes the synthetic web (:mod:`repro.simweb`) and exposes the
same contract Symphony's prototype consumed from Bing: ranked, captioned
results for the web / image / video / news verticals, with per-query options
such as site restriction, result count, and freshness. It also emits query
and click logs, which feed Site Suggest and the analytics subsystem.
"""

from repro.searchengine.analysis import Analyzer, PorterStemmer, tokenize
from repro.searchengine.documents import FieldedDocument
from repro.searchengine.engine import (
    SearchEngine,
    SearchOptions,
    SearchResponse,
    SearchResult,
    Vertical,
    build_engine,
)
from repro.searchengine.index import InvertedIndex
from repro.searchengine.logs import ClickEvent, QueryEvent, QueryLog
from repro.searchengine.query import parse_query
from repro.searchengine.ranking import BM25Parameters, pagerank

__all__ = [
    "Analyzer",
    "PorterStemmer",
    "tokenize",
    "FieldedDocument",
    "SearchEngine",
    "SearchOptions",
    "SearchResponse",
    "SearchResult",
    "Vertical",
    "build_engine",
    "InvertedIndex",
    "ClickEvent",
    "QueryEvent",
    "QueryLog",
    "parse_query",
    "BM25Parameters",
    "pagerank",
]
