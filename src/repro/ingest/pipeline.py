"""The ingestion pipeline: payload → rows → schema → tenant table.

:class:`DatasetIngestor` is what the platform facade calls when a designer
"registers her proprietary inventory data with Symphony" (§II-B). It
dispatches on content type / filename to a reader, infers or validates the
schema, bulk-loads a tenant table, archives the raw payload as a blob, and
supports incremental refresh keyed on a chosen field.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IngestError
from repro.ingest.readers import (
    parse_delimited,
    parse_json_array,
    parse_json_lines,
    parse_xml_records,
)
from repro.ingest.rss import parse_rss
from repro.ingest.workbook import parse_workbook
from repro.storage.records import Schema, infer_schema

__all__ = ["IngestReport", "DatasetIngestor"]


@dataclass
class IngestReport:
    """Outcome of one ingestion run."""

    table_name: str
    inserted: int = 0
    updated: int = 0
    unchanged: bool = False
    format: str = ""
    errors: list = field(default_factory=list)
    # -- contract enforcement (zero when the table is ungoverned) ------
    violations: int = 0
    quarantined: int = 0
    coerced: int = 0
    drift: bool = False


_EXTENSION_FORMATS = {
    ".csv": "delimited",
    ".tsv": "delimited",
    ".txt": "delimited",
    ".xml": "xml",
    ".json": "json",
    ".jsonl": "jsonlines",
    ".xlsw": "workbook",
    ".rss": "rss",
}

_CONTENT_TYPE_FORMATS = {
    "text/csv": "delimited",
    "text/tab-separated-values": "delimited",
    "text/plain": "delimited",
    "application/xml": "xml",
    "text/xml": "xml",
    "application/json": "json",
    "application/x-jsonlines": "jsonlines",
    "application/x-workbook": "workbook",
    "application/rss+xml": "rss",
}


def detect_format(filename: str, content_type: str = "") -> str:
    """Choose a reader from the filename extension, then content type.

    The content type is matched on its bare media type — parameters
    like ``"text/csv; charset=utf-8"`` are stripped — so a known
    explicit content type wins whenever the extension is unknown or
    missing.
    """
    name = filename.lower()
    for extension, fmt in _EXTENSION_FORMATS.items():
        if name.endswith(extension):
            return fmt
    media_type = content_type.split(";", 1)[0].strip().lower()
    if media_type in _CONTENT_TYPE_FORMATS:
        return _CONTENT_TYPE_FORMATS[media_type]
    raise IngestError(
        f"cannot determine format of {filename!r} "
        f"(content type {content_type!r})"
    )


def rows_from_payload(payload, fmt: str | None = None,
                      sheet: str | None = None) -> tuple[list[dict], str]:
    """Parse an :class:`UploadPayload` into rows; returns (rows, format)."""
    fmt = fmt or detect_format(payload.filename, payload.content_type)
    if fmt == "delimited":
        return parse_delimited(payload.data), fmt
    if fmt == "xml":
        return parse_xml_records(payload.data), fmt
    if fmt == "json":
        return parse_json_array(payload.data), fmt
    if fmt == "jsonlines":
        return parse_json_lines(payload.data), fmt
    if fmt == "workbook":
        workbook = parse_workbook(payload.data)
        worksheet = (workbook.sheet(sheet) if sheet
                     else workbook.first_sheet())
        return worksheet.to_records(), fmt
    if fmt == "rss":
        return [item.to_row() for item in parse_rss(payload.data)], fmt
    raise IngestError(f"unknown ingest format: {fmt!r}")


class DatasetIngestor:
    """Loads parsed uploads into a tenant's tables.

    When wired with a :class:`~repro.gateway.generations.
    GenerationRegistry`, every load that changes rows bumps the target
    table's generation, which invalidates gateway query-cache entries
    and runtime result-cache entries computed over the old rows.
    """

    def __init__(self, tenant, telemetry=None, generations=None,
                 contracts=None) -> None:
        self._tenant = tenant
        self._telemetry = telemetry
        self._generations = generations
        #: A :class:`~repro.contracts.ContractManager` (or the null
        #: twin / ``None``): every batch for a contracted table is
        #: enforced before it touches storage.
        self._contracts = contracts

    def _enforce(self, rows, table_name: str, source: str):
        """Contract-check one batch; ``None`` means ungoverned."""
        if self._contracts is None:
            return None
        return self._contracts.apply(
            self._tenant.tenant_id, table_name, rows, source=source,
        )

    def _mark_refreshed(self, table_name: str) -> None:
        if self._contracts is not None:
            self._contracts.mark_refreshed(
                self._tenant.tenant_id, table_name)

    def _evolve_table(self, table_name: str, contract) -> None:
        """Widen an existing table to its (re-declared) contract.

        A contract update that *adds* columns — the standard remedy
        after added-column drift — must be loadable into the table
        created under the previous version; evolution is additive
        only, so old rows are untouched.
        """
        if contract is None or not self._tenant.has_table(table_name):
            return
        table = self._tenant.table(table_name)
        missing = tuple(
            spec for spec in contract.schema().fields
            if not table.schema.has_field(spec.name)
        )
        if missing:
            table.add_fields(missing)

    @staticmethod
    def _note_enforcement(report: IngestReport, result) -> None:
        if result is None:
            return
        report.violations = len(result.violations)
        report.quarantined = len(result.quarantined)
        report.coerced = result.coerced
        report.drift = result.drift.drifted

    def _bump_generation(self, report: IngestReport) -> None:
        if self._generations is None or report.unchanged:
            return
        if not (report.inserted or report.updated):
            return
        from repro.gateway.generations import table_key
        self._generations.bump(
            table_key(self._tenant.tenant_id, report.table_name)
        )

    def _record(self, report: IngestReport, source: str) -> None:
        """Emit completion telemetry for one ingestion run."""
        telemetry = self._telemetry
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.events.emit(
            "ingest.complete", table=report.table_name,
            source=source, format=report.format,
            inserted=report.inserted, updated=report.updated,
            unchanged=report.unchanged,
        )
        if report.inserted:
            telemetry.metrics.counter(
                "ingest_rows_total", op="insert"
            ).inc(report.inserted)
        if report.updated:
            telemetry.metrics.counter(
                "ingest_rows_total", op="update"
            ).inc(report.updated)

    def ingest(self, payload, table_name: str,
               schema: Schema | None = None,
               fmt: str | None = None,
               sheet: str | None = None,
               key_field: str | None = None,
               indexed_fields: tuple = ()) -> IngestReport:
        """Full or incremental load of ``payload`` into ``table_name``.

        * First load: creates the table (inferring the schema unless one is
          declared) and inserts every row.
        * Subsequent loads with a ``key_field``: upserts row-by-row.
        * Identical payload bytes (by blob hash): short-circuits as
          ``unchanged``.
        """
        tracer = (self._telemetry.tracer if self._telemetry is not None
                  else None)
        if tracer is not None and tracer.enabled:
            with tracer.span("ingest") as span:
                span.set("table", table_name)
                span.set("filename", payload.filename)
                report = self._ingest_payload(
                    payload, table_name, schema, fmt, sheet,
                    key_field, indexed_fields,
                )
                span.set("format", report.format or "unchanged")
                span.set("inserted", report.inserted)
        else:
            report = self._ingest_payload(
                payload, table_name, schema, fmt, sheet, key_field,
                indexed_fields,
            )
        self._bump_generation(report)
        self._record(report, source="upload")
        self._mark_refreshed(table_name)
        return report

    def _ingest_payload(self, payload, table_name: str,
                        schema: Schema | None,
                        fmt: str | None, sheet: str | None,
                        key_field: str | None,
                        indexed_fields: tuple) -> IngestReport:
        blob_key = f"uploads/{table_name}/{payload.filename}"
        if self._tenant.blobs.exists(blob_key) \
                and self._tenant.blobs.unchanged(blob_key, payload.data):
            return IngestReport(table_name=table_name, unchanged=True)

        rows, detected = rows_from_payload(payload, fmt=fmt, sheet=sheet)
        report = IngestReport(table_name=table_name, format=detected)

        enforcement = self._enforce(rows, table_name, source="upload")
        contract = (None if self._contracts is None
                    else self._contracts.contract_for(
                        self._tenant.tenant_id, table_name))
        if enforcement is not None:
            rows = enforcement.rows
            self._note_enforcement(report, enforcement)
            if schema is None:
                schema = contract.schema()
            if key_field is None and contract.key_field:
                key_field = contract.key_field
            self._evolve_table(table_name, contract)

        validated = enforcement is not None
        if not self._tenant.has_table(table_name):
            table_schema = schema or infer_schema(rows)
            self._tenant.create_table(
                table_name, table_schema, indexed_fields
            )
            report.inserted = self._tenant.insert_rows(
                table_name, rows, validated=validated)
        elif key_field is not None:
            table = self._tenant.table(table_name)
            upsert = (table.upsert_validated_by if validated
                      else table.upsert_by)
            for row in rows:
                before = len(table)
                upsert(key_field, row)
                if len(table) > before:
                    report.inserted += 1
                else:
                    report.updated += 1
        else:
            report.inserted = self._tenant.insert_rows(
                table_name, rows, validated=validated)

        self._tenant.put_blob(
            blob_key, payload.data, payload.content_type,
            created_ms=payload.received_ms,
        )
        return report

    def ingest_rows(self, rows: list[dict], table_name: str,
                    schema: Schema | None = None,
                    indexed_fields: tuple = (),
                    key_field: str | None = None) -> IngestReport:
        """Load already-parsed rows (e.g. a crawl result) into a table.

        With a ``key_field`` (explicit or from the table's contract)
        rows are upserted instead of inserted, which makes replaying
        quarantined rows idempotent.
        """
        if not rows:
            raise IngestError("no rows to ingest")
        report = IngestReport(table_name=table_name, format="rows")

        enforcement = self._enforce(rows, table_name, source="rows")
        if enforcement is not None:
            contract = self._contracts.contract_for(
                self._tenant.tenant_id, table_name)
            rows = enforcement.rows
            self._note_enforcement(report, enforcement)
            if schema is None:
                schema = contract.schema()
            if key_field is None and contract.key_field:
                key_field = contract.key_field
            self._evolve_table(table_name, contract)

        validated = enforcement is not None
        created = False
        if not self._tenant.has_table(table_name):
            table_schema = schema or infer_schema(rows)
            self._tenant.create_table(
                table_name, table_schema, indexed_fields
            )
            created = True
        if key_field is not None and not created:
            table = self._tenant.table(table_name)
            upsert = (table.upsert_validated_by if validated
                      else table.upsert_by)
            for row in rows:
                before = len(table)
                upsert(key_field, row)
                if len(table) > before:
                    report.inserted += 1
                else:
                    report.updated += 1
        else:
            report.inserted = self._tenant.insert_rows(
                table_name, rows, validated=validated)
        self._bump_generation(report)
        self._record(report, source="rows")
        self._mark_refreshed(table_name)
        return report
