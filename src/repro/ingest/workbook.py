"""Workbook container: the reproduction's stand-in for Excel uploads.

The paper lists Excel among supported upload formats. Binary ``.xls``
parsing is out of scope for a from-scratch offline build, so we define an
equivalent *workbook* container — a JSON document holding multiple named
sheets, each with a header row and typed cells — which preserves exactly
the structure Symphony cares about (sheet selection, header mapping, typed
cells). See the substitution table in DESIGN.md.

Format::

    {
      "workbook": "<name>",
      "sheets": [
        {"name": "Inventory",
         "header": ["title", "price"],
         "rows": [["Halo", 49.99], ...]}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import IngestError, NotFoundError
from repro.ingest.readers import decode_text

__all__ = ["Worksheet", "Workbook", "parse_workbook", "dump_workbook"]


@dataclass(frozen=True)
class Worksheet:
    name: str
    header: tuple
    rows: tuple

    def to_records(self) -> list[dict]:
        out = []
        for i, row in enumerate(self.rows, start=1):
            if len(row) != len(self.header):
                raise IngestError(
                    f"sheet {self.name!r} row {i}: expected "
                    f"{len(self.header)} cells, got {len(row)}"
                )
            out.append(dict(zip(self.header, row)))
        return out


@dataclass(frozen=True)
class Workbook:
    name: str
    sheets: tuple

    def sheet(self, name: str) -> Worksheet:
        for sheet in self.sheets:
            if sheet.name == name:
                return sheet
        raise NotFoundError(
            f"workbook {self.name!r} has no sheet {name!r}; "
            f"available: {[s.name for s in self.sheets]}"
        )

    def sheet_names(self) -> list[str]:
        return [s.name for s in self.sheets]

    def first_sheet(self) -> Worksheet:
        return self.sheets[0]


def parse_workbook(data) -> Workbook:
    """Parse workbook JSON (bytes or str) into a :class:`Workbook`."""
    text = decode_text(data)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IngestError(f"invalid workbook JSON: {exc}") from exc
    if not isinstance(doc, dict) or "sheets" not in doc:
        raise IngestError("workbook document must contain a 'sheets' list")
    sheets = []
    for i, sheet in enumerate(doc["sheets"]):
        try:
            header = tuple(str(h) for h in sheet["header"])
            rows = tuple(tuple(row) for row in sheet["rows"])
            name = str(sheet.get("name") or f"Sheet{i + 1}")
        except (KeyError, TypeError) as exc:
            raise IngestError(f"malformed sheet {i}: {exc}") from exc
        if not header:
            raise IngestError(f"sheet {name!r} has an empty header")
        sheets.append(Worksheet(name, header, rows))
    if not sheets:
        raise IngestError("workbook contains no sheets")
    return Workbook(str(doc.get("workbook", "workbook")), tuple(sheets))


def dump_workbook(workbook: Workbook) -> bytes:
    """Serialize a :class:`Workbook` back to upload-ready bytes."""
    doc = {
        "workbook": workbook.name,
        "sheets": [
            {"name": s.name, "header": list(s.header),
             "rows": [list(row) for row in s.rows]}
            for s in workbook.sheets
        ],
    }
    return json.dumps(doc, indent=2).encode("utf-8")
