"""Scheduled refresh of registered data feeds.

The paper's dynamic-data story ("real-time data freshness") needs more
than one-shot uploads: RSS feeds are polled, crawls re-run, HTTP drops
re-fetched. The :class:`RefreshScheduler` tracks refreshable feeds with
per-feed intervals against the simulated clock; ``run_due()`` executes
whatever is due and reports per-feed outcomes, isolating failures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DuplicateError, NotFoundError

__all__ = ["RefreshOutcome", "ScheduledFeed", "RefreshScheduler"]


@dataclass(frozen=True)
class RefreshOutcome:
    feed_id: str
    ran: bool
    unchanged: bool = False
    inserted: int = 0
    updated: int = 0
    error: str = ""


@dataclass
class ScheduledFeed:
    feed_id: str
    interval_ms: int
    action: object              # zero-arg callable -> IngestReport
    last_run_ms: int = -1
    failures: int = 0
    #: Generation key bumped when a run changes rows (see
    #: :mod:`repro.gateway.generations`); empty disables the bump.
    generation_key: str = ""

    def due(self, now_ms: int) -> bool:
        return self.last_run_ms < 0 or \
            now_ms - self.last_run_ms >= self.interval_ms


class RefreshScheduler:
    """Owns the refresh calendar for one tenant's feeds."""

    def __init__(self, clock, generations=None, telemetry=None,
                 contracts=None) -> None:
        self._clock = clock
        self._feeds: dict[str, ScheduledFeed] = {}
        self._generations = generations
        self._telemetry = telemetry
        #: A :class:`~repro.contracts.ContractManager` (or ``None``):
        #: freshness SLAs are judged after every scheduler pass, so a
        #: feed that stops (or keeps failing) goes stale on the same
        #: clock that drives its refreshes.
        self._contracts = contracts

    def register(self, feed_id: str, interval_ms: int, action,
                 generation_key: str = "") -> None:
        """Register ``action`` (a zero-arg ingest callable) under
        ``feed_id`` to run every ``interval_ms`` simulated ms.

        ``generation_key`` marks which cached data a successful refresh
        invalidates; actions built on a generation-wired
        :class:`~repro.ingest.pipeline.DatasetIngestor` already bump
        their table's key and can leave this empty.
        """
        if feed_id in self._feeds:
            raise DuplicateError(f"feed already scheduled: {feed_id}")
        if interval_ms <= 0:
            raise ValueError("refresh interval must be positive")
        self._feeds[feed_id] = ScheduledFeed(
            feed_id, interval_ms, action,
            generation_key=generation_key,
        )

    def unregister(self, feed_id: str) -> None:
        if feed_id not in self._feeds:
            raise NotFoundError(f"no scheduled feed {feed_id!r}")
        del self._feeds[feed_id]

    def feed_ids(self) -> list[str]:
        return sorted(self._feeds)

    def due_feeds(self) -> list[str]:
        now = self._clock.now_ms
        return sorted(fid for fid, feed in self._feeds.items()
                      if feed.due(now))

    def run_due(self) -> list[RefreshOutcome]:
        """Run every due feed; failures are isolated per feed.

        *Any* exception from a feed action is contained — a feed
        raising ``KeyError`` must not abort the whole pass any more
        than an :class:`~repro.errors.IngestError` does. Success resets
        the feed's ``failures`` streak; every run emits a
        ``refresh.complete`` / ``refresh.failed`` event. After the
        pass, contracted feeds get their freshness SLAs re-judged.
        """
        outcomes = []
        for feed_id in self.due_feeds():
            feed = self._feeds[feed_id]
            feed.last_run_ms = self._clock.now_ms
            try:
                report = feed.action()
            except Exception as exc:
                feed.failures += 1
                self._emit("refresh.failed", feed,
                           error=str(exc), failures=feed.failures)
                outcomes.append(RefreshOutcome(
                    feed_id=feed_id, ran=True, error=str(exc),
                ))
                continue
            feed.failures = 0
            outcome = RefreshOutcome(
                feed_id=feed_id,
                ran=True,
                unchanged=getattr(report, "unchanged", False),
                inserted=getattr(report, "inserted", 0),
                updated=getattr(report, "updated", 0),
            )
            if (self._generations is not None and feed.generation_key
                    and not outcome.unchanged
                    and (outcome.inserted or outcome.updated)):
                self._generations.bump(feed.generation_key)
            self._emit("refresh.complete", feed,
                       unchanged=outcome.unchanged,
                       inserted=outcome.inserted,
                       updated=outcome.updated)
            outcomes.append(outcome)
        if self._contracts is not None:
            self._contracts.check_freshness()
        return outcomes

    def _emit(self, kind: str, feed: ScheduledFeed, **fields) -> None:
        if self._telemetry is None or not self._telemetry.enabled:
            return
        self._telemetry.events.emit(kind, feed=feed.feed_id, **fields)

    def run_all_for(self, duration_ms: int,
                    tick_ms: int | None = None) -> list:
        """Advance the clock through ``duration_ms``, refreshing on the
        way; returns the concatenated outcomes of each tick."""
        tick = tick_ms or min(
            (f.interval_ms for f in self._feeds.values()),
            default=duration_ms,
        )
        outcomes = []
        elapsed = 0
        while elapsed < duration_ms:
            step = min(tick, duration_ms - elapsed)
            self._clock.advance(step)
            elapsed += step
            outcomes.extend(self.run_due())
        return outcomes
