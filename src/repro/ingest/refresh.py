"""Scheduled refresh of registered data feeds.

The paper's dynamic-data story ("real-time data freshness") needs more
than one-shot uploads: RSS feeds are polled, crawls re-run, HTTP drops
re-fetched. The :class:`RefreshScheduler` tracks refreshable feeds with
per-feed intervals against the simulated clock; ``run_due()`` executes
whatever is due and reports per-feed outcomes, isolating failures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DuplicateError, NotFoundError, ReproError

__all__ = ["RefreshOutcome", "ScheduledFeed", "RefreshScheduler"]


@dataclass(frozen=True)
class RefreshOutcome:
    feed_id: str
    ran: bool
    unchanged: bool = False
    inserted: int = 0
    updated: int = 0
    error: str = ""


@dataclass
class ScheduledFeed:
    feed_id: str
    interval_ms: int
    action: object              # zero-arg callable -> IngestReport
    last_run_ms: int = -1
    failures: int = 0
    #: Generation key bumped when a run changes rows (see
    #: :mod:`repro.gateway.generations`); empty disables the bump.
    generation_key: str = ""

    def due(self, now_ms: int) -> bool:
        return self.last_run_ms < 0 or \
            now_ms - self.last_run_ms >= self.interval_ms


class RefreshScheduler:
    """Owns the refresh calendar for one tenant's feeds."""

    def __init__(self, clock, generations=None) -> None:
        self._clock = clock
        self._feeds: dict[str, ScheduledFeed] = {}
        self._generations = generations

    def register(self, feed_id: str, interval_ms: int, action,
                 generation_key: str = "") -> None:
        """Register ``action`` (a zero-arg ingest callable) under
        ``feed_id`` to run every ``interval_ms`` simulated ms.

        ``generation_key`` marks which cached data a successful refresh
        invalidates; actions built on a generation-wired
        :class:`~repro.ingest.pipeline.DatasetIngestor` already bump
        their table's key and can leave this empty.
        """
        if feed_id in self._feeds:
            raise DuplicateError(f"feed already scheduled: {feed_id}")
        if interval_ms <= 0:
            raise ValueError("refresh interval must be positive")
        self._feeds[feed_id] = ScheduledFeed(
            feed_id, interval_ms, action,
            generation_key=generation_key,
        )

    def unregister(self, feed_id: str) -> None:
        if feed_id not in self._feeds:
            raise NotFoundError(f"no scheduled feed {feed_id!r}")
        del self._feeds[feed_id]

    def feed_ids(self) -> list[str]:
        return sorted(self._feeds)

    def due_feeds(self) -> list[str]:
        now = self._clock.now_ms
        return sorted(fid for fid, feed in self._feeds.items()
                      if feed.due(now))

    def run_due(self) -> list[RefreshOutcome]:
        """Run every due feed; failures are isolated per feed."""
        outcomes = []
        for feed_id in self.due_feeds():
            feed = self._feeds[feed_id]
            feed.last_run_ms = self._clock.now_ms
            try:
                report = feed.action()
            except ReproError as exc:
                feed.failures += 1
                outcomes.append(RefreshOutcome(
                    feed_id=feed_id, ran=True, error=str(exc),
                ))
                continue
            outcome = RefreshOutcome(
                feed_id=feed_id,
                ran=True,
                unchanged=getattr(report, "unchanged", False),
                inserted=getattr(report, "inserted", 0),
                updated=getattr(report, "updated", 0),
            )
            if (self._generations is not None and feed.generation_key
                    and not outcome.unchanged
                    and (outcome.inserted or outcome.updated)):
                self._generations.bump(feed.generation_key)
            outcomes.append(outcome)
        return outcomes

    def run_all_for(self, duration_ms: int,
                    tick_ms: int | None = None) -> list:
        """Advance the clock through ``duration_ms``, refreshing on the
        way; returns the concatenated outcomes of each tick."""
        tick = tick_ms or min(
            (f.interval_ms for f in self._feeds.values()),
            default=duration_ms,
        )
        outcomes = []
        elapsed = 0
        while elapsed < duration_ms:
            step = min(tick, duration_ms - elapsed)
            self._clock.advance(step)
            elapsed += step
            outcomes.extend(self.run_due())
        return outcomes
