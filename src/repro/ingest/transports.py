"""Simulated upload transports: HTTP file upload and an FTP drop folder.

The platform code downstream only sees an :class:`UploadPayload`; these
channels exist so the transport leg is a real, fault-injectable code path
(timeouts, resets, truncation) rather than an assumed success.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NotFoundError, TransportError
from repro.util import SimClock, deterministic_rng

__all__ = ["UploadPayload", "FaultPolicy", "HttpUploadChannel", "FtpServer"]


@dataclass(frozen=True)
class UploadPayload:
    """What a transport delivers to the ingestion pipeline."""

    filename: str
    data: bytes
    content_type: str
    received_ms: int
    transport: str


@dataclass
class FaultPolicy:
    """Deterministic fault injection for transports.

    ``fail_probability`` draws from a seeded RNG, so a given (seed,
    sequence) always fails the same operations — tests can assert on
    specific failures.
    """

    fail_probability: float = 0.0
    truncate_probability: float = 0.0
    seed: object = 0
    _sequence: int = field(default=0, repr=False)

    def _draw(self) -> float:
        self._sequence += 1
        return deterministic_rng((self.seed, self._sequence)).random()

    def apply(self, data: bytes, operation: str) -> bytes:
        if self.fail_probability and self._draw() < self.fail_probability:
            raise TransportError(
                f"simulated transport failure during {operation}"
            )
        if self.truncate_probability \
                and self._draw() < self.truncate_probability:
            return data[: max(1, len(data) // 2)]
        return data


class HttpUploadChannel:
    """A multipart-POST-shaped upload endpoint.

    Latency model: a per-request overhead plus bandwidth-proportional
    transfer time, charged to the simulated clock.
    """

    _OVERHEAD_MS = 20.0
    _BYTES_PER_MS = 128 * 1024 / 1000.0  # ~128 KB/s up

    def __init__(self, clock: SimClock | None = None,
                 faults: FaultPolicy | None = None) -> None:
        self.clock = clock or SimClock()
        self.faults = faults or FaultPolicy()

    def post_file(self, filename: str, data: bytes,
                  content_type: str = "text/plain") -> UploadPayload:
        if not data:
            raise TransportError("refusing empty HTTP upload")
        delivered = self.faults.apply(bytes(data), f"POST {filename}")
        self.clock.advance(
            self._OVERHEAD_MS + len(delivered) / self._BYTES_PER_MS
        )
        return UploadPayload(
            filename=filename,
            data=delivered,
            content_type=content_type,
            received_ms=self.clock.now_ms,
            transport="http",
        )


class FtpServer:
    """An FTP-like drop folder: put files, then collect them for ingestion."""

    _OVERHEAD_MS = 35.0
    _BYTES_PER_MS = 256 * 1024 / 1000.0

    def __init__(self, clock: SimClock | None = None,
                 faults: FaultPolicy | None = None) -> None:
        self.clock = clock or SimClock()
        self.faults = faults or FaultPolicy()
        self._files: dict[str, bytes] = {}

    def put(self, path: str, data: bytes) -> None:
        if not data:
            raise TransportError("refusing empty FTP upload")
        stored = self.faults.apply(bytes(data), f"STOR {path}")
        self.clock.advance(
            self._OVERHEAD_MS + len(stored) / self._BYTES_PER_MS
        )
        self._files[path] = stored

    def listdir(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def retrieve(self, path: str,
                 content_type: str = "text/plain") -> UploadPayload:
        if path not in self._files:
            raise NotFoundError(f"no file on FTP server at {path!r}")
        data = self.faults.apply(self._files[path], f"RETR {path}")
        self.clock.advance(
            self._OVERHEAD_MS + len(data) / self._BYTES_PER_MS
        )
        return UploadPayload(
            filename=path.rsplit("/", 1)[-1],
            data=data,
            content_type=content_type,
            received_ms=self.clock.now_ms,
            transport="ftp",
        )

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise NotFoundError(f"no file on FTP server at {path!r}")
        del self._files[path]
