"""Structured-format readers: delimited text, XML, JSON and JSON lines.

Every reader returns a list of flat ``dict`` rows with string keys; type
coercion happens later against the table schema (declared or inferred), so
readers stay dumb and lossless.
"""

from __future__ import annotations

import csv
import io
import json
import xml.etree.ElementTree as ET
from collections import Counter

from repro.errors import IngestError

__all__ = [
    "sniff_delimiter",
    "parse_delimited",
    "parse_xml_records",
    "parse_json_lines",
    "parse_json_array",
    "decode_text",
]

_CANDIDATE_DELIMITERS = (",", "\t", ";", "|")


def decode_text(data) -> str:
    """Accept ``str`` or ``bytes`` (UTF-8, BOM-tolerant) and return text."""
    if isinstance(data, str):
        return data
    try:
        return data.decode("utf-8-sig")
    except UnicodeDecodeError as exc:
        raise IngestError(f"upload is not valid UTF-8: {exc}") from exc


def sniff_delimiter(text: str) -> str:
    """Pick the delimiter whose per-line count is large and most stable."""
    lines = [line for line in text.splitlines() if line.strip()][:20]
    if not lines:
        raise IngestError("cannot sniff a delimiter from empty input")
    best, best_score = ",", -1.0
    for candidate in _CANDIDATE_DELIMITERS:
        counts = [line.count(candidate) for line in lines]
        if min(counts) == 0:
            continue
        spread = max(counts) - min(counts)
        score = min(counts) - spread * 0.5
        if score > best_score:
            best, best_score = candidate, score
    if best_score < 0:
        raise IngestError(
            "no consistent delimiter found; expected one of "
            + ", ".join(repr(d) for d in _CANDIDATE_DELIMITERS)
        )
    return best


def parse_delimited(data, delimiter: str | None = None,
                    has_header: bool = True) -> list[dict]:
    """Parse CSV/TSV/semicolon/pipe-delimited text into rows.

    Without a header, columns are named ``column_1..column_n``. Ragged rows
    raise :class:`IngestError` (silently dropping data is worse than
    failing the upload).
    """
    text = decode_text(data)
    if not text.strip():
        raise IngestError("empty delimited upload")
    if delimiter is None:
        try:
            delimiter = sniff_delimiter(text)
        except IngestError:
            delimiter = ","  # single-column upload: no delimiter to find
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if any(cell.strip() for cell in row)]
    if not rows:
        raise IngestError("delimited upload contains no data rows")
    if has_header:
        header = [name.strip() or f"column_{i + 1}"
                  for i, name in enumerate(rows[0])]
        data_rows = rows[1:]
    else:
        width = len(rows[0])
        header = [f"column_{i + 1}" for i in range(width)]
        data_rows = rows
    _reject_duplicate_columns(header)
    out = []
    for line_no, row in enumerate(data_rows, start=2 if has_header else 1):
        if len(row) != len(header):
            raise IngestError(
                f"line {line_no}: expected {len(header)} fields, "
                f"got {len(row)}"
            )
        out.append({name: cell.strip()
                    for name, cell in zip(header, row)})
    if not out:
        raise IngestError("delimited upload has a header but no rows")
    return out


def _reject_duplicate_columns(header: list[str]) -> None:
    duplicates = [name for name, count in Counter(header).items()
                  if count > 1]
    if duplicates:
        raise IngestError(
            f"duplicate column names in upload: {sorted(duplicates)}"
        )


def parse_xml_records(data, record_element: str | None = None) -> list[dict]:
    """Parse an XML document of repeated record elements into rows.

    When ``record_element`` is omitted, the most common child tag of the
    root is used. Each record's child elements become fields; attributes
    are merged in with an ``@`` prefix when they would collide.
    """
    text = decode_text(data)
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise IngestError(f"invalid XML: {exc}") from exc
    children = list(root)
    if not children:
        raise IngestError("XML root has no record elements")
    if record_element is None:
        tag_counts = Counter(child.tag for child in children)
        record_element = tag_counts.most_common(1)[0][0]
    records = [child for child in children if child.tag == record_element]
    if not records:
        raise IngestError(
            f"no <{record_element}> elements under the XML root"
        )
    rows = []
    for element in records:
        row: dict[str, str] = {}
        for name, value in element.attrib.items():
            row[name] = value
        for child in element:
            value = (child.text or "").strip()
            if child.tag in row:
                row[f"@{child.tag}"] = row.pop(child.tag)
            row[child.tag] = value
        if not row and (element.text or "").strip():
            row["value"] = element.text.strip()
        rows.append(row)
    return rows


def parse_json_lines(data) -> list[dict]:
    """One JSON object per line."""
    text = decode_text(data)
    rows = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            value = json.loads(line)
        except json.JSONDecodeError as exc:
            raise IngestError(f"line {line_no}: invalid JSON: {exc}") from exc
        if not isinstance(value, dict):
            raise IngestError(
                f"line {line_no}: expected a JSON object, "
                f"got {type(value).__name__}"
            )
        rows.append(value)
    if not rows:
        raise IngestError("JSON-lines upload contains no rows")
    return rows


def parse_json_array(data) -> list[dict]:
    """A top-level JSON array of objects."""
    text = decode_text(data)
    try:
        value = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IngestError(f"invalid JSON: {exc}") from exc
    if not isinstance(value, list):
        raise IngestError(
            f"expected a JSON array, got {type(value).__name__}"
        )
    rows = []
    for i, item in enumerate(value):
        if not isinstance(item, dict):
            raise IngestError(
                f"array element {i} is not an object"
            )
        rows.append(item)
    if not rows:
        raise IngestError("JSON array upload contains no rows")
    return rows
