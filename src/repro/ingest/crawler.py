"""URL crawling over the synthetic web.

The third upload method in the paper. The crawler does a breadth-first walk
from seed URLs, honouring a per-domain page budget, an allowed-domain list,
and simple robots-style exclusion prefixes. Crawled pages become rows
(url / title / body / site / published) for the ingestion pipeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import NotFoundError, TransportError
from repro.util import SimClock, deterministic_rng

__all__ = ["CrawlPolicy", "CrawlResult", "Crawler"]


@dataclass(frozen=True)
class CrawlPolicy:
    max_pages: int = 100
    max_depth: int = 3
    allowed_domains: tuple = ()        # empty = any domain
    excluded_path_prefixes: tuple = ()  # manual "Disallow:" prefixes
    respect_robots: bool = True        # fetch and honour robots.txt
    fetch_failure_probability: float = 0.0
    seed: object = 0


@dataclass
class CrawlResult:
    pages: list = field(default_factory=list)   # row dicts
    visited: set = field(default_factory=set)
    skipped: list = field(default_factory=list)  # (url, reason)
    failed: list = field(default_factory=list)   # (url, error)

    def rows(self) -> list[dict]:
        return list(self.pages)


class Crawler:
    """BFS crawler against a :class:`~repro.simweb.model.SyntheticWeb`."""

    _FETCH_MS = 25.0

    def __init__(self, web, clock: SimClock | None = None,
                 robots_seed: object = 2010) -> None:
        self._web = web
        self.clock = clock or SimClock()
        self._robots_seed = robots_seed
        self._robots_cache: dict[str, object] = {}

    def _robots_for(self, domain: str):
        """Fetch and cache a site's robots rules (one fetch per site)."""
        from repro.simweb.robots import parse_robots, robots_txt_for
        if domain not in self._robots_cache:
            self.clock.advance(self._FETCH_MS)
            self._robots_cache[domain] = parse_robots(
                robots_txt_for(domain, self._robots_seed)
            )
        return self._robots_cache[domain]

    def crawl(self, seeds, policy: CrawlPolicy | None = None) -> CrawlResult:
        policy = policy or CrawlPolicy()
        result = CrawlResult()
        queue = deque((url, 0) for url in seeds)
        fetch_count = 0
        while queue and len(result.pages) < policy.max_pages:
            url, depth = queue.popleft()
            if url in result.visited:
                continue
            result.visited.add(url)
            reason = self._disallowed(url, policy)
            if reason:
                result.skipped.append((url, reason))
                continue
            fetch_count += 1
            try:
                page = self._fetch(url, policy, fetch_count)
            except (NotFoundError, TransportError) as exc:
                result.failed.append((url, str(exc)))
                continue
            result.pages.append({
                "url": page.url,
                "title": page.title,
                "body": page.body,
                "site": page.site,
                "topic": page.topic,
                "published_ms": page.published_ms,
            })
            if depth < policy.max_depth:
                for target in page.outlinks:
                    if target not in result.visited:
                        queue.append((target, depth + 1))
        return result

    def _disallowed(self, url: str, policy: CrawlPolicy) -> str | None:
        domain, __, path = url.removeprefix("http://").partition("/")
        if policy.allowed_domains and domain not in policy.allowed_domains:
            return f"domain {domain} not in allowed list"
        for prefix in policy.excluded_path_prefixes:
            if ("/" + path).startswith(prefix):
                return f"path excluded by prefix {prefix!r}"
        if policy.respect_robots:
            rules = self._robots_for(domain)
            if not rules.allows("/" + path):
                return f"disallowed by {domain}/robots.txt"
        return None

    def _fetch(self, url: str, policy: CrawlPolicy, sequence: int):
        self.clock.advance(self._FETCH_MS)
        if policy.fetch_failure_probability:
            draw = deterministic_rng(
                (policy.seed, "fetch", sequence)
            ).random()
            if draw < policy.fetch_failure_probability:
                raise TransportError(f"simulated fetch timeout for {url}")
        return self._web.page(url)
