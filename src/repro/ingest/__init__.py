"""Data acquisition: uploads, feeds, crawling, parsing, normalization.

The paper: "It supports a variety of upload methods (e.g., HTTP/FTP file
upload, RSS feeds, or URL crawling), as well as a variety of structured
data formats (e.g., delimited files, Excel files, and XML)."

* :mod:`readers` — delimited / XML / JSON(-lines) parsing into rows;
* :mod:`workbook` — a multi-sheet workbook container standing in for
  binary Excel files (see DESIGN.md substitution table);
* :mod:`rss` — RSS 2.0 parsing and a feed publisher over the synthetic web;
* :mod:`transports` — simulated HTTP/FTP upload channels with fault
  injection;
* :mod:`crawler` — URL crawling over the synthetic web;
* :mod:`pipeline` — ties a transport + reader to a tenant table, with
  schema inference and incremental refresh.
"""

from repro.ingest.crawler import CrawlPolicy, Crawler, CrawlResult
from repro.ingest.pipeline import DatasetIngestor, IngestReport
from repro.ingest.readers import (
    parse_delimited,
    parse_json_array,
    parse_json_lines,
    parse_xml_records,
    sniff_delimiter,
)
from repro.ingest.rss import FeedPublisher, RssItem, parse_rss
from repro.ingest.transports import (
    FaultPolicy,
    FtpServer,
    HttpUploadChannel,
    UploadPayload,
)
from repro.ingest.workbook import Workbook, Worksheet, parse_workbook

__all__ = [
    "CrawlPolicy",
    "Crawler",
    "CrawlResult",
    "DatasetIngestor",
    "IngestReport",
    "parse_delimited",
    "parse_json_array",
    "parse_json_lines",
    "parse_xml_records",
    "sniff_delimiter",
    "FeedPublisher",
    "RssItem",
    "parse_rss",
    "FaultPolicy",
    "FtpServer",
    "HttpUploadChannel",
    "UploadPayload",
    "Workbook",
    "Worksheet",
    "parse_workbook",
]
