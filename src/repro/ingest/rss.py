"""RSS 2.0: parsing uploaded feeds and publishing feeds from the sim web.

Parsing turns ``<item>`` elements into rows for ingestion; the publisher
renders a site's news articles as RSS XML so the "RSS feed" upload method
exercises a real parse of real markup rather than shortcutting through
Python objects.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from email.utils import formatdate, parsedate_to_datetime
from xml.sax.saxutils import escape

from repro.errors import IngestError

__all__ = ["RssItem", "parse_rss", "FeedPublisher"]


@dataclass(frozen=True)
class RssItem:
    title: str
    link: str
    description: str
    pub_date_ms: int | None = None
    guid: str | None = None

    def to_row(self) -> dict:
        row = {
            "title": self.title,
            "link": self.link,
            "description": self.description,
        }
        if self.pub_date_ms is not None:
            row["pub_date_ms"] = self.pub_date_ms
        if self.guid:
            row["guid"] = self.guid
        return row


def _text(element, tag: str) -> str:
    child = element.find(tag)
    return (child.text or "").strip() if child is not None else ""


def _parse_pub_date(value: str) -> int | None:
    if not value:
        return None
    try:
        return int(parsedate_to_datetime(value).timestamp() * 1000)
    except (TypeError, ValueError):
        return None


def parse_rss(data) -> list[RssItem]:
    """Parse RSS 2.0 XML into :class:`RssItem` objects."""
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8-sig")
        except UnicodeDecodeError as exc:
            raise IngestError(f"feed is not valid UTF-8: {exc}") from exc
    try:
        root = ET.fromstring(data)
    except ET.ParseError as exc:
        raise IngestError(f"invalid RSS XML: {exc}") from exc
    if root.tag != "rss":
        raise IngestError(f"expected <rss> root, found <{root.tag}>")
    channel = root.find("channel")
    if channel is None:
        raise IngestError("RSS document has no <channel>")
    items = []
    for element in channel.findall("item"):
        title = _text(element, "title")
        link = _text(element, "link")
        if not title and not link:
            raise IngestError("RSS item lacks both title and link")
        items.append(RssItem(
            title=title,
            link=link,
            description=_text(element, "description"),
            pub_date_ms=_parse_pub_date(_text(element, "pubDate")),
            guid=_text(element, "guid") or None,
        ))
    if not items:
        raise IngestError("RSS channel contains no items")
    return items


class FeedPublisher:
    """Renders a synthetic-web site's news as an RSS 2.0 document."""

    def __init__(self, web) -> None:
        self._web = web

    def feed_xml(self, domain: str, max_items: int = 20) -> bytes:
        site = self._web.site(domain)
        articles = sorted(
            self._web.news_on(domain),
            key=lambda a: (-a.published_ms, a.url),
        )[:max_items]
        parts = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            '<rss version="2.0">',
            "<channel>",
            f"<title>{escape(site.title)}</title>",
            f"<link>http://{escape(domain)}/</link>",
            f"<description>{escape(site.topic)} news from "
            f"{escape(domain)}</description>",
        ]
        for article in articles:
            parts.extend([
                "<item>",
                f"<title>{escape(article.headline)}</title>",
                f"<link>{escape(article.url)}</link>",
                f"<description>{escape(article.snippet)}</description>",
                f"<pubDate>{formatdate(article.published_ms / 1000.0)}"
                f"</pubDate>",
                f"<guid>{escape(article.url)}</guid>",
                "</item>",
            ])
        parts.extend(["</channel>", "</rss>"])
        return "\n".join(parts).encode("utf-8")
