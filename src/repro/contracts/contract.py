"""Data-contract declarations: typed fields, normalization, freshness.

A :class:`DataContract` is the formal agreement between a data producer
(the designer's feed) and the platform (ROADMAP item 3, grounded in the
ODCS-style contract ADR): a typed field schema with constraints
(required/nullable, ranges, enums), canonical-key normalization rules
(trim / case / unit normalization so ``key_field`` upserts and
entity-driven supplemental queries see one canonical spelling), a
violation policy, and a freshness SLA. Contracts are plain frozen data
— enforcement lives in :mod:`repro.contracts.enforcer`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ValidationError
from repro.storage.records import FieldSpec, FieldType, Schema

__all__ = [
    "FieldContract",
    "FreshnessSLA",
    "DataContract",
    "VIOLATION_POLICIES",
    "NORMALIZE_RULES",
    "normalize_value",
]

#: What the enforcer does with a violating row.
VIOLATION_POLICIES = ("reject", "quarantine", "coerce")

_WS_RE = re.compile(r"\s+")
#: ``"12.5 kg"`` / ``"80GB"`` — a number followed by a unit suffix.
_UNIT_RE = re.compile(r"([+-]?(?:\d+\.?\d*|\.\d+))\s*([^\d\s.+-]+)$")


def _rule_trim(text: str) -> str:
    return text.strip()


def _rule_collapse_ws(text: str) -> str:
    return _WS_RE.sub(" ", text).strip()


def _rule_lower(text: str) -> str:
    return text.lower()


def _rule_upper(text: str) -> str:
    return text.upper()


def _rule_title(text: str) -> str:
    return text.title()


_CURRENCY_TABLE = str.maketrans("", "", "$€£¥,")


def _rule_strip_currency(text: str) -> str:
    return text.translate(_CURRENCY_TABLE).strip()


#: Named normalization rules a :class:`FieldContract` can compose.
NORMALIZE_RULES = {
    "trim": _rule_trim,
    "collapse_ws": _rule_collapse_ws,
    "lower": _rule_lower,
    "upper": _rule_upper,
    "title": _rule_title,
    "strip_currency": _rule_strip_currency,
}


def normalize_value(value, rules: tuple, units: dict | None = None):
    """Apply ``rules`` (then unit normalization) to one raw value.

    Non-string values pass through untouched except for unit handling;
    normalization is about taming the string spellings feeds disagree
    on (``" ACME "`` vs ``"acme"``, ``"$49.99"``, ``"1.2 kg"``).
    """
    if value is None:
        return None
    if isinstance(value, str):
        for rule in rules:
            try:
                value = NORMALIZE_RULES[rule](value)
            except KeyError:
                raise ValidationError(
                    f"unknown normalization rule {rule!r}; expected one "
                    f"of {sorted(NORMALIZE_RULES)}"
                ) from None
        if units:
            match = _UNIT_RE.match(value.strip())
            if match:
                number, suffix = match.groups()
                factor = units.get(suffix) or units.get(suffix.lower())
                if factor is not None:
                    scaled = float(number) * factor
                    return int(scaled) if scaled == int(scaled) \
                        else scaled
    return value


@dataclass(frozen=True)
class FieldContract:
    """One declared column: type, constraints, normalization.

    ``required`` means the column must be present and non-empty in every
    row; ``nullable`` (the default) permits empty/missing *values* for a
    present column. ``allowed`` enumerates the canonical legal values;
    ``min_value``/``max_value`` bound numeric fields. ``normalize``
    names rules from :data:`NORMALIZE_RULES`, applied in order before
    validation; ``units`` maps unit suffixes to multipliers (e.g.
    ``{"kg": 1000, "g": 1}`` canonicalizes weights to grams).
    """

    name: str
    type: FieldType = FieldType.STRING
    required: bool = False
    nullable: bool = True
    min_value: float | None = None
    max_value: float | None = None
    allowed: tuple = ()
    normalize: tuple = ()
    units: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rule in self.normalize:
            if rule not in NORMALIZE_RULES:
                raise ValidationError(
                    f"field {self.name!r}: unknown normalization rule "
                    f"{rule!r}"
                )

    def normalized(self, value):
        """The canonical spelling of ``value`` under this field's rules."""
        return normalize_value(value, self.normalize, self.units)

    def to_dict(self) -> dict:
        data = {"name": self.name, "type": self.type.value}
        if self.required:
            data["required"] = True
        if not self.nullable:
            data["nullable"] = False
        if self.min_value is not None:
            data["min_value"] = self.min_value
        if self.max_value is not None:
            data["max_value"] = self.max_value
        if self.allowed:
            data["allowed"] = list(self.allowed)
        if self.normalize:
            data["normalize"] = list(self.normalize)
        if self.units:
            data["units"] = dict(self.units)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FieldContract":
        return cls(
            name=data["name"],
            type=FieldType(data.get("type", "string")),
            required=data.get("required", False),
            nullable=data.get("nullable", True),
            min_value=data.get("min_value"),
            max_value=data.get("max_value"),
            allowed=tuple(data.get("allowed", ())),
            normalize=tuple(data.get("normalize", ())),
            units=dict(data.get("units", {})),
        )


@dataclass(frozen=True)
class FreshnessSLA:
    """How stale a dataset may get before its tenant must be told.

    ``max_staleness_ms`` is judged on the simulated clock against the
    feed's last *successful* refresh; ``objective`` is the target
    fraction of freshness checks that find the feed fresh — it feeds
    the platform-wide freshness error budget in :mod:`repro.slo`.
    """

    max_staleness_ms: int
    objective: float = 0.99

    def __post_init__(self) -> None:
        if self.max_staleness_ms <= 0:
            raise ValidationError("max_staleness_ms must be positive")
        if not 0.0 < self.objective < 1.0:
            raise ValidationError("objective must be within (0, 1)")

    def to_dict(self) -> dict:
        return {"max_staleness_ms": self.max_staleness_ms,
                "objective": self.objective}

    @classmethod
    def from_dict(cls, data: dict) -> "FreshnessSLA":
        return cls(**data)


@dataclass(frozen=True)
class DataContract:
    """The governed-ingest agreement for one tenant table."""

    table: str
    fields: tuple
    version: int = 1
    #: Canonical business key; normalized before every upsert so two
    #: spellings of the same entity converge on one record.
    key_field: str = ""
    policy: str = "quarantine"
    freshness: FreshnessSLA | None = None
    #: Columns beyond the declared ones: drift when False (the default),
    #: silently dropped when True.
    allow_extra_fields: bool = False

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValidationError("a contract needs at least one field")
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValidationError("duplicate field names in contract")
        if self.policy not in VIOLATION_POLICIES:
            raise ValidationError(
                f"unknown violation policy {self.policy!r}; expected "
                f"one of {VIOLATION_POLICIES}"
            )
        if self.key_field and self.key_field not in names:
            raise ValidationError(
                f"key_field {self.key_field!r} is not a contract field"
            )

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def spec(self, name: str) -> FieldContract:
        for spec in self.fields:
            if spec.name == name:
                return spec
        raise ValidationError(f"no such contract field: {name}")

    def schema(self) -> Schema:
        """The storage schema this contract pins the table to."""
        return Schema(tuple(
            FieldSpec(f.name, f.type, required=f.required)
            for f in self.fields
        ))

    @cached_property
    def _normalizers(self) -> tuple:
        """(name, normalizer) for just the fields that rewrite values —
        precomputed so rule-less fields cost nothing per row."""
        return tuple(
            (f.name, f.normalized) for f in self.fields
            if f.normalize or f.units
        )

    def normalize_row(self, row: dict) -> dict:
        """Canonicalize every declared field's raw value in ``row``."""
        out = dict(row)
        for name, normalized in self._normalizers:
            if name in out:
                out[name] = normalized(out[name])
        return out

    def canonical_key(self, row: dict):
        """The normalized key value identifying ``row``'s entity."""
        if not self.key_field:
            return None
        return self.spec(self.key_field).normalized(
            row.get(self.key_field)
        )

    def to_dict(self) -> dict:
        data = {
            "table": self.table,
            "version": self.version,
            "policy": self.policy,
            "fields": [f.to_dict() for f in self.fields],
        }
        if self.key_field:
            data["key_field"] = self.key_field
        if self.freshness is not None:
            data["freshness"] = self.freshness.to_dict()
        if self.allow_extra_fields:
            data["allow_extra_fields"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DataContract":
        freshness = data.get("freshness")
        return cls(
            table=data["table"],
            fields=tuple(FieldContract.from_dict(f)
                         for f in data["fields"]),
            version=data.get("version", 1),
            key_field=data.get("key_field", ""),
            policy=data.get("policy", "quarantine"),
            freshness=(FreshnessSLA.from_dict(freshness)
                       if freshness else None),
            allow_extra_fields=data.get("allow_extra_fields", False),
        )
