"""The committed drifted-feed scenario: governance end to end.

One deterministic story, reused by the ``repro contracts`` CLI, the
``examples/drifted_feed.py`` script, the X15 benchmark, and the test
suite: a contracted products feed refreshes cleanly, then its producer
silently changes the schema and ships junk rows, then goes dark.
The scenario asserts the governance invariants the subsystem exists
for — drift is flagged within one refresh interval, violating rows are
quarantined (not loaded, not lost), the staleness alert fires once the
feed stops, and after a contract update the quarantine replays cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IngestError
from repro.storage.records import FieldType

from .contract import DataContract, FieldContract, FreshnessSLA

__all__ = ["ScenarioCheck", "ScenarioReport", "run_drifted_feed",
           "products_contract"]

#: Simulated time between feed refreshes.
INTERVAL_MS = 10_000
#: The contract's freshness SLA: stale beyond 2.5 refresh intervals.
MAX_STALENESS_MS = 25_000


@dataclass(frozen=True)
class ScenarioCheck:
    """One asserted governance invariant."""

    name: str
    ok: bool
    detail: str


@dataclass
class ScenarioReport:
    """Everything the drifted-feed scenario observed."""

    checks: list = field(default_factory=list)
    drift_detected_ms: int | None = None
    drifted_at_ms: int | None = None
    stale_event_ms: int | None = None
    stale_breach_ms: int | None = None
    quarantined: int = 0
    replayed: int = 0
    requarantined: int = 0
    rows_loaded: int = 0
    events: list = field(default_factory=list)
    status_text: str = ""

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def check(self, name: str, ok: bool, detail: str) -> None:
        self.checks.append(ScenarioCheck(name, bool(ok), detail))

    def render(self) -> str:
        lines = ["Drifted-feed scenario", "====================="]
        for check in self.checks:
            marker = "PASS" if check.ok else "FAIL"
            lines.append(f"  [{marker}] {check.name}: {check.detail}")
        lines.append("")
        lines.append(f"overall: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def products_contract(policy: str = "quarantine",
                      version: int = 1) -> DataContract:
    """The governed products table the scenario (and docs) use."""
    return DataContract(
        table="products",
        version=version,
        fields=(
            FieldContract("sku", FieldType.STRING, required=True,
                          normalize=("trim", "upper")),
            FieldContract("title", FieldType.STRING, required=True,
                          normalize=("collapse_ws",)),
            FieldContract("price", FieldType.FLOAT, min_value=0.0,
                          normalize=("strip_currency",)),
            FieldContract("platform", FieldType.STRING,
                          allowed=("PC", "Xbox", "PS3")),
        ),
        key_field="sku",
        policy=policy,
        freshness=FreshnessSLA(max_staleness_ms=MAX_STALENESS_MS),
    )


def _clean_batch(round_no: int) -> list:
    return [
        {"sku": f" sku-{round_no}-{i} ",
         "title": f"Game  {round_no}-{i}",
         "price": f"${10 + round_no}.99",
         "platform": ("PC", "Xbox", "PS3")[i % 3]}
        for i in range(4)
    ]


def _drifted_batch() -> list:
    """The producer's silent break: a new ``rating`` column on every
    row (added-column drift + per-row ``extra`` violations under the
    strict contract) and ``price`` gone free-text on most rows
    (majority vote -> retyped column)."""
    return [
        # Well-typed except for the new column.
        {"sku": "sku-d-0", "title": "Good Game", "price": "$19.99",
         "platform": "PC", "rating": "4.5"},
        # Free-text price and an out-of-enum platform.
        {"sku": "sku-d-1", "title": "Bad Price", "price": "call us",
         "platform": "Wii", "rating": "3.0"},
        # Free-text price and a missing required sku.
        {"sku": "", "title": "No SKU", "price": "TBD",
         "platform": "PC", "rating": "1.0"},
    ]


def run_drifted_feed(symphony) -> ScenarioReport:
    """Drive the scenario on a contracts-enabled platform.

    ``symphony`` must be constructed with ``contracts=`` (and gains
    telemetry implicitly); the scenario registers its own designer,
    contract, and scheduled feed, then advances simulated time.
    """
    report = ScenarioReport()
    t0 = symphony.clock.now_ms
    account = symphony.register_designer("Dana")
    tenant_id = account.tenant.tenant_id
    contract = symphony.register_contract(account, products_contract())

    calls = {"n": 0}

    def feed_action():
        calls["n"] += 1
        if calls["n"] <= 2:
            rows = _clean_batch(calls["n"])
        elif calls["n"] == 3:
            rows = _drifted_batch()
            report.drifted_at_ms = symphony.clock.now_ms - t0
        else:
            raise IngestError("producer offline")
        return symphony.upload_structured_data(
            account, rows, "products")

    symphony.refresh.register("products-feed", INTERVAL_MS,
                              feed_action)

    # Phase 1+2: two clean refreshes, then the drifted batch lands on
    # the third tick.
    symphony.refresh.run_all_for(3 * INTERVAL_MS, tick_ms=INTERVAL_MS)
    drift_events = symphony.telemetry.events.by_kind("contract.drift")
    if drift_events:
        report.drift_detected_ms = drift_events[0].timestamp_ms - t0
    detected_in = (report.drift_detected_ms - report.drifted_at_ms
                   if report.drift_detected_ms is not None else None)
    report.check(
        "drift detected within one refresh interval",
        detected_in is not None and detected_in <= INTERVAL_MS,
        f"drifted batch at t={report.drifted_at_ms}ms, "
        f"contract.drift at t={report.drift_detected_ms}ms",
    )

    depth = symphony.contracts.quarantine.depth(tenant_id, "products")
    table = account.tenant.table("products")
    loaded_titles = {r.values.get("title") for r in table}
    report.quarantined = depth
    report.rows_loaded = len(table)
    report.check(
        "violating rows quarantined, not loaded",
        depth == 3 and not {"Good Game", "Bad Price", "No SKU"}
        & loaded_titles and len(table) == 8,
        f"{depth} drifted rows in quarantine, {len(table)} clean rows "
        f"loaded (strict contract quarantines even well-typed rows "
        f"carrying the undeclared column)",
    )

    # Phase 3: the producer goes dark; the scheduler keeps ticking and
    # the freshness SLA (25s) is breached 25s after the last
    # successful refresh.
    feed_state = symphony.contracts.freshness.feed(tenant_id,
                                                   "products")
    report.stale_breach_ms = (feed_state.last_refresh_ms
                              + MAX_STALENESS_MS - t0)
    symphony.refresh.run_all_for(6 * INTERVAL_MS, tick_ms=INTERVAL_MS)
    stale_events = symphony.telemetry.events.by_kind("contract.stale")
    if stale_events:
        report.stale_event_ms = stale_events[0].timestamp_ms - t0
    stale_in = (report.stale_event_ms - report.stale_breach_ms
                if report.stale_event_ms is not None else None)
    report.check(
        "staleness alert fires when the feed stops",
        stale_in is not None and stale_in <= INTERVAL_MS,
        f"SLA breached at t={report.stale_breach_ms}ms, "
        f"contract.stale at t={report.stale_event_ms}ms "
        f"(freshness budget alerting: "
        f"{symphony.contracts.freshness_alerter.active})",
    )
    report.check(
        "stale feed flagged in source metadata",
        symphony.contracts.source_status(
            tenant_id, "products").get("stale") is True,
        str(symphony.contracts.source_status(tenant_id, "products")),
    )

    # Phase 4: the designer amends the contract — admits the new
    # rating column, drops the platform enum — and replays the
    # quarantine. Storage schema evolution is additive-only, so price
    # stays a float: free-text prices remain violations and only the
    # recoverable row loads.
    relaxed = DataContract(
        table="products",
        version=2,
        fields=(
            FieldContract("sku", FieldType.STRING, required=True,
                          normalize=("trim", "upper")),
            FieldContract("title", FieldType.STRING, required=True,
                          normalize=("collapse_ws",)),
            FieldContract("price", FieldType.FLOAT, min_value=0.0,
                          normalize=("strip_currency",)),
            FieldContract("platform", FieldType.STRING),
            FieldContract("rating", FieldType.FLOAT),
        ),
        key_field="sku",
        policy="quarantine",
        freshness=contract.freshness,
    )
    symphony.register_contract(account, relaxed)
    replay = symphony.replay_quarantine(account, "products")
    replayed = 0 if replay is None else replay.inserted + replay.updated
    requarantined = 0 if replay is None else replay.quarantined
    report.replayed = replayed
    report.requarantined = requarantined
    depth_after = symphony.contracts.quarantine.depth(
        tenant_id, "products")
    # "Good Game" is now admissible; the free-text-price rows still
    # violate the (unchanged) float type and go straight back.
    report.check(
        "quarantine replayable after contract update",
        replayed == 1 and requarantined == 2 and depth_after == 2,
        f"replayed {replayed} row(s), {requarantined} still "
        f"violating re-quarantined (depth now {depth_after})",
    )
    second = symphony.replay_quarantine(account, "products")
    second_loaded = (0 if second is None
                     else second.inserted + second.updated)
    report.check(
        "replay is idempotent",
        second_loaded == 0 and symphony.contracts.quarantine.depth(
            tenant_id, "products") == 2,
        "second replay loaded nothing new; still-bad rows stayed "
        "quarantined",
    )

    report.events = [
        (e.timestamp_ms - t0, e.kind)
        for e in symphony.telemetry.events.events
        if e.kind.startswith(("contract.", "refresh."))
    ]
    report.status_text = symphony.contract_report()
    return report
