"""repro.contracts — data contracts and governed ingest.

The governance layer over :mod:`repro.ingest` (ROADMAP item 3): every
proprietary dataset can declare a :class:`DataContract` — typed fields
with constraints, canonical-key normalization, a violation policy, and
a freshness SLA. The :class:`ContractManager` enforces it at load time
(reject / quarantine / coerce), detects schema drift between producer
and contract, tracks staleness against the refresh scheduler, and
feeds a platform-wide freshness error budget into :mod:`repro.slo`.
Opt-in via ``Symphony(contracts=True)``; ``NULL_CONTRACTS`` keeps the
ungoverned hot path unchanged.
"""

from .contract import (
    NORMALIZE_RULES,
    VIOLATION_POLICIES,
    DataContract,
    FieldContract,
    FreshnessSLA,
    normalize_value,
)
from .enforcer import (
    ContractEnforcer,
    DriftReport,
    EnforcementResult,
    Violation,
)
from .freshness import FeedFreshness, FreshnessTracker
from .manager import (
    NULL_CONTRACTS,
    ContractManager,
    ContractsConfig,
    NullContractManager,
)
from .quarantine import QuarantinedRow, QuarantineStore

__all__ = [
    "DataContract",
    "FieldContract",
    "FreshnessSLA",
    "VIOLATION_POLICIES",
    "NORMALIZE_RULES",
    "normalize_value",
    "ContractEnforcer",
    "EnforcementResult",
    "DriftReport",
    "Violation",
    "QuarantineStore",
    "QuarantinedRow",
    "FreshnessTracker",
    "FeedFreshness",
    "ContractsConfig",
    "ContractManager",
    "NullContractManager",
    "NULL_CONTRACTS",
]
