"""Per-table quarantine store for contract-violating rows.

Rows that break a contract under the ``quarantine``/``coerce`` policies
are *not loaded* and *not lost*: the raw row plus its violation records
land here, inspectable (``repro contracts``) and replayable once the
producer fixes their feed or the designer relaxes the contract.
Capacity is bounded per table — oldest rows are evicted first and the
eviction is counted, because an unbounded buffer fed by a broken
producer is just a slower out-of-memory crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QuarantinedRow", "QuarantineStore"]


@dataclass(frozen=True)
class QuarantinedRow:
    """One rejected raw row, with the reasons it was rejected."""

    seq: int
    row: dict
    violations: tuple
    quarantined_ms: int
    source: str = ""

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "row": dict(self.row),
            "violations": [v.to_dict() for v in self.violations],
            "quarantined_ms": self.quarantined_ms,
            "source": self.source,
        }


@dataclass
class _TableQuarantine:
    """Bounded FIFO of quarantined rows for one table."""

    capacity: int
    rows: list = field(default_factory=list)
    next_seq: int = 1
    evicted: int = 0
    total: int = 0


class QuarantineStore:
    """Bounded per-(tenant, table) holding pen for violating rows."""

    def __init__(self, capacity: int = 1000) -> None:
        self.capacity = capacity
        self._tables: dict[tuple, _TableQuarantine] = {}

    def _bucket(self, tenant_id: str, table: str) -> _TableQuarantine:
        key = (tenant_id, table)
        if key not in self._tables:
            self._tables[key] = _TableQuarantine(self.capacity)
        return self._tables[key]

    def add(self, tenant_id: str, table: str, row: dict, violations,
            now_ms: int, source: str = "") -> QuarantinedRow:
        bucket = self._bucket(tenant_id, table)
        entry = QuarantinedRow(bucket.next_seq, dict(row),
                               tuple(violations), now_ms, source)
        bucket.next_seq += 1
        bucket.total += 1
        bucket.rows.append(entry)
        while len(bucket.rows) > bucket.capacity:
            bucket.rows.pop(0)
            bucket.evicted += 1
        return entry

    def rows(self, tenant_id: str, table: str) -> list:
        return list(self._bucket(tenant_id, table).rows)

    def depth(self, tenant_id: str, table: str) -> int:
        return len(self._bucket(tenant_id, table).rows)

    def evicted(self, tenant_id: str, table: str) -> int:
        return self._bucket(tenant_id, table).evicted

    def drain(self, tenant_id: str, table: str) -> list:
        """Remove and return every quarantined row for one table.

        Replay drains first so that rows which *still* violate the
        current contract re-enter quarantine exactly once — draining
        makes replay idempotent.
        """
        bucket = self._bucket(tenant_id, table)
        drained = bucket.rows
        bucket.rows = []
        return drained

    def tables(self, tenant_id: str | None = None) -> list:
        """(tenant_id, table) pairs with a non-empty quarantine."""
        return sorted(
            key for key, bucket in self._tables.items()
            if bucket.rows and (tenant_id is None or key[0] == tenant_id)
        )

    def total_depth(self, tenant_id: str | None = None) -> int:
        return sum(
            len(bucket.rows) for key, bucket in self._tables.items()
            if tenant_id is None or key[0] == tenant_id
        )
