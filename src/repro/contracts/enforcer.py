"""Row-level contract enforcement and schema-drift detection.

The :class:`ContractEnforcer` sits between parsing and storage: every
batch of raw rows is normalized, validated against the table's
:class:`~repro.contracts.contract.DataContract`, and split into clean
rows (loaded), coerced rows (safe casts, counted), and violations
(rejected or quarantined per the contract's policy). Alongside row
validation it diffs the *observed* columns/types against the declared
ones — added, missing, and retyped columns — so a producer silently
changing their feed is caught at the very next refresh instead of
surfacing as corrupt query results weeks later.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.records import _COERCERS, FieldType, _classify_value

from .contract import NORMALIZE_RULES, DataContract, FieldContract

__all__ = [
    "Violation",
    "DriftReport",
    "EnforcementResult",
    "ContractEnforcer",
]

#: Observed value types each declared type tolerates without drift.
_COMPATIBLE = {
    FieldType.STRING: None,   # None == anything stringifies
    FieldType.TEXT: None,
    FieldType.INTEGER: {FieldType.INTEGER},
    FieldType.FLOAT: {FieldType.INTEGER, FieldType.FLOAT},
    FieldType.BOOLEAN: {FieldType.BOOLEAN},
    FieldType.DATE: {FieldType.DATE},
    FieldType.URL: {FieldType.URL},
}

#: Thousands separators a ``coerce``-policy cast may strip from numbers.
_NUM_JUNK = str.maketrans("", "", ",_")


class _CheckFail(Exception):
    """Internal: a compiled field check hit a constraint violation."""

    def __init__(self, rule: str, message: str, value=None) -> None:
        super().__init__(message)
        self.rule = rule
        self.message = message
        self.value = value


@dataclass(frozen=True)
class Violation:
    """One broken constraint: which row, which field, what rule."""

    row_index: int
    field: str
    rule: str        # "type" | "required" | "range" | "enum" | "extra"
    message: str
    value: object = None

    def to_dict(self) -> dict:
        return {
            "row_index": self.row_index,
            "field": self.field,
            "rule": self.rule,
            "message": self.message,
            "value": self.value,
        }


@dataclass(frozen=True)
class DriftReport:
    """Observed columns/types vs. the declared contract."""

    added: tuple = ()      # column names present in data, absent in contract
    missing: tuple = ()    # declared columns absent from every row
    retyped: tuple = ()    # (column, declared_type, observed_type)

    @property
    def drifted(self) -> bool:
        return bool(self.added or self.missing or self.retyped)

    def to_dict(self) -> dict:
        return {
            "added": list(self.added),
            "missing": list(self.missing),
            "retyped": [
                {"field": name, "declared": declared.value,
                 "observed": observed.value}
                for name, declared, observed in self.retyped
            ],
        }

    def describe(self) -> str:
        parts = []
        if self.added:
            parts.append(f"added={list(self.added)}")
        if self.missing:
            parts.append(f"missing={list(self.missing)}")
        if self.retyped:
            parts.append("retyped=" + str([
                f"{n}:{d.value}->{o.value}" for n, d, o in self.retyped
            ]))
        return "; ".join(parts) if parts else "no drift"


@dataclass
class EnforcementResult:
    """What one batch looked like after the contract had its say."""

    rows: list = field(default_factory=list)        # clean, loadable
    violations: list = field(default_factory=list)  # Violation records
    quarantined: list = field(default_factory=list)  # (raw_row, violations)
    coerced: int = 0
    drift: DriftReport = field(default_factory=DriftReport)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.drift.drifted


class ContractEnforcer:
    """Validates batches of raw rows against one :class:`DataContract`."""

    def __init__(self, contract: DataContract,
                 drift_sample_limit: int = 100) -> None:
        self.contract = contract
        self.drift_sample_limit = drift_sample_limit
        # The contract is frozen, so compile it once: per field, a
        # normalizer (None when the field declares no rules) and ONE
        # ``value -> typed`` check folding type conversion and
        # constraints, plus the field-name set for the extra-column
        # test. Bulk ingest runs these per cell; every spared function
        # call and attribute lookup is the difference between "free"
        # and a measurable ingest tax.
        self._field_names = frozenset(f.name for f in contract.fields)
        self._checks = tuple(
            (spec.name, spec, self._compile_normalizer(spec),
             self._compile_check(spec))
            for spec in contract.fields
        )
        # Code-generated accept-or-bail validator for the common case:
        # a fully-populated, fully-clean row. Anything it cannot prove
        # clean (a violation, a missing column, an exotic type) falls
        # back to the interpreted path above, which stays the source
        # of truth for *what* went wrong.
        self._fast_row = self._compile_fast_row(contract)

    @staticmethod
    def _compile_normalizer(spec: FieldContract):
        """The field's rule chain as one call, or ``None`` if rule-less."""
        if spec.units:
            return spec.normalized       # full path incl. unit scaling
        if not spec.normalize:
            return None
        rules = tuple(NORMALIZE_RULES[r] for r in spec.normalize)
        if len(rules) == 1:
            rule = rules[0]
            return lambda v: rule(v) if type(v) is str else v

        def chain(value, rules=rules):
            if type(value) is str:
                for rule in rules:
                    value = rule(value)
            return value
        return chain

    @staticmethod
    def _compile_check(spec: FieldContract):
        """One ``value -> typed`` function, fast-pathed on exact type.

        Type failures raise ``ValueError``/``TypeError`` exactly where
        the generic ``_COERCERS`` would (``bool`` deliberately misses
        the numeric fast paths so ``True`` never lands in a numeric
        column); constraint failures raise :class:`_CheckFail` with
        the violated rule.
        """
        coercer = _COERCERS[spec.type]
        if spec.type in (FieldType.STRING, FieldType.TEXT):
            def convert(v):
                return v if type(v) is str else coercer(v)
        elif spec.type is FieldType.FLOAT:
            def convert(v):
                t = type(v)
                if t is float:
                    return v
                if t is int or t is str:
                    return float(v)
                return coercer(v)
        elif spec.type is FieldType.INTEGER:
            def convert(v):
                return v if type(v) is int else coercer(v)
        elif spec.type is FieldType.BOOLEAN:
            def convert(v):
                return v if type(v) is bool else coercer(v)
        else:
            convert = coercer
        allowed = frozenset(spec.allowed)
        low, high = spec.min_value, spec.max_value
        if not allowed and low is None and high is None:
            return convert

        def check(value, convert=convert, name=spec.name,
                  allowed=allowed, canonical=tuple(spec.allowed),
                  low=low, high=high):
            typed = convert(value)
            if allowed and typed not in allowed:
                raise _CheckFail(
                    "enum", f"field {name!r}: {typed!r} not in "
                    f"allowed set {list(canonical)}", typed)
            if (low is not None or high is not None) \
                    and isinstance(typed, (int, float)) \
                    and not isinstance(typed, bool):
                if low is not None and typed < low:
                    raise _CheckFail(
                        "range", f"field {name!r}: {typed!r} below "
                        f"minimum {low}", typed)
                if high is not None and typed > high:
                    raise _CheckFail(
                        "range", f"field {name!r}: {typed!r} above "
                        f"maximum {high}", typed)
            return typed
        return check

    #: Normalization rules the code generator can inline as str methods
    #: (or a wrapping call for the regex-backed ones).
    _INLINE_METHODS = {
        "trim": ".strip()",
        "lower": ".lower()",
        "upper": ".upper()",
        "title": ".title()",
        "strip_currency": ".translate(_cur).strip()",
    }

    def _compile_fast_row(self, contract: DataContract):
        """Generate ``raw -> clean | None`` source for this contract.

        The generated function accepts a row only when it can prove it
        clean without allocating a single Violation: all declared
        columns present and no others, values normalized/converted with
        the same semantics as the interpreted checks, constraints
        satisfied. Everything else returns ``None`` (or raises
        ``ValueError``/``TypeError`` out of a conversion), and the
        caller re-runs the row through :meth:`_check_row` for the full
        diagnosis — the fast path can only ever *accept*, never decide
        a row is bad, so the two paths cannot disagree on outcomes.
        """
        from .contract import _CURRENCY_TABLE

        space = {"_fields": self._field_names, "_cur": _CURRENCY_TABLE}
        lines = [
            "def _fast_row(raw):",
            "    if raw.keys() != _fields:",
            "        return None",
        ]
        emit = lines.append
        for i, spec in enumerate(contract.fields):
            v = f"v{i}"
            emit(f"    {v} = raw[{spec.name!r}]")
            if spec.units:
                space[f"_n{i}"] = spec.normalized
                emit(f"    {v} = _n{i}({v})")
            elif spec.normalize:
                expr = v
                for rule in spec.normalize:
                    suffix = self._INLINE_METHODS.get(rule)
                    if suffix is not None:
                        expr += suffix
                    else:
                        space[f"_r{i}_{rule}"] = NORMALIZE_RULES[rule]
                        expr = f"_r{i}_{rule}({expr})"
                emit(f"    if type({v}) is str:")
                emit(f"        {v} = {expr}")
            if spec.required or not spec.nullable:
                emit(f"    if {v} is None or {v} == '':")
                emit("        return None")
                pad = "    "
            else:
                emit(f"    if {v} is None or {v} == '':")
                emit(f"        {v} = None")
                emit("    else:")
                pad = "        "
            for line in self._fast_value_lines(i, spec, space):
                emit(pad + line)
        items = ", ".join(
            f"{spec.name!r}: v{i}"
            for i, spec in enumerate(contract.fields)
        )
        emit(f"    return {{{items}}}")
        try:
            exec("\n".join(lines), space)  # noqa: S102 - own codegen
        except SyntaxError:       # pragma: no cover - contract too exotic
            return None
        return space["_fast_row"]

    def _fast_value_lines(self, i: int, spec: FieldContract,
                          space: dict) -> list:
        """Convert-and-constrain source lines for one non-empty value."""
        v = f"v{i}"
        out = []
        if spec.type in (FieldType.STRING, FieldType.TEXT):
            # Non-string values bail to the interpreted path (which
            # stringifies them) rather than risking a semantics skew.
            out.append(f"if type({v}) is not str:")
            out.append("    return None")
        elif spec.type is FieldType.FLOAT:
            out.append(f"if type({v}) is not float:")
            out.append(f"    if type({v}) is int or type({v}) is str:")
            out.append(f"        {v} = float({v})")
            out.append("    else:")
            out.append("        return None")
        elif spec.type is FieldType.INTEGER:
            out.append(f"if type({v}) is not int:")
            out.append(f"    if type({v}) is str:")
            out.append(f"        {v} = int({v})")
            out.append("    else:")
            out.append("        return None")
        elif spec.type is FieldType.BOOLEAN:
            out.append(f"if type({v}) is not bool:")
            out.append("    return None")
        else:                     # DATE / URL: regex-checked coercers
            space[f"_c{i}"] = _COERCERS[spec.type]
            out.append(f"{v} = _c{i}({v})")
        if spec.allowed:
            space[f"_a{i}"] = frozenset(spec.allowed)
            out.append(f"if {v} not in _a{i}:")
            out.append("    return None")
        if spec.type in (FieldType.INTEGER, FieldType.FLOAT):
            if spec.min_value is not None:
                out.append(f"if {v} < {spec.min_value!r}:")
                out.append("    return None")
            if spec.max_value is not None:
                out.append(f"if {v} > {spec.max_value!r}:")
                out.append("    return None")
        return out

    # -- drift ---------------------------------------------------------------

    def detect_drift(self, rows: list) -> DriftReport:
        """Diff observed columns/types against the declared contract.

        Values are classified *after* the contract's own normalization
        (a ``"$49.99"`` price whose field strips currency is a float,
        not drift), and each column's observed type is the majority
        vote over the sample — one typo'd cell in a numeric column is
        a row violation, not a retyped column.
        """
        declared = {f.name: f.type for f in self.contract.fields}
        votes: dict[str, dict] = {}
        for i, row in enumerate(rows):
            if i >= self.drift_sample_limit:
                break
            normalized = self.contract.normalize_row(row)
            for name, value in normalized.items():
                counts = votes.setdefault(name, {})
                if value is None or value == "":
                    continue
                kind = _classify_value(value)
                counts[kind] = counts.get(kind, 0) + 1
        seen: dict[str, FieldType | None] = {}
        for name, counts in votes.items():
            if not counts:
                seen[name] = None
                continue
            # Deterministic majority: count desc, declared type wins
            # ties, then enum declaration order.
            order = list(FieldType)
            seen[name] = max(
                counts,
                key=lambda k: (counts[k], k == declared.get(name),
                               -order.index(k)),
            )
        added = tuple(sorted(set(seen) - set(declared)))
        if self.contract.allow_extra_fields:
            added = ()
        missing = tuple(n for n in declared if n not in seen)
        retyped = []
        for name, declared_type in declared.items():
            observed = seen.get(name)
            if observed is None:
                continue
            compatible = _COMPATIBLE[declared_type]
            if compatible is not None and observed not in compatible:
                retyped.append((name, declared_type, observed))
        return DriftReport(added, missing, tuple(retyped))

    # -- row validation -------------------------------------------------------

    def enforce(self, rows: list) -> EnforcementResult:
        """Normalize, validate, and split one batch per the policy.

        Under ``reject`` the caller is expected to raise on any
        violation; under ``quarantine`` violating raw rows land in
        ``result.quarantined``; under ``coerce`` safe casts are applied
        first and only rows that *still* violate are quarantined.
        """
        result = EnforcementResult(drift=self.detect_drift(rows))
        coerce = self.contract.policy == "coerce"
        fast = self._fast_row
        out = result.rows.append
        for index, raw in enumerate(rows):
            if fast is not None:
                try:
                    clean = fast(raw)
                except (TypeError, ValueError):
                    clean = None
                if clean is not None:
                    out(clean)
                    continue
            clean, row_violations, casts = self._check_row(
                index, raw, coerce=coerce)
            if row_violations:
                result.violations.extend(row_violations)
                result.quarantined.append((dict(raw), row_violations))
            else:
                result.rows.append(clean)
                result.coerced += casts
        return result

    def _check_row(self, index: int, raw: dict, coerce: bool):
        """One row → (clean_row, violations, coercion_count)."""
        violations: list[Violation] = []
        clean: dict = {}
        casts = 0
        get = raw.get
        for name, spec, normalize, check in self._checks:
            value = get(name)
            if normalize is not None and value is not None:
                value = normalize(value)
            if value is None or value == "":
                if spec.required or not spec.nullable:
                    violations.append(Violation(
                        index, name, "required",
                        f"field {name!r} is required but empty",
                    ))
                else:
                    clean[name] = None
                continue
            try:
                clean[name] = check(value)
            except _CheckFail as fail:
                if coerce:
                    typed, ok = self._safe_cast(spec, value)
                    if ok:
                        casts += 1
                        clean[name] = typed
                        violations.extend(
                            self._constraints(index, spec, typed))
                        continue
                violations.append(Violation(
                    index, name, fail.rule, fail.message, fail.value,
                ))
            except (TypeError, ValueError):
                if coerce:
                    typed, ok = self._safe_cast(spec, value)
                    if ok:
                        casts += 1
                        clean[name] = typed
                        violations.extend(
                            self._constraints(index, spec, typed))
                        continue
                violations.append(Violation(
                    index, name, "type",
                    f"field {name!r}: cannot interpret {value!r} "
                    f"as {spec.type.value}", value,
                ))
        if raw.keys() != self._field_names \
                and not self.contract.allow_extra_fields:
            for name in raw:
                if name not in self._field_names:
                    violations.append(Violation(
                        index, name, "extra",
                        f"field {name!r} is not in the contract",
                        raw[name],
                    ))
        # Constraint violations on otherwise-typed rows still disqualify
        # the row; drop the partial clean dict in that case.
        return clean, violations, casts

    def _safe_cast(self, spec: FieldContract, value):
        """Lossless casts only: "1,299"→1299, "49.0"→49, enum casefold."""
        text = str(value).strip().translate(_NUM_JUNK)
        try:
            if spec.type is FieldType.INTEGER:
                number = float(text)
                if number == int(number):
                    return int(number), True
            elif spec.type is FieldType.FLOAT:
                return float(text), True
        except ValueError:
            pass
        if spec.allowed:
            folded = str(value).strip().casefold()
            for canonical in spec.allowed:
                if str(canonical).casefold() == folded:
                    return canonical, True
        return None, False

    @staticmethod
    def _constraints(index: int, spec: FieldContract, typed):
        violations = []
        if spec.allowed and typed not in spec.allowed:
            violations.append(Violation(
                index, spec.name, "enum",
                f"field {spec.name!r}: {typed!r} not in allowed set "
                f"{list(spec.allowed)}", typed,
            ))
        if isinstance(typed, (int, float)) \
                and not isinstance(typed, bool):
            if spec.min_value is not None and typed < spec.min_value:
                violations.append(Violation(
                    index, spec.name, "range",
                    f"field {spec.name!r}: {typed!r} below minimum "
                    f"{spec.min_value}", typed,
                ))
            if spec.max_value is not None and typed > spec.max_value:
                violations.append(Violation(
                    index, spec.name, "range",
                    f"field {spec.name!r}: {typed!r} above maximum "
                    f"{spec.max_value}", typed,
                ))
        return violations
