"""Freshness-SLA tracking for contracted feeds.

Each contract with a :class:`~repro.contracts.contract.FreshnessSLA`
gets a tracked feed: the refresh scheduler reports every successful
refresh, the tracker judges staleness against the simulated clock, and
crossings are edge-triggered — one ``contract.stale`` event when a feed
exceeds its ``max_staleness_ms``, one ``contract.fresh`` when it
recovers. Every check also records a good/bad observation into the
platform freshness error budget so sustained staleness burns the same
multi-window alerts the query SLOs use.
"""

from __future__ import annotations

from dataclasses import dataclass

from .contract import FreshnessSLA

__all__ = ["FeedFreshness", "FreshnessTracker"]


@dataclass
class FeedFreshness:
    """Live freshness state for one (tenant, table) feed."""

    tenant_id: str
    table: str
    sla: FreshnessSLA
    last_refresh_ms: int
    stale: bool = False
    stale_since_ms: int | None = None
    checks: int = 0
    stale_checks: int = 0

    def staleness_ms(self, now_ms: int) -> int:
        return max(0, now_ms - self.last_refresh_ms)

    def status(self, now_ms: int) -> dict:
        return {
            "tenant": self.tenant_id,
            "table": self.table,
            "staleness_ms": self.staleness_ms(now_ms),
            "max_staleness_ms": self.sla.max_staleness_ms,
            "stale": self.stale,
            "stale_since_ms": self.stale_since_ms,
            "checks": self.checks,
            "stale_checks": self.stale_checks,
        }


class FreshnessTracker:
    """Judges every bound feed's staleness on the simulated clock."""

    def __init__(self, clock, telemetry=None, budget=None,
                 alerter=None) -> None:
        self.clock = clock
        self.telemetry = telemetry
        #: Platform-wide freshness :class:`~repro.slo.ErrorBudget`
        #: (one good/bad observation per feed per check) and its
        #: burn-rate alerter; both optional.
        self.budget = budget
        self.alerter = alerter
        self._feeds: dict[tuple, FeedFreshness] = {}

    def bind(self, tenant_id: str, table: str,
             sla: FreshnessSLA) -> FeedFreshness:
        """Start tracking one feed; the clock starts now."""
        key = (tenant_id, table)
        feed = FeedFreshness(tenant_id, table, sla,
                             last_refresh_ms=self.clock.now_ms)
        self._feeds[key] = feed
        if self.telemetry is not None and self.telemetry.enabled:
            # The callback indirects through the feed map so
            # re-registering a contract rebinds the gauge too.
            self.telemetry.metrics.gauge(
                "contract_staleness_ms",
                fn=lambda key=key: float(
                    self._feeds[key].staleness_ms(self.clock.now_ms)
                ) if key in self._feeds else 0.0,
                tenant=tenant_id, table=table)
        return feed

    def feed(self, tenant_id: str, table: str) -> FeedFreshness | None:
        return self._feeds.get((tenant_id, table))

    def feeds(self) -> list:
        return list(self._feeds.values())

    def mark_refreshed(self, tenant_id: str, table: str) -> None:
        """A successful refresh just landed for this feed."""
        feed = self._feeds.get((tenant_id, table))
        if feed is None:
            return
        feed.last_refresh_ms = self.clock.now_ms
        # Recovery is declared on the next check() pass so event order
        # stays scheduler-driven and deterministic.

    def check(self) -> list:
        """Judge every feed now; returns the currently-stale ones."""
        now = self.clock.now_ms
        stale_feeds = []
        for feed in self._feeds.values():
            feed.checks += 1
            is_stale = feed.staleness_ms(now) > feed.sla.max_staleness_ms
            if is_stale:
                feed.stale_checks += 1
                stale_feeds.append(feed)
            if is_stale and not feed.stale:
                feed.stale = True
                feed.stale_since_ms = now
                self._emit("contract.stale", feed, now)
            elif not is_stale and feed.stale:
                feed.stale = False
                feed.stale_since_ms = None
                self._emit("contract.fresh", feed, now)
            if self.budget is not None:
                self.budget.record(now, not is_stale)
        if self.alerter is not None and self._feeds:
            self.alerter.check(now)
        return stale_feeds

    def is_stale(self, tenant_id: str, table: str) -> bool:
        feed = self._feeds.get((tenant_id, table))
        return bool(feed and feed.stale)

    def _emit(self, kind: str, feed: FeedFreshness,
              now_ms: int) -> None:
        if self.telemetry is None or not self.telemetry.enabled:
            return
        self.telemetry.events.emit(
            kind,
            tenant=feed.tenant_id,
            table=feed.table,
            staleness_ms=feed.staleness_ms(now_ms),
            max_staleness_ms=feed.sla.max_staleness_ms,
        )
        if kind == "contract.stale":
            self.telemetry.metrics.counter(
                "contract_stale_total", table=feed.table).inc()
