"""The contracts subsystem facade: registry, enforcement, governance.

:class:`ContractManager` owns the per-tenant contract registry, the
quarantine store, and the freshness tracker, and is the single object
the rest of the platform talks to: the ingestor calls
:meth:`ContractManager.apply` on every batch, the refresh scheduler
calls :meth:`ContractManager.check_freshness` every pass, the gateway
and CLI read :meth:`ContractManager.status`. ``NULL_CONTRACTS`` is the
no-op twin — ``Symphony()`` without ``contracts=`` keeps the ingest
hot path exactly as it was.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ContractViolationError
from repro.slo.burnrate import BurnRateAlerter
from repro.slo.objectives import ErrorBudget, SLODefinition

from .contract import DataContract
from .enforcer import ContractEnforcer, EnforcementResult
from .freshness import FreshnessTracker
from .quarantine import QuarantineStore

__all__ = [
    "ContractsConfig",
    "ContractManager",
    "NullContractManager",
    "NULL_CONTRACTS",
]


@dataclass(frozen=True)
class ContractsConfig:
    """Construction knobs for :class:`ContractManager`."""

    #: Max quarantined rows retained per (tenant, table); oldest are
    #: evicted (and counted) beyond this.
    quarantine_capacity: int = 1000
    #: Rows sampled per batch for drift detection.
    drift_sample_limit: int = 100
    #: Platform-wide freshness SLO: target fraction of freshness
    #: checks that find a feed fresh, and the burn-alert shape.
    freshness_objective: float = 0.99
    freshness_fast_window_ms: int = 60_000
    freshness_slow_window_ms: int = 600_000
    freshness_burn_threshold: float = 3.0
    freshness_min_events: int = 4

    @classmethod
    def from_dict(cls, data: dict) -> "ContractsConfig":
        return cls(**data)


@dataclass
class _TableStats:
    """Running enforcement totals for one contracted table."""

    batches: int = 0
    loaded: int = 0
    violations: int = 0
    quarantined: int = 0
    coerced: int = 0
    drift_batches: int = 0
    last_drift: dict | None = None
    last_drift_ms: int | None = None


class ContractManager:
    """Registry + enforcement + freshness for every governed table."""

    enabled = True

    def __init__(self, clock, telemetry=None,
                 config: ContractsConfig | None = None) -> None:
        self.clock = clock
        self.telemetry = telemetry
        self.config = config or ContractsConfig()
        self._contracts: dict[tuple, DataContract] = {}
        self._enforcers: dict[tuple, ContractEnforcer] = {}
        self._stats: dict[tuple, _TableStats] = {}
        self.quarantine = QuarantineStore(self.config.quarantine_capacity)
        live = telemetry is not None and telemetry.enabled
        slo = SLODefinition(
            name="freshness", kind="freshness",
            objective=self.config.freshness_objective,
            fast_window_ms=self.config.freshness_fast_window_ms,
            slow_window_ms=self.config.freshness_slow_window_ms,
            burn_threshold=self.config.freshness_burn_threshold,
            min_events=self.config.freshness_min_events,
        )
        self.freshness_slo = slo
        self.freshness_budget = ErrorBudget(slo)
        self.freshness_alerter = BurnRateAlerter(
            slo, self.freshness_budget,
            events=telemetry.events if live else None,
            metrics=telemetry.metrics if live else None,
        )
        self.freshness = FreshnessTracker(
            clock, telemetry=telemetry,
            budget=self.freshness_budget,
            alerter=self.freshness_alerter,
        )

    def attach_slo(self, slo_engine) -> None:
        """Fold the freshness budget into the SLO engine's reporting."""
        slo_engine.adopt_tracker(
            self.freshness_slo, self.freshness_budget,
            self.freshness_alerter,
        )

    # -- registry -------------------------------------------------------------

    def register(self, tenant_id: str,
                 contract: DataContract) -> DataContract:
        """Declare (or re-declare, bumping enforcement) a contract.

        Re-registering replaces the previous version in place — the
        point of quarantine replay after a contract update.
        """
        key = (tenant_id, contract.table)
        self._contracts[key] = contract
        self._enforcers[key] = ContractEnforcer(
            contract, drift_sample_limit=self.config.drift_sample_limit,
        )
        self._stats.setdefault(key, _TableStats())
        if contract.freshness is not None:
            self.freshness.bind(tenant_id, contract.table,
                                contract.freshness)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.events.emit(
                "contract.registered", tenant=tenant_id,
                table=contract.table, version=contract.version,
                policy=contract.policy,
            )
        return contract

    def contract_for(self, tenant_id: str,
                     table: str) -> DataContract | None:
        return self._contracts.get((tenant_id, table))

    def tables(self, tenant_id: str | None = None) -> list:
        return sorted(
            key for key in self._contracts
            if tenant_id is None or key[0] == tenant_id
        )

    # -- enforcement ----------------------------------------------------------

    def apply(self, tenant_id: str, table: str, rows: list,
              source: str = "") -> EnforcementResult | None:
        """Enforce the table's contract on one batch of raw rows.

        Returns ``None`` when the table has no contract (the caller
        loads the batch untouched), otherwise an
        :class:`EnforcementResult` whose ``rows`` are the clean,
        normalized, typed rows to load. Raises
        :class:`ContractViolationError` under the ``reject`` policy.
        """
        key = (tenant_id, table)
        enforcer = self._enforcers.get(key)
        if enforcer is None:
            return None
        contract = enforcer.contract
        result = enforcer.enforce(rows)
        stats = self._stats[key]
        stats.batches += 1
        now = self.clock.now_ms
        live = self.telemetry is not None and self.telemetry.enabled
        if result.drift.drifted:
            stats.drift_batches += 1
            stats.last_drift = result.drift.to_dict()
            stats.last_drift_ms = now
            if live:
                self.telemetry.events.emit(
                    "contract.drift", tenant=tenant_id, table=table,
                    source=source, version=contract.version,
                    **result.drift.to_dict(),
                )
                self.telemetry.metrics.counter(
                    "contract_drift_total", table=table).inc()
        if result.violations:
            stats.violations += len(result.violations)
            if live:
                sample = result.violations[0]
                self.telemetry.events.emit(
                    "contract.violation", tenant=tenant_id,
                    table=table, source=source,
                    policy=contract.policy,
                    count=len(result.violations),
                    rows=len(result.quarantined),
                    sample=sample.message,
                )
                self.telemetry.metrics.counter(
                    "contract_violations_total", table=table,
                ).inc(len(result.violations))
            if contract.policy == "reject":
                raise ContractViolationError(table, result.violations)
            for raw, row_violations in result.quarantined:
                self.quarantine.add(tenant_id, table, raw,
                                    row_violations, now, source=source)
            stats.quarantined += len(result.quarantined)
            if live:
                self.telemetry.metrics.counter(
                    "contract_quarantined_total", table=table,
                ).inc(len(result.quarantined))
        if result.coerced and live:
            self.telemetry.metrics.counter(
                "contract_coerced_total", table=table,
            ).inc(result.coerced)
        stats.coerced += result.coerced
        stats.loaded += len(result.rows)
        return result

    # -- freshness ------------------------------------------------------------

    def mark_refreshed(self, tenant_id: str, table: str) -> None:
        self.freshness.mark_refreshed(tenant_id, table)

    def check_freshness(self) -> list:
        """Judge every tracked feed now; returns the stale ones."""
        return self.freshness.check()

    def is_stale(self, tenant_id: str, table: str) -> bool:
        return self.freshness.is_stale(tenant_id, table)

    def source_status(self, tenant_id: str, table: str) -> dict:
        """Query-time metadata for one table's governed source."""
        feed = self.freshness.feed(tenant_id, table)
        contract = self.contract_for(tenant_id, table)
        status: dict = {}
        if contract is not None:
            status["contract_version"] = contract.version
        if feed is not None:
            status["stale"] = feed.stale
            status["staleness_ms"] = feed.staleness_ms(
                self.clock.now_ms)
        return status

    # -- quarantine -----------------------------------------------------------

    def quarantined_rows(self, tenant_id: str, table: str) -> list:
        return self.quarantine.rows(tenant_id, table)

    def drain_quarantine(self, tenant_id: str, table: str) -> list:
        """Remove and return raw quarantined rows for replay."""
        return self.quarantine.drain(tenant_id, table)

    # -- reporting ------------------------------------------------------------

    def status(self, tenant_id: str | None = None) -> dict:
        """Structured contract-status report, optionally per tenant."""
        now = self.clock.now_ms
        tables = []
        for key in self.tables(tenant_id):
            owner, table = key
            contract = self._contracts[key]
            stats = self._stats[key]
            entry = {
                "tenant": owner,
                "table": table,
                "version": contract.version,
                "policy": contract.policy,
                "batches": stats.batches,
                "loaded": stats.loaded,
                "violations": stats.violations,
                "quarantined": stats.quarantined,
                "coerced": stats.coerced,
                "quarantine_depth": self.quarantine.depth(owner, table),
                "drift_batches": stats.drift_batches,
                "last_drift": stats.last_drift,
                "last_drift_ms": stats.last_drift_ms,
            }
            feed = self.freshness.feed(owner, table)
            if feed is not None:
                entry["freshness"] = feed.status(now)
            tables.append(entry)
        return {
            "tables": tables,
            "freshness_budget": self.freshness_budget.status(now),
            "freshness_alerting": self.freshness_alerter.active,
            "stale_feeds": [
                f"{f.tenant_id}/{f.table}"
                for f in self.freshness.feeds() if f.stale
            ],
        }

    def report(self, tenant_id: str | None = None) -> str:
        """Human-readable contract-status report."""
        status = self.status(tenant_id)
        lines = ["Contract status", "==============="]
        lines.append("")
        if not status["tables"]:
            lines.append("(no contracts registered)")
            return "\n".join(lines)
        lines.append(
            f"{'table':<24} {'ver':>3} {'policy':<10} {'loaded':>7} "
            f"{'viol':>5} {'quar':>5} {'coerce':>6} {'drift':>5}  "
            f"freshness"
        )
        for entry in status["tables"]:
            name = f"{entry['tenant']}/{entry['table']}"
            freshness = entry.get("freshness")
            if freshness is None:
                fresh_text = "-"
            elif freshness["stale"]:
                fresh_text = (f"STALE ({freshness['staleness_ms']}ms > "
                              f"{freshness['max_staleness_ms']}ms)")
            else:
                fresh_text = f"fresh ({freshness['staleness_ms']}ms)"
            lines.append(
                f"{name:<24} {entry['version']:>3} "
                f"{entry['policy']:<10} {entry['loaded']:>7} "
                f"{entry['violations']:>5} "
                f"{entry['quarantine_depth']:>5} {entry['coerced']:>6} "
                f"{entry['drift_batches']:>5}  {fresh_text}"
            )
            if entry["last_drift"]:
                drift = entry["last_drift"]
                parts = []
                if drift["added"]:
                    parts.append(f"added={drift['added']}")
                if drift["missing"]:
                    parts.append(f"missing={drift['missing']}")
                if drift["retyped"]:
                    parts.append("retyped=" + str([
                        f"{r['field']}:{r['declared']}->{r['observed']}"
                        for r in drift["retyped"]
                    ]))
                lines.append(f"    last drift: {'; '.join(parts)}")
        budget = status["freshness_budget"]
        lines.append("")
        lines.append(
            f"Freshness budget: {budget['events']} checks, "
            f"{budget['bad']} stale, "
            f"{budget['budget_remaining'] * 100:.1f}% remaining"
            + (" [BURNING]" if status["freshness_alerting"] else "")
        )
        if status["stale_feeds"]:
            lines.append("Stale feeds: " + ", ".join(
                status["stale_feeds"]))
        return "\n".join(lines)


class NullContractManager:
    """No-op twin: ungoverned ingest pays nothing (the default)."""

    enabled = False

    def register(self, tenant_id: str, contract) -> None:
        raise ConfigurationError(
            "contracts are disabled; construct "
            "Symphony(contracts=True) to register data contracts"
        )

    def contract_for(self, tenant_id: str, table: str) -> None:
        return None

    def tables(self, tenant_id: str | None = None) -> list:
        return []

    def apply(self, tenant_id: str, table: str, rows: list,
              source: str = "") -> None:
        return None

    def attach_slo(self, slo_engine) -> None:
        return None

    def mark_refreshed(self, tenant_id: str, table: str) -> None:
        return None

    def check_freshness(self) -> list:
        return []

    def is_stale(self, tenant_id: str, table: str) -> bool:
        return False

    def source_status(self, tenant_id: str, table: str) -> dict:
        return {}

    def quarantined_rows(self, tenant_id: str, table: str) -> list:
        return []

    def drain_quarantine(self, tenant_id: str, table: str) -> list:
        return []

    def status(self, tenant_id: str | None = None) -> dict:
        return {"tables": [], "freshness_budget": {},
                "freshness_alerting": False, "stale_feeds": []}

    def report(self, tenant_id: str | None = None) -> str:
        return ("contracts disabled "
                "(construct Symphony(contracts=True))")


NULL_CONTRACTS = NullContractManager()
