"""Reproduction of "Symphony: A Platform for Search-Driven Applications"
(Shafer, Agrawal, Lauw — ICDE 2010).

Quickstart::

    from repro import Symphony

    symphony = Symphony()                      # builds a synthetic web
    ann = symphony.register_designer("Ann")
    symphony.upload_http(ann, "inventory.csv", csv_bytes, "inventory",
                         content_type="text/csv")
    inventory = symphony.add_proprietary_source(
        ann, "inventory", search_fields=("title", "producer"))
    reviews = symphony.add_web_source(
        "Reviews", "web", sites=("gamespot.com", "ign.com"))

    designer = symphony.designer()
    session = designer.new_application("GamerQueen",
                                       ann.tenant.tenant_id)
    slot = session.drag_source_onto_app(inventory.source_id,
                                        search_fields=("title",))
    session.add_hyperlink(slot, "title")
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        query_suffix="review")

    app_id = symphony.host(session)
    response = symphony.query(app_id, "halo")
    print(response.html)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-artifact reproductions (Table I, Fig. 1, Fig. 2).
"""

from repro.core.platform import DesignerAccount, Symphony

__version__ = "1.0.0"

__all__ = ["Symphony", "DesignerAccount", "__version__"]
