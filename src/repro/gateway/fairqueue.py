"""Weighted fair queueing: deficit round-robin over per-tenant queues.

Classic DRR (Shreedhar & Varghese): each principal owns a FIFO of
pending entries and a deficit counter.  On each visit to a backlogged
principal the deficit grows by ``quantum * weight``; the principal may
dispatch entries while its deficit covers their cost.  A hot tenant
flooding the gateway therefore only ever gets its weighted share of
dispatches per round — everyone else's queue drains at its own fair
rate, which is the ISSUE's "no application monopolizes the runtime"
guarantee.

The queue is cost-aware but the gateway currently charges every request
cost 1.0, so with equal weights DRR degenerates to plain round-robin.
Not internally locked — the gateway serializes access.
"""

from __future__ import annotations

from collections import deque

__all__ = ["DeficitRoundRobinQueue"]


class DeficitRoundRobinQueue:
    """DRR scheduler over per-principal FIFOs of flight entries."""

    def __init__(self, quantum: float = 1.0, weight_of=None) -> None:
        if quantum <= 0:
            raise ValueError("DRR quantum must be positive")
        self.quantum = quantum
        #: ``weight_of(principal) -> float``; defaults to weight 1.
        self._weight_of = weight_of or (lambda principal: 1.0)
        self._queues: dict[str, deque] = {}
        self._deficit: dict[str, float] = {}
        #: Round-robin rotation of principals with a backlog.
        self._active: deque = deque()

    def push(self, entry) -> None:
        """Enqueue ``entry`` (needs ``.principal`` and ``.cost``)."""
        principal = entry.principal
        queue = self._queues.get(principal)
        if queue is None:
            queue = self._queues[principal] = deque()
        if not queue and principal not in self._active:
            self._active.append(principal)
        queue.append(entry)

    def pop(self):
        """Next entry in DRR order, or ``None`` when idle.

        Keeps rotating until an entry is servable: every visit to a
        backlogged principal grows its deficit by a full quantum, so an
        expensive head entry (cost > quantum * weight) is reached after
        finitely many rotations rather than stalling the queue.
        """
        while self._active:
            principal = self._active[0]
            queue = self._queues.get(principal)
            if not queue:
                # Backlog drained since this principal was scheduled.
                self._active.popleft()
                self._deficit[principal] = 0.0
                continue
            head_cost = queue[0].cost
            deficit = self._deficit.get(principal, 0.0)
            if deficit < head_cost:
                deficit += self.quantum * self._weight_of(principal)
                self._deficit[principal] = deficit
                if deficit < head_cost:
                    # Quantum too small for the head entry this round;
                    # carry the deficit and let the rotation continue.
                    self._active.rotate(-1)
                    continue
            entry = queue.popleft()
            self._deficit[principal] = deficit - head_cost
            if not queue:
                # Idle principals forfeit their deficit (standard DRR):
                # credit must not accumulate while there is nothing to
                # send, or a returning tenant would burst unfairly.
                self._active.popleft()
                self._deficit[principal] = 0.0
            elif self._deficit[principal] < queue[0].cost:
                # Spent this round's quantum: go to the back of the
                # rotation so the next principal gets served.
                self._active.rotate(-1)
            return entry
        return None

    def depth(self, principal: str | None = None) -> int:
        if principal is not None:
            queue = self._queues.get(principal)
            return len(queue) if queue else 0
        return sum(len(queue) for queue in self._queues.values())

    def depths(self) -> dict:
        """Live per-principal backlog (only non-empty queues)."""
        return {principal: len(queue)
                for principal, queue in self._queues.items() if queue}

    def __len__(self) -> int:
        return self.depth()
