"""Admission control: per-tenant token buckets and serving policies.

The gateway's first gate.  Each principal (hosted application) draws
from a deterministic token bucket refilled against the simulated clock;
a principal that has burned its burst and its refill rate is shed with
``reason="throttle"`` before it can occupy queue space.  Policies also
carry the principal's fair-queueing weight and queue bound, so one
:class:`TenantPolicy` describes everything the front door knows about a
tenant.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["TenantPolicy", "TokenBucket", "AdmissionController"]


@dataclass(frozen=True)
class TenantPolicy:
    """Per-principal serving policy.

    ``rate_per_s == 0`` disables throttling for the principal (the
    fair queue and queue bound still apply).  ``burst`` defaults to one
    second's worth of tokens when left at 0.
    """

    #: Deficit-round-robin weight — 2.0 gets twice the service of 1.0.
    weight: float = 1.0
    #: Sustained admission rate, tokens (requests) per simulated second.
    rate_per_s: float = 0.0
    #: Bucket capacity; bounds how large a burst is admitted at once.
    burst: float = 0.0
    #: Maximum queued (not yet dispatched) requests for this principal.
    max_queue_depth: int = 64

    def effective_burst(self) -> float:
        if self.burst > 0:
            return self.burst
        return max(self.rate_per_s, 1.0)


class TokenBucket:
    """A token bucket refilled continuously against the sim clock."""

    __slots__ = ("_clock", "rate_per_s", "capacity", "_tokens",
                 "_refilled_ms")

    def __init__(self, clock, rate_per_s: float, capacity: float) -> None:
        if rate_per_s <= 0 or capacity <= 0:
            raise ValueError("token bucket parameters must be positive")
        self._clock = clock
        self.rate_per_s = rate_per_s
        self.capacity = capacity
        self._tokens = capacity
        self._refilled_ms = clock.now_ms

    def _refill(self) -> None:
        now = self._clock.now_ms
        elapsed_ms = now - self._refilled_ms
        if elapsed_ms > 0:
            self._tokens = min(
                self.capacity,
                self._tokens + elapsed_ms * self.rate_per_s / 1000.0,
            )
            self._refilled_ms = now

    def try_acquire(self, cost: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def available(self) -> float:
        self._refill()
        return self._tokens


class AdmissionController:
    """Per-principal token buckets, built lazily from policies."""

    def __init__(self, clock, default_policy: TenantPolicy,
                 policies=None) -> None:
        self._clock = clock
        self._default = default_policy
        self._policies = dict(policies or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def policy(self, principal: str) -> TenantPolicy:
        return self._policies.get(principal, self._default)

    def set_policy(self, principal: str, policy: TenantPolicy) -> None:
        with self._lock:
            self._policies[principal] = policy
            self._buckets.pop(principal, None)

    def admit(self, principal: str, cost: float = 1.0) -> bool:
        """Charge one request against the principal's bucket."""
        policy = self.policy(principal)
        if policy.rate_per_s <= 0:
            return True
        with self._lock:
            bucket = self._buckets.get(principal)
            if bucket is None:
                bucket = TokenBucket(
                    self._clock, policy.rate_per_s,
                    policy.effective_burst(),
                )
                self._buckets[principal] = bucket
            return bucket.try_acquire(cost)
