"""Corpus/table generation stamps for invalidation-aware caching.

Every cacheable computation in the serving path depends on some body of
data — a designer's proprietary table, the crawled web corpus.  The
:class:`GenerationRegistry` assigns each such dependency a monotonically
increasing integer generation.  Ingest and refresh bump the generation of
whatever they rewrote; caches stamp entries with the generations they
were computed against and treat any mismatch as a miss, so a designer
re-uploading her inventory can never be served results computed over the
old rows.  Subscribers (the platform wires one that drops per-source
:class:`~repro.gateway.primitives.ResultCache` entries) get a callback on
every bump.
"""

from __future__ import annotations

import threading

__all__ = ["GenerationRegistry", "table_key", "CORPUS_KEY",
           "TOPOLOGY_KEY"]

#: Generation key for the shared synthetic-web corpus.
CORPUS_KEY = "corpus"

#: Generation key for the cluster's shard layout. The control plane
#: bumps it at every reshard cutover, so cached responses computed over
#: the old topology (and the old shard contents) die immediately.
TOPOLOGY_KEY = "cluster-topology"


def table_key(tenant_id: str, table_name: str) -> str:
    """The generation key of one tenant's table."""
    return f"tenant:{tenant_id}:{table_name}"


class GenerationRegistry:
    """Monotonic generation counters keyed by data dependency.

    A key that was never bumped is at generation 0, so caches can stamp
    entries before the first ingest without special-casing.
    """

    def __init__(self, events=None) -> None:
        self._generations: dict[str, int] = {}
        self._listeners: list = []
        self._lock = threading.Lock()
        self._events = events

    def current(self, key: str) -> int:
        with self._lock:
            return self._generations.get(key, 0)

    def snapshot(self, keys) -> dict:
        """Current generation of each key, as a cache stamp."""
        with self._lock:
            return {key: self._generations.get(key, 0) for key in keys}

    def valid(self, stamp: dict) -> bool:
        """True while every stamped generation is still current."""
        with self._lock:
            return all(self._generations.get(key, 0) == generation
                       for key, generation in stamp.items())

    def bump(self, key: str) -> int:
        """Advance ``key`` to a new generation; notifies subscribers."""
        with self._lock:
            generation = self._generations.get(key, 0) + 1
            self._generations[key] = generation
            listeners = list(self._listeners)
        if self._events is not None:
            self._events.emit("generation.bump", key=key,
                              generation=generation)
        for listener in listeners:
            listener(key, generation)
        return generation

    def subscribe(self, listener) -> None:
        """Register ``listener(key, generation)`` to run on every bump."""
        with self._lock:
            self._listeners.append(listener)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._generations)
