"""Single-flight request coalescing.

An embed snippet on a popular page stampedes Symphony with identical
queries.  Executing each one would recompute the same scatter-gather N
times; instead, concurrent identical requests — same application,
normalized query text, page, and customer — collapse onto one in-flight
:class:`FlightEntry` whose result fans out to every attached
:class:`Ticket`.  The same mechanism is the cache's stampede protection:
a miss enters the flight table, so the second-through-Nth misses for a
key wait on the first instead of piling onto the backend.
"""

from __future__ import annotations

import threading

__all__ = ["Ticket", "FlightEntry", "SingleFlightTable"]


class Ticket:
    """One caller's handle to an admitted (possibly shared) request."""

    __slots__ = ("key", "principal", "coalesced", "submitted_ms",
                 "_event", "_response", "_error")

    def __init__(self, key, principal: str, submitted_ms: int,
                 coalesced: bool = False) -> None:
        self.key = key
        self.principal = principal
        self.coalesced = coalesced
        self.submitted_ms = submitted_ms
        self._event = threading.Event()
        self._response = None
        self._error = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, response) -> None:
        self._response = response
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(self):
        """The response; raises what the execution raised. Blocks only
        when another thread owns the dispatch."""
        self._event.wait()
        if self._error is not None:
            raise self._error
        return self._response


class FlightEntry:
    """One queued/executing request plus every ticket riding on it."""

    __slots__ = ("key", "principal", "request", "deadline", "context",
                 "enqueued_ms", "cost", "tickets", "executing")

    def __init__(self, key, principal: str, request, deadline,
                 context, enqueued_ms: int, cost: float = 1.0) -> None:
        self.key = key
        self.principal = principal
        self.request = request
        self.deadline = deadline
        #: ``contextvars`` snapshot from submit time, so the dispatching
        #: thread executes under the submitter's telemetry span.
        self.context = context
        self.enqueued_ms = enqueued_ms
        self.cost = cost
        self.tickets: list[Ticket] = []
        self.executing = False

    def attach(self, ticket: Ticket) -> None:
        self.tickets.append(ticket)

    def resolve_all(self, response) -> int:
        for ticket in self.tickets:
            ticket.resolve(response)
        return len(self.tickets)

    def fail_all(self, error: BaseException) -> int:
        for ticket in self.tickets:
            ticket.fail(error)
        return len(self.tickets)


class SingleFlightTable:
    """Key → in-flight :class:`FlightEntry`, while queued or executing.

    Not internally locked: the gateway serializes all table mutations
    under its admission lock, which also closes the attach-vs-resolve
    race (an entry is removed from the table and its tickets snapshotted
    under that same lock before anything resolves).
    """

    def __init__(self) -> None:
        self._inflight: dict = {}

    def lookup(self, key) -> FlightEntry | None:
        return self._inflight.get(key)

    def register(self, key, entry: FlightEntry) -> None:
        self._inflight[key] = entry

    def complete(self, key) -> None:
        self._inflight.pop(key, None)

    def __len__(self) -> int:
        return len(self._inflight)
