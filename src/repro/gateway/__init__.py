"""repro.gateway — the multi-tenant serving front door.

Symphony is a hosted platform: many designer applications share one
runtime, and end-user traffic arrives bursty and unbalanced (embeds on
hot pages, Facebook canvas spikes).  The gateway is the opt-in tier in
front of :class:`~repro.core.runtime.SymphonyRuntime` that makes shared
serving safe:

* :class:`~repro.gateway.admission.AdmissionController` — per-app token
  buckets plus queue bounds; overload is shed with a typed
  :class:`~repro.errors.AdmissionRejectedError` at the door.
* :class:`~repro.gateway.fairqueue.DeficitRoundRobinQueue` — weighted
  fair queueing so one hot tenant cannot starve the rest.
* :class:`~repro.gateway.coalesce.SingleFlightTable` — concurrent
  identical requests collapse onto one execution.
* :class:`~repro.gateway.cache.QueryCache` — shared response cache whose
  entries are stamped with data generations
  (:class:`~repro.gateway.generations.GenerationRegistry`); re-ingest
  bumps the generation, so stale hits are impossible.

Enable it with ``Symphony(gateway=True)`` (or a tuned
:class:`GatewayConfig`) and serve through
:meth:`Symphony.query_via_gateway`.

:mod:`repro.gateway.primitives` additionally hosts the serving
primitives (:class:`ResultCache`, :class:`CircuitBreaker`,
:class:`RateLimiter`) that historically lived in ``core.runtime`` and
are still re-exported there.
"""

from __future__ import annotations

from repro.gateway.admission import (
    AdmissionController,
    TenantPolicy,
    TokenBucket,
)
from repro.gateway.cache import QueryCache, normalize_query
from repro.gateway.coalesce import FlightEntry, SingleFlightTable, Ticket
from repro.gateway.fairqueue import DeficitRoundRobinQueue
from repro.gateway.gateway import Gateway, GatewayConfig
from repro.gateway.generations import (
    CORPUS_KEY,
    GenerationRegistry,
    table_key,
)
from repro.gateway.primitives import (
    CircuitBreaker,
    RateLimiter,
    ResultCache,
)

__all__ = [
    "Gateway",
    "GatewayConfig",
    "TenantPolicy",
    "TokenBucket",
    "AdmissionController",
    "DeficitRoundRobinQueue",
    "SingleFlightTable",
    "FlightEntry",
    "Ticket",
    "QueryCache",
    "normalize_query",
    "GenerationRegistry",
    "table_key",
    "CORPUS_KEY",
    "ResultCache",
    "CircuitBreaker",
    "RateLimiter",
]
