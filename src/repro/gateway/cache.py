"""The gateway's shared, generation-stamped query cache.

Unlike the runtime's per-source :class:`~repro.gateway.primitives.
ResultCache`, this caches whole :class:`~repro.core.runtime.
ApplicationResponse` objects keyed by ``(app_id, app version,
normalized query, page, customer)`` — one hit skips the entire pipeline.
Every entry is stamped with the generations (see
:mod:`repro.gateway.generations`) of the data the response was computed
from; a designer re-ingesting her table bumps the generation and every
stamped entry becomes invisible on its next read.  Stale hits are
therefore *impossible*, not merely bounded by TTL.

Stampede protection is the gateway's single-flight table: a miss here
enters the flight table before executing, so concurrent misses for one
key cost one execution.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["QueryCache", "normalize_query"]


def normalize_query(text: str) -> str:
    """Collapse the query variations that cannot change results.

    Case folding matches the search substrate (analysis lowercases
    terms); whitespace runs collapse to single spaces.
    """
    return " ".join(text.split()).lower()


class QueryCache:
    """LRU + TTL response cache validated against a generation registry."""

    def __init__(self, generations, max_entries: int = 1024,
                 ttl_ms: int = 30_000) -> None:
        if max_entries <= 0 or ttl_ms <= 0:
            raise ValueError("query cache parameters must be positive")
        self._generations = generations
        self.max_entries = max_entries
        self.ttl_ms = ttl_ms
        #: key -> (stored_ms, stamp dict, response)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._stale_hits = 0
        self._ttl_evictions = 0
        self._lru_evictions = 0

    def get(self, key, now_ms: int):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            stored_ms, stamp, response = entry
            if now_ms - stored_ms > self.ttl_ms:
                del self._entries[key]
                self._ttl_evictions += 1
                self._misses += 1
                return None
            if not self._generations.valid(stamp):
                # The data this response was computed from has been
                # re-ingested; the entry is dead regardless of TTL.
                del self._entries[key]
                self._stale_hits += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return response

    def put(self, key, response, generation_keys, now_ms: int) -> None:
        stamp = self._generations.snapshot(generation_keys)
        with self._lock:
            self._entries[key] = (now_ms, stamp, response)
            self._entries.move_to_end(key)
            expired = [
                k for k, (stored, __, ___) in self._entries.items()
                if now_ms - stored > self.ttl_ms
            ]
            for k in expired:
                del self._entries[k]
            self._ttl_evictions += len(expired)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._lru_evictions += 1

    def stats(self) -> dict:
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_ratio": (self._hits / total) if total else 0.0,
                "stale_invalidations": self._stale_hits,
                "ttl_evictions": self._ttl_evictions,
                "lru_evictions": self._lru_evictions,
                "entries": len(self._entries),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
