"""Shared serving primitives: result cache, circuit breaker, rate limiter.

These classes grew up inside :mod:`repro.core.runtime`; the gateway, the
cluster, and the runtime all use them, so they live here now.  The
runtime re-exports them under their historical names
(``repro.core.runtime.ResultCache`` etc.) for backward compatibility.

Everything is judged against :class:`repro.util.SimClock` and guarded by
locks: cluster worker threads, gateway dispatchers, and concurrent app
queries share these objects.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

from repro.errors import QuotaExceededError

__all__ = ["ResultCache", "CircuitBreaker", "RateLimiter"]


class ResultCache:
    """LRU cache of :class:`SourceResult` keyed by (source, query, count).

    TTL is judged against the simulated clock so tests can age entries
    deterministically. Expired entries are swept on every ``put`` (not
    just when their key is re-read), so an app issuing many distinct
    queries cannot hold dead entries up to the LRU cap. Thread-safe:
    cluster worker threads and concurrent app queries share one cache.

    Keys are tuples whose first element is the owning source id, which
    :meth:`invalidate_source` relies on to drop a source's entries when
    its backing data changes (re-ingest, refresh).
    """

    def __init__(self, max_entries: int = 512,
                 ttl_ms: int = 5 * 60 * 1000) -> None:
        self.max_entries = max_entries
        self.ttl_ms = ttl_ms
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._ttl_evictions = 0
        self._lru_evictions = 0
        self._invalidations = 0

    def _prune(self, now_ms: int) -> None:
        # Sweep TTL-dead entries first; only then apply the LRU cap.
        expired = [
            key for key, (stored_ms, __) in self._entries.items()
            if now_ms - stored_ms > self.ttl_ms
        ]
        for key in expired:
            del self._entries[key]
        self._ttl_evictions += len(expired)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._lru_evictions += 1

    def get(self, key, now_ms: int):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            stored_ms, value = entry
            if now_ms - stored_ms > self.ttl_ms:
                del self._entries[key]
                self._ttl_evictions += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def stats(self) -> dict:
        """Lifetime cache statistics (feeds the metrics registry)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "ttl_evictions": self._ttl_evictions,
                "lru_evictions": self._lru_evictions,
                "invalidations": self._invalidations,
                "entries": len(self._entries),
            }

    def put(self, key, value, now_ms: int) -> None:
        with self._lock:
            self._entries[key] = (now_ms, value)
            self._entries.move_to_end(key)
            self._prune(now_ms)

    def invalidate_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns
        how many were dropped."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self._invalidations += len(doomed)
            return len(doomed)

    def invalidate_source(self, source_id: str) -> int:
        """Drop every entry cached for ``source_id``.

        This is the stale-cache fix for designer re-ingest: when a
        proprietary table is reloaded, results computed against the old
        rows must not survive for the rest of their TTL.
        """
        return self.invalidate_where(
            lambda key: key and key[0] == source_id
        )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CircuitBreaker:
    """Per-source circuit breaker for the supplemental fan-out.

    A source that keeps failing should stop being called on every
    query — each attempt costs latency the end user feels. After
    ``failure_threshold`` consecutive failures the circuit opens and
    calls are skipped (with a trace warning) until ``cooldown_ms`` of
    simulated time has passed; the next call then probes the source
    (half-open) and either closes the circuit or re-opens it.
    """

    def __init__(self, clock, failure_threshold: int = 3,
                 cooldown_ms: int = 60_000, events=None) -> None:
        if failure_threshold <= 0 or cooldown_ms <= 0:
            raise ValueError(
                "circuit breaker parameters must be positive"
            )
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self._events = events
        self._consecutive_failures: dict[str, int] = {}
        self._opened_at_ms: dict[str, int] = {}
        self._half_open: set[str] = set()
        self._lock = threading.RLock()

    def _emit(self, kind: str, source_id: str, **fields) -> None:
        if self._events is not None:
            self._events.emit(kind, source=source_id, **fields)

    def is_open(self, source_id: str) -> bool:
        with self._lock:
            opened_at = self._opened_at_ms.get(source_id)
            if opened_at is None:
                return False
            if self._clock.now_ms - opened_at < self.cooldown_ms:
                return True
            # Half-open: admit exactly one probe; everyone else stays
            # blocked until the probe reports success or failure.
            if source_id in self._half_open:
                return True
            self._half_open.add(source_id)
            self._emit("circuit.half_open", source_id)
            return False

    def record_failure(self, source_id: str) -> None:
        with self._lock:
            probing = source_id in self._half_open
            self._half_open.discard(source_id)
            if probing:
                # Failed probe: re-open immediately with a fresh cooldown.
                self._consecutive_failures[source_id] = \
                    self.failure_threshold
                self._opened_at_ms[source_id] = self._clock.now_ms
                self._emit("circuit.reopen", source_id)
                return
            count = self._consecutive_failures.get(source_id, 0) + 1
            self._consecutive_failures[source_id] = count
            if count >= self.failure_threshold:
                was_open = source_id in self._opened_at_ms
                self._opened_at_ms[source_id] = self._clock.now_ms
                if not was_open:
                    self._emit("circuit.open", source_id,
                               failures=count)

    def record_success(self, source_id: str) -> None:
        with self._lock:
            was_tripped = (source_id in self._half_open
                           or source_id in self._opened_at_ms)
            self._half_open.discard(source_id)
            self._consecutive_failures.pop(source_id, None)
            self._opened_at_ms.pop(source_id, None)
            if was_tripped:
                self._emit("circuit.closed", source_id)

    def state(self, source_id: str) -> str:
        with self._lock:
            if source_id in self._half_open:
                return "half_open"
            if source_id in self._opened_at_ms:
                return "open"
            if self._consecutive_failures.get(source_id, 0) > 0:
                return "degraded"
            return "closed"


class RateLimiter:
    """Sliding-window per-application request limiter.

    Hosting shoulders every application's execution cost (§II-A
    Hosting), so a runaway embed must not starve the platform. Judged
    against the simulated clock; disabled unless attached to a runtime.
    """

    def __init__(self, clock, max_requests: int = 600,
                 window_ms: int = 60_000, events=None) -> None:
        if max_requests <= 0 or window_ms <= 0:
            raise ValueError("rate limit parameters must be positive")
        self._clock = clock
        self.max_requests = max_requests
        self.window_ms = window_ms
        self._sink = events
        # Timestamps are appended in clock order, so eviction is always
        # from the left: a deque makes that O(1) per expired event where
        # list.pop(0) was O(n) at exactly the traffic the limiter exists
        # to police.
        self._events: dict[str, deque] = {}
        self._lock = threading.Lock()

    def _evict(self, events: deque, horizon: int) -> None:
        while events and events[0] <= horizon:
            events.popleft()

    def check(self, app_id: str) -> None:
        """Record one request; raise when the app exceeds its window."""
        with self._lock:
            now = self._clock.now_ms
            horizon = now - self.window_ms
            events = self._events.setdefault(app_id, deque())
            self._evict(events, horizon)
            if len(events) >= self.max_requests:
                if self._sink is not None:
                    self._sink.emit(
                        "ratelimit.rejected", app_id=app_id,
                        limit=self.max_requests,
                        window_ms=self.window_ms,
                    )
                raise QuotaExceededError(
                    f"application {app_id} exceeded "
                    f"{self.max_requests} requests per "
                    f"{self.window_ms} ms"
                )
            events.append(now)

    def remaining(self, app_id: str) -> int:
        with self._lock:
            events = self._events.get(app_id)
            if events is None:
                return self.max_requests
            self._evict(events, self._clock.now_ms - self.window_ms)
            return max(0, self.max_requests - len(events))
