"""The serving front door: admission → fair queue → dispatch → cache.

:class:`Gateway` wraps the runtime's query path end to end for a hosted,
multi-tenant deployment:

1. **Admission** — per-application token buckets
   (:mod:`repro.gateway.admission`) and bounded per-tenant queues; a
   request whose projected queue wait would consume its deadline budget
   is shed *now* with :class:`~repro.errors.AdmissionRejectedError`
   instead of timing out deep inside the pipeline.
2. **Weighted fairness** — deficit round-robin over tenant queues
   (:mod:`repro.gateway.fairqueue`), so a hot application gets its
   weighted share and nothing more.
3. **Coalescing** — identical concurrent requests collapse onto one
   execution (:mod:`repro.gateway.coalesce`).
4. **Caching** — whole responses, stamped with data generations
   (:mod:`repro.gateway.cache`), so re-ingest invalidates immediately.

Dispatch runs in whichever thread asks for work (a synchronous
``query()`` drains the queue until its own ticket resolves; benchmarks
use ``pump()``), which keeps execution deterministic under
:class:`~repro.util.SimClock` while remaining safe under real threads.
Deadlines and telemetry trace context propagate across the queue
boundary: the deadline is minted at submit so queue wait burns budget,
and each entry carries a ``contextvars`` snapshot from its submitter.
"""

from __future__ import annotations

import contextvars
import threading
from dataclasses import dataclass, field, replace as dataclass_replace

from repro.errors import AdmissionRejectedError, ReproError
from repro.gateway.admission import AdmissionController, TenantPolicy
from repro.gateway.cache import QueryCache, normalize_query
from repro.gateway.coalesce import FlightEntry, SingleFlightTable, Ticket
from repro.gateway.fairqueue import DeficitRoundRobinQueue
from repro.gateway.generations import (
    CORPUS_KEY,
    TOPOLOGY_KEY,
    table_key,
)
from repro.resilience import Deadline
from repro.telemetry import Telemetry

__all__ = ["GatewayConfig", "Gateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs for the serving gateway (all judged on the sim clock)."""

    #: Modeled dispatch parallelism; scales the projected-wait estimate
    #: used for deadline-aware shedding (execution itself is serialized
    #: on the sim clock, so fairness and latency replay exactly).
    workers: int = 4
    #: DRR quantum in cost units (every request costs 1.0).
    quantum: float = 1.0
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    #: Per-application policy overrides, by app id.
    policies: dict = field(default_factory=dict)
    #: Queue-boundary overhead charged per dispatched request.
    dispatch_ms: float = 0.5
    #: Seed for the per-request service-time estimate (EWMA-updated).
    expected_service_ms: float = 40.0
    service_ewma_alpha: float = 0.2
    #: Shed when projected wait exceeds this fraction of the budget.
    shed_headroom: float = 0.9
    coalesce: bool = True
    cache: bool = True
    cache_max_entries: int = 1024
    cache_ttl_ms: int = 30_000


class Gateway:
    """Multi-tenant serving gateway in front of one runtime."""

    def __init__(self, runtime, apps, sources, clock,
                 generations, telemetry: Telemetry | None = None,
                 config: GatewayConfig | None = None,
                 default_deadline_ms: float = 0.0,
                 contracts=None) -> None:
        self._runtime = runtime
        self._apps = apps
        self._sources = sources
        self._clock = clock
        self._generations = generations
        self.config = config or GatewayConfig()
        if self.config.workers <= 0:
            raise ValueError("gateway worker count must be positive")
        self.telemetry = telemetry or Telemetry.disabled()
        self._tracer = self.telemetry.tracer
        self._metrics = self.telemetry.metrics
        self._events = self.telemetry.events
        self._default_deadline_ms = default_deadline_ms
        #: A :class:`~repro.contracts.ContractManager` (or ``None``):
        #: lets API consumers pull the per-tenant governance report
        #: from the same front door they query through.
        self._contracts = contracts
        self.admission = AdmissionController(
            clock, self.config.default_policy, self.config.policies
        )
        self._queue = DeficitRoundRobinQueue(
            quantum=self.config.quantum,
            weight_of=lambda p: self.admission.policy(p).weight,
        )
        self._flights = SingleFlightTable()
        self.cache = (QueryCache(
            generations,
            max_entries=self.config.cache_max_entries,
            ttl_ms=self.config.cache_ttl_ms,
        ) if self.config.cache else None)
        self._service_ms = self.config.expected_service_ms
        self._lock = threading.RLock()
        self._submitted = 0
        self._admitted = 0
        self._coalesced = 0
        self._dispatched = 0
        self._shed: dict[str, int] = {}
        self._completed: dict[str, int] = {}
        if self.telemetry.enabled:
            self._metrics.gauge("gateway_queue_depth",
                                fn=lambda: self._queue.depth())

    # -- submit ----------------------------------------------------------------

    def submit(self, request) -> Ticket:
        """Admit ``request``; returns a ticket (resolved instantly on a
        cache hit) or raises :class:`AdmissionRejectedError`."""
        app = self._apps.get(request.app_id)
        principal = app.app_id
        key = self._request_key(request)
        now = self._clock.now_ms
        budget_ms = request.deadline_ms or self._default_deadline_ms
        with self._lock:
            self._submitted += 1
            if self.cache is not None:
                cached = self.cache.get(key, now)
                if cached is not None:
                    self._metrics.counter("gateway_cache_hits_total").inc()
                    ticket = Ticket(key, principal, now)
                    ticket.resolve(cached)
                    return ticket
                self._metrics.counter("gateway_cache_misses_total").inc()
            if self.config.coalesce:
                entry = self._flights.lookup(key)
                if entry is not None:
                    # Ride the in-flight execution; costs no queue slot
                    # and no bucket token because it adds no work.
                    ticket = Ticket(key, principal, now, coalesced=True)
                    entry.attach(ticket)
                    self._coalesced += 1
                    self._metrics.counter("gateway_coalesced_total").inc()
                    return ticket
            policy = self.admission.policy(principal)
            if not self.admission.admit(principal):
                raise self._shed_now(
                    "throttle", principal,
                    f"token bucket empty ({policy.rate_per_s:g}/s)",
                )
            if self._queue.depth(principal) >= policy.max_queue_depth:
                raise self._shed_now(
                    "queue_full", principal,
                    f"{policy.max_queue_depth} requests already queued",
                )
            projected = self._projected_wait_ms()
            if (budget_ms > 0
                    and projected >= self.config.shed_headroom * budget_ms):
                raise self._shed_now(
                    "deadline", principal,
                    f"projected wait {projected:.0f}ms would consume "
                    f"the {budget_ms:.0f}ms budget",
                )
            deadline = (Deadline(self._clock, budget_ms)
                        if budget_ms > 0 else None)
            entry = FlightEntry(
                key, principal, request, deadline,
                contextvars.copy_context(), now,
            )
            ticket = Ticket(key, principal, now)
            entry.attach(ticket)
            self._queue.push(entry)
            self._flights.register(key, entry)
            self._admitted += 1
            self._metrics.counter("gateway_admitted_total").inc()
            return ticket

    def query(self, request):
        """Synchronous front-door query: submit, then dispatch (helping
        to drain whatever is queued ahead) until our ticket resolves."""
        ticket = self.submit(request)
        self._drain_for(ticket)
        return ticket.result()

    # -- dispatch --------------------------------------------------------------

    def pump(self, max_dispatches: int | None = None) -> int:
        """Dispatch queued requests in DRR order; returns how many ran."""
        dispatched = 0
        while max_dispatches is None or dispatched < max_dispatches:
            entry = self._next_entry()
            if entry is None:
                break
            self._execute(entry)
            dispatched += 1
        return dispatched

    def _drain_for(self, ticket: Ticket) -> None:
        while not ticket.done:
            entry = self._next_entry()
            if entry is None:
                # Our key is being executed by another thread.
                ticket.wait(timeout=0.05)
                continue
            self._execute(entry)

    def _next_entry(self):
        with self._lock:
            entry = self._queue.pop()
            if entry is not None:
                entry.executing = True
            return entry

    def _execute(self, entry: FlightEntry) -> None:
        entry.context.run(self._execute_in_context, entry)

    def _execute_in_context(self, entry: FlightEntry) -> None:
        self._clock.advance(self.config.dispatch_ms)
        queue_wait_ms = self._clock.now_ms - entry.enqueued_ms
        self._metrics.histogram("gateway_queue_wait_ms").observe(
            queue_wait_ms
        )
        if entry.deadline is not None and entry.deadline.expired:
            # The budget died in the queue; shed instead of entering the
            # pipeline with nothing left to spend.
            error = AdmissionRejectedError(
                "deadline_lapsed",
                f"budget of {entry.deadline.budget_ms:.0f}ms consumed "
                f"by {queue_wait_ms:.0f}ms of queueing",
            )
            self._record_shed("deadline_lapsed", entry.principal,
                              str(error))
            self._finish(entry, error=error)
            return
        request = entry.request
        if entry.deadline is not None:
            # Re-quote the budget across the queue boundary: the
            # pipeline gets whatever queueing left behind.
            request = dataclass_replace(
                request, deadline_ms=entry.deadline.remaining_ms()
            )
        with self._tracer.span("gateway") as span:
            if span:
                span.set("principal", entry.principal)
                span.set("queue_wait_ms", queue_wait_ms)
                span.set("waiters", len(entry.tickets))
            started_ms = self._clock.now_ms
            try:
                response = self._runtime.handle_query(request)
            except ReproError as exc:
                if span:
                    span.set("error", str(exc))
                self._finish(entry, error=exc)
                return
        service_ms = self._clock.now_ms - started_ms
        alpha = self.config.service_ewma_alpha
        self._service_ms = ((1 - alpha) * self._service_ms
                            + alpha * service_ms)
        if self.cache is not None and not response.degraded:
            # Degraded responses must not satisfy repeat queries for a
            # whole TTL after the incident clears.
            self.cache.put(entry.key, response,
                           self._generation_keys(request.app_id),
                           self._clock.now_ms)
        self._finish(entry, response=response)

    def _finish(self, entry: FlightEntry, response=None,
                error=None) -> None:
        with self._lock:
            # Snapshot + unregister under the admission lock so a
            # concurrent submit either attached before this point (and
            # resolves below) or misses the flight table entirely.
            self._flights.complete(entry.key)
            waiters = list(entry.tickets)
            self._dispatched += 1
            if error is None:
                self._completed[entry.principal] = \
                    self._completed.get(entry.principal, 0) + 1
        self._metrics.counter("gateway_dispatch_total").inc()
        if len(waiters) > 1:
            self._metrics.counter("gateway_fanout_total").inc(
                len(waiters) - 1
            )
        for ticket in waiters:
            if error is not None:
                ticket.fail(error)
            else:
                ticket.resolve(response)

    # -- internals -------------------------------------------------------------

    def _request_key(self, request):
        # The app version folds designer re-publishes into the key, so a
        # redeployed application never serves its predecessor's cache.
        return (
            request.app_id,
            self._apps.version(request.app_id),
            normalize_query(request.query_text),
            request.page,
            request.customer_id,
        )

    def _projected_wait_ms(self) -> float:
        """Expected queueing delay for a new arrival, from the live
        backlog and the EWMA of observed service time."""
        backlog = self._queue.depth()
        return (self.config.dispatch_ms
                + backlog * self._service_ms / self.config.workers)

    def _generation_keys(self, app_id: str) -> list:
        """The generation stamps a cached response for ``app_id``
        depends on: one per proprietary table, the shared corpus plus
        the cluster's shard layout for web-backed sources (the control
        plane bumps the topology generation at every reshard cutover),
        and a per-source fallback otherwise. Sources that know their own
        dependencies — a federated source spans *every* backend it can
        touch — publish them via a ``generation_keys`` callable, which
        takes precedence so re-ingest on any one backend invalidates
        the cached fusion mid-TTL."""
        app = self._apps.get(app_id)
        keys = set()
        for binding in app.bindings:
            source = self._sources.get(binding.source_id)
            generation_keys = getattr(source, "generation_keys", None)
            if callable(generation_keys):
                keys.update(generation_keys())
                continue
            table = getattr(source, "table", None)
            tenant_id = getattr(source, "tenant_id", None)
            engine = (getattr(source, "engine", None)
                      or getattr(source, "_engine", None))
            if table is not None and tenant_id is not None:
                keys.add(table_key(tenant_id, table.name))
            elif engine is not None:
                keys.add(CORPUS_KEY)
                keys.add(TOPOLOGY_KEY)
            else:
                keys.add(f"source:{binding.source_id}")
        return sorted(keys)

    def _shed_now(self, reason: str, principal: str,
                  detail: str) -> AdmissionRejectedError:
        self._record_shed(reason, principal, detail)
        return AdmissionRejectedError(reason, detail)

    def _record_shed(self, reason: str, principal: str,
                     detail: str) -> None:
        self._shed[reason] = self._shed.get(reason, 0) + 1
        self._metrics.counter("gateway_shed_total",
                              reason=reason).inc()
        self._events.emit("gateway.shed", reason=reason,
                          principal=principal, detail=detail)

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """Lifetime gateway statistics (the ``repro gateway`` report)."""
        with self._lock:
            stats = {
                "submitted": self._submitted,
                "admitted": self._admitted,
                "coalesced": self._coalesced,
                "dispatched": self._dispatched,
                "shed": dict(sorted(self._shed.items())),
                "shed_total": sum(self._shed.values()),
                "queue_depth": self._queue.depth(),
                "queue_depths": self._queue.depths(),
                "completed": dict(sorted(self._completed.items())),
                "service_estimate_ms": round(self._service_ms, 3),
            }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        return stats

    def contract_status(self, tenant_id: str | None = None) -> dict:
        """Per-tenant data-governance report: violations, drift,
        quarantine depth, and freshness for every contracted table.
        Empty when contracts are not enabled on the platform."""
        if self._contracts is None:
            return {"tables": [], "freshness_budget": {},
                    "freshness_alerting": False, "stale_feeds": []}
        return self._contracts.status(tenant_id)

    def describe(self) -> str:
        stats = self.stats()
        lines = ["Gateway:"]
        for label in ("submitted", "admitted", "coalesced",
                      "dispatched", "shed_total", "queue_depth"):
            lines.append(f"  {label:<22} {stats[label]}")
        for reason, count in stats["shed"].items():
            lines.append(f"  shed[{reason}]{'':<{max(0, 16 - len(reason))}} "
                         f"{count}")
        if "cache" in stats:
            cache = stats["cache"]
            lines.append(
                f"  cache                  {cache['hits']} hits / "
                f"{cache['misses']} misses "
                f"(ratio {cache['hit_ratio']:.2f}, "
                f"{cache['stale_invalidations']} generation-invalidated)"
            )
        for principal, count in stats["completed"].items():
            lines.append(f"  completed[{principal}] {count}")
        return "\n".join(lines)
