"""Exception hierarchy shared across the Symphony reproduction.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch platform failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An application or source configuration is invalid."""


class ValidationError(ReproError):
    """User-supplied data failed validation."""


class NotFoundError(ReproError):
    """A referenced entity (tenant, table, app, service...) does not exist."""


class DuplicateError(ReproError):
    """An entity with the same identifier already exists."""


class AuthorizationError(ReproError):
    """The caller's token does not grant the requested operation."""


class QuotaExceededError(ReproError):
    """A tenant exceeded its storage or request quota."""


class UnsupportedCapabilityError(ReproError):
    """A platform (typically a Table-I baseline) does not support a feature.

    The capability probes used to regenerate Table I rely on this being
    raised by baseline platforms for unsupported operations.
    """

    def __init__(self, capability: str, detail: str = "") -> None:
        self.capability = capability
        message = f"unsupported capability: {capability}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class TransportError(ReproError):
    """A simulated network transport failed (timeout, reset, 4xx/5xx)."""


class ServiceError(ReproError):
    """A web service invocation failed."""


class ServiceFaultError(ServiceError):
    """A SOAP-style fault returned by a service."""

    def __init__(self, code: str, reason: str) -> None:
        self.code = code
        self.reason = reason
        super().__init__(f"{code}: {reason}")


class DeadlineExceededError(ReproError):
    """A per-query wall-clock budget ran out before the work completed.

    Raised by :class:`repro.resilience.Deadline` checks inside the service
    bus, the cluster scatter-gather, and the ad auction.  The runtime
    catches it and degrades to partial results; it never fails a query.
    """


class RetryExhaustedError(ReproError):
    """A retryable operation kept failing until the retry budget ran out.

    Carries the number of ``attempts`` made and the ``cause`` — the last
    underlying :class:`ReproError` — so callers (and warnings) can surface
    what actually went wrong.
    """

    def __init__(self, attempts: int, cause: BaseException) -> None:
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"retries exhausted after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {cause}"
        )


class AdmissionRejectedError(ReproError):
    """The serving gateway refused a request before execution.

    Carries the machine-readable ``reason`` — ``"throttle"`` (token
    bucket empty), ``"queue_full"`` (per-tenant queue at capacity),
    ``"deadline"`` (projected queue wait would consume the request's
    budget), or ``"deadline_lapsed"`` (budget ran out while queued).
    Shedding at the front door is deliberate: the caller learns
    immediately instead of timing out inside the pipeline.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        message = f"admission rejected ({reason})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class ControlPlaneError(ReproError):
    """A topology-change request was invalid or conflicted with one in
    flight (only one migration runs at a time)."""


class DurabilityError(ReproError):
    """A WAL/checkpoint/recovery operation was invalid or failed to
    converge (e.g. a post-replay digest mismatch with a healthy peer)."""


class QueryError(ReproError):
    """A search query could not be parsed or evaluated."""


class ReplicaFaultError(ReproError):
    """An injected or simulated fault on one shard replica."""


class ShardUnavailableError(ReproError):
    """Every replica of a shard failed to serve a request."""


class IngestError(ReproError):
    """A data upload could not be parsed or normalized."""


class ContractViolationError(IngestError):
    """Rows broke their table's data contract under the ``reject`` policy.

    Carries the structured ``violations`` (sequence of
    :class:`repro.contracts.Violation`) so callers can report exactly
    which rows and fields failed instead of re-parsing the message.
    """

    def __init__(self, table: str, violations=()) -> None:
        self.table = table
        self.violations = tuple(violations)
        super().__init__(
            f"contract violated for table {table!r}: "
            f"{len(self.violations)} violation"
            f"{'s' if len(self.violations) != 1 else ''}"
        )


class StorageError(ReproError):
    """A storage-layer invariant was violated."""


class VersionConflictError(StorageError):
    """Optimistic concurrency check failed on a record update."""


class RenderError(ReproError):
    """Layout rendering failed."""


class PublicationError(ReproError):
    """Publishing an application to a distribution target failed."""


def retryable(exc: BaseException) -> bool:
    """Classify whether retrying ``exc`` could plausibly succeed.

    Transient provider-side failures (transport resets, simulated outages,
    replica faults, shard exhaustion, executor timeouts, ``Server.*`` SOAP
    faults) are retryable.  Caller mistakes (validation, authorization,
    not-found, ``Client.*`` faults), quota rejections, and the resilience
    layer's own terminal errors are not.
    """
    if isinstance(exc, (DeadlineExceededError, RetryExhaustedError)):
        return False
    if isinstance(exc, ServiceFaultError):
        return exc.code.startswith("Server")
    if isinstance(exc, (TransportError, ServiceError, ReplicaFaultError,
                        ShardUnavailableError)):
        return True
    return isinstance(exc, TimeoutError)
