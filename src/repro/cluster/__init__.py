"""``repro.cluster`` — sharded, replicated search-index cluster.

Document-partitioned shards, N-way replica groups with health tracking
and failover, parallel scatter-gather query execution with a two-phase
global-statistics exchange, and a facade that is a drop-in replacement
for the single-node :class:`~repro.searchengine.engine.SearchEngine`.
"""

from repro.cluster.engine import (
    ClusterConfig,
    ClusteredSearchEngine,
    ClusterSearchResponse,
    build_clustered_engine,
)
from repro.cluster.executor import (
    ScatterGatherExecutor,
    ShardOutcome,
    merge_ranked,
)
from repro.cluster.replica import ReplicaGroup, ShardReplica
from repro.cluster.sharding import (
    HASH_SPACE,
    RouteMap,
    ShardRange,
    ShardRouter,
    route_hash,
)

__all__ = [
    "HASH_SPACE",
    "RouteMap",
    "ShardRange",
    "route_hash",
    "ClusterConfig",
    "ClusterSearchResponse",
    "ClusteredSearchEngine",
    "build_clustered_engine",
    "ScatterGatherExecutor",
    "ShardOutcome",
    "merge_ranked",
    "ReplicaGroup",
    "ShardReplica",
    "ShardRouter",
]
