"""Parallel scatter-gather over shards.

Dispatches one task per shard onto a shared thread pool, enforces one
shared wall-clock budget across the gather, and merges the shards'
already-sorted result lists with a heap so gathering top-k costs
O(k log num_shards), not a global re-sort.
"""

from __future__ import annotations

import contextvars
import heapq
import time
from concurrent.futures import ThreadPoolExecutor, TimeoutError as _Timeout
from dataclasses import dataclass

__all__ = ["ShardOutcome", "ScatterGatherExecutor", "merge_ranked"]


@dataclass
class ShardOutcome:
    """The result (or failure) of one shard's task."""

    shard_id: int
    value: object = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class ScatterGatherExecutor:
    """A reusable thread pool with per-shard timeout semantics."""

    def __init__(self, max_workers: int | None = None,
                 shard_timeout_s: float = 5.0) -> None:
        if shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive")
        self._max_workers = max_workers
        self.shard_timeout_s = shard_timeout_s
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self, task_count: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self._max_workers or min(16, max(1, task_count))
            self._pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="scatter-gather",
            )
        return self._pool

    def scatter(self, tasks: dict,
                wall_budget_s: float | None = None) -> dict:
        """Run ``{shard_id: thunk}`` in parallel under one wall budget.

        Returns ``{shard_id: ShardOutcome}``; a thunk that raises or is
        still running when the budget expires yields a failed outcome
        instead of propagating, so one slow or dead shard cannot fail
        the query.

        The gather waits against a *shared* deadline of ``wall_budget_s``
        (default: ``shard_timeout_s``) real seconds from scatter time:
        each sequential ``future.result`` wait only gets the budget that
        earlier shards left behind, so the total gather can never
        overshoot the budget the way independent per-shard timeouts
        stacked up to ``N * shard_timeout_s`` could.  Shards that
        already finished are still collected after expiry (a zero
        timeout only fails futures that are genuinely unfinished).

        Each task runs under a copy of the caller's ``contextvars``
        context, so ambient state — in particular the current telemetry
        span — propagates onto the worker threads and spans opened
        inside a shard task parent under the span that scattered it.
        """
        if not tasks:
            return {}
        budget_s = (wall_budget_s if wall_budget_s is not None
                    else self.shard_timeout_s)
        pool = self._ensure_pool(len(tasks))
        wall_deadline = time.monotonic() + budget_s
        futures = {
            shard_id: pool.submit(contextvars.copy_context().run, thunk)
            for shard_id, thunk in tasks.items()
        }
        outcomes: dict[int, ShardOutcome] = {}
        for shard_id, future in futures.items():
            remaining = max(0.0, wall_deadline - time.monotonic())
            try:
                value = future.result(timeout=remaining)
            except _Timeout:
                future.cancel()
                outcomes[shard_id] = ShardOutcome(
                    shard_id,
                    error=TimeoutError(
                        f"shard {shard_id} unfinished after the "
                        f"{budget_s:.1f}s scatter budget"
                    ),
                )
            except Exception as exc:  # noqa: BLE001 — isolated per shard
                outcomes[shard_id] = ShardOutcome(shard_id, error=exc)
            else:
                outcomes[shard_id] = ShardOutcome(shard_id, value=value)
        return outcomes

    def resize(self, max_workers: int) -> None:
        """Grow the dispatch width (e.g. after a shard split).

        A shrink request is ignored — fewer shards simply leave pool
        threads idle. The current pool is retired and rebuilt lazily at
        the new width on the next scatter.
        """
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if (self._max_workers is not None
                and max_workers <= self._max_workers):
            return
        self.close()
        self._max_workers = max_workers

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ScatterGatherExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_ranked(shard_lists: dict):
    """Heap-merge per-shard ``[(doc_id, score)]`` lists.

    Each input list must already be ordered by (score desc, doc_id) —
    the order :func:`repro.searchengine.engine.rank_candidates`
    produces. Yields ``(doc_id, score, shard_id)`` in that same global
    order; consume lazily (e.g. ``islice``) for top-k.
    """
    def tag(scored, shard_id):
        for doc_id, score in scored:
            yield doc_id, score, shard_id

    return heapq.merge(
        *(tag(scored, shard_id)
          for shard_id, scored in shard_lists.items()),
        key=lambda entry: (-entry[1], entry[0]),
    )
