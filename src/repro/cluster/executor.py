"""Parallel scatter-gather over shards.

Dispatches one task per shard onto a shared thread pool, enforces a
per-shard wall-clock timeout, and merges the shards' already-sorted
result lists with a heap so gathering top-k costs
O(k log num_shards), not a global re-sort.
"""

from __future__ import annotations

import contextvars
import heapq
from concurrent.futures import ThreadPoolExecutor, TimeoutError as _Timeout
from dataclasses import dataclass

__all__ = ["ShardOutcome", "ScatterGatherExecutor", "merge_ranked"]


@dataclass
class ShardOutcome:
    """The result (or failure) of one shard's task."""

    shard_id: int
    value: object = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class ScatterGatherExecutor:
    """A reusable thread pool with per-shard timeout semantics."""

    def __init__(self, max_workers: int | None = None,
                 shard_timeout_s: float = 5.0) -> None:
        if shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive")
        self._max_workers = max_workers
        self.shard_timeout_s = shard_timeout_s
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self, task_count: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self._max_workers or min(16, max(1, task_count))
            self._pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="scatter-gather",
            )
        return self._pool

    def scatter(self, tasks: dict) -> dict:
        """Run ``{shard_id: thunk}`` in parallel.

        Returns ``{shard_id: ShardOutcome}``; a thunk that raises or
        exceeds the per-shard timeout yields a failed outcome instead of
        propagating, so one slow or dead shard cannot fail the query.

        Each task runs under a copy of the caller's ``contextvars``
        context, so ambient state — in particular the current telemetry
        span — propagates onto the worker threads and spans opened
        inside a shard task parent under the span that scattered it.
        """
        if not tasks:
            return {}
        pool = self._ensure_pool(len(tasks))
        futures = {
            shard_id: pool.submit(contextvars.copy_context().run, thunk)
            for shard_id, thunk in tasks.items()
        }
        outcomes: dict[int, ShardOutcome] = {}
        for shard_id, future in futures.items():
            try:
                value = future.result(timeout=self.shard_timeout_s)
            except _Timeout:
                outcomes[shard_id] = ShardOutcome(
                    shard_id,
                    error=TimeoutError(
                        f"shard {shard_id} exceeded "
                        f"{self.shard_timeout_s:.1f}s"
                    ),
                )
            except Exception as exc:  # noqa: BLE001 — isolated per shard
                outcomes[shard_id] = ShardOutcome(shard_id, error=exc)
            else:
                outcomes[shard_id] = ShardOutcome(shard_id, value=value)
        return outcomes

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ScatterGatherExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_ranked(shard_lists: dict):
    """Heap-merge per-shard ``[(doc_id, score)]`` lists.

    Each input list must already be ordered by (score desc, doc_id) —
    the order :func:`repro.searchengine.engine.rank_candidates`
    produces. Yields ``(doc_id, score, shard_id)`` in that same global
    order; consume lazily (e.g. ``islice``) for top-k.
    """
    def tag(scored, shard_id):
        for doc_id, score in scored:
            yield doc_id, score, shard_id

    return heapq.merge(
        *(tag(scored, shard_id)
          for shard_id, scored in shard_lists.items()),
        key=lambda entry: (-entry[1], entry[0]),
    )
