"""The clustered search engine: shards × replicas behind one facade.

:class:`ClusteredSearchEngine` exposes the exact
:class:`~repro.searchengine.engine.SearchEngine` query contract —
options, logging, spelling suggestion, facets — over a
document-partitioned, replicated index cluster:

* **Phase 1 (statistics scatter):** every shard contributes its local
  document counts, field lengths, and per-term document frequencies;
  the merged :class:`CorpusStats` make BM25 idf on any shard identical
  to single-node scoring.
* **Phase 2 (execution scatter):** every shard evaluates and ranks its
  own partition in parallel under the global statistics; the gatherer
  heap-merges the sorted shard lists into the global top-k.

Simulated latency is the *max* over shards (plus the fixed overhead)
instead of the single-node sum — the whole point of partitioning.

When every replica of a shard is down (killed, faulted out, or timed
out), the query degrades instead of failing: the response carries the
surviving shards' results with ``degraded=True`` and the failed shard
ids, so applications keep rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice

from repro.searchengine.engine import (
    SearchOptions,
    SearchResponse,
    Vertical,
    apply_options_to_ast,
    simulated_latency_ms,
)
from repro.searchengine.facets import FacetCount, FacetResult
from repro.searchengine.logs import QueryEvent, QueryLog
from repro.searchengine.query import extract_terms, parse_query
from repro.searchengine.spelling import SpellingCorrector
from repro.searchengine.stats import CorpusStats
from repro.telemetry import Telemetry
from repro.util import SimClock

from repro.cluster.executor import ScatterGatherExecutor, merge_ranked
from repro.cluster.replica import ReplicaGroup, ShardReplica
from repro.cluster.sharding import ShardRouter

__all__ = [
    "ClusterConfig",
    "ClusterSearchResponse",
    "ClusteredSearchEngine",
    "build_clustered_engine",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Opt-in cluster shape: shard count, redundancy, dispatch limits."""

    num_shards: int = 4
    replicas_per_shard: int = 1
    max_workers: int | None = None     # default: one thread per shard
    shard_timeout_s: float = 5.0       # shared wall budget per scatter
    failure_threshold: int = 3         # consecutive errors -> replica out

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.replicas_per_shard <= 0:
            raise ValueError("replicas_per_shard must be positive")


@dataclass(frozen=True)
class ClusterSearchResponse(SearchResponse):
    """A :class:`SearchResponse` plus cluster health annotations."""

    degraded: bool = False
    shards_total: int = 0
    shards_ok: int = 0
    failed_shards: tuple = ()
    deadline_overrun: bool = False


class _ClusterIndexView:
    """Read-only union view over one vertical's shard indexes.

    Covers the surface other subsystems touch on ``engine.vertical(v)
    .index`` (membership for relevance signals, document lookup,
    corpus size); it is not a full :class:`InvertedIndex`.
    """

    def __init__(self, engine: "ClusteredSearchEngine",
                 vertical: Vertical) -> None:
        self._engine = engine
        self._vertical = vertical

    def _primary(self, doc_id: str):
        group = self._engine.group_for(doc_id)
        return group.primary().vertical(self._vertical).index

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._primary(doc_id)

    def __len__(self) -> int:
        return sum(
            len(group.primary().vertical(self._vertical).index)
            for group in self._engine.active_groups()
        )

    def document(self, doc_id: str):
        return self._primary(doc_id).document(doc_id)

    def all_doc_ids(self) -> set:
        ids: set = set()
        for group in self._engine.active_groups():
            ids |= group.primary().vertical(
                self._vertical).index.all_doc_ids()
        return ids

    @property
    def analyzer(self):
        return self._engine.reference_vertical(self._vertical).index \
            .analyzer


class _ClusterVerticalView:
    """``engine.vertical(v)`` compatibility shim for cluster engines."""

    def __init__(self, engine: "ClusteredSearchEngine",
                 vertical: Vertical) -> None:
        reference = engine.reference_vertical(vertical)
        self.vertical = vertical
        self.text_fields = list(reference.text_fields)
        self.params = reference.params
        self.authority = engine.authority  # shared across all shards
        self.index = _ClusterIndexView(engine, vertical)

    def __len__(self) -> int:
        return len(self.index)


def _unique_by_doc(merged):
    """Drop repeated doc_ids from an already globally ranked stream."""
    seen: set = set()
    for doc_id, score, shard_id in merged:
        if doc_id in seen:
            continue
        seen.add(doc_id)
        yield doc_id, score, shard_id


def _upsert(replica, vertical, document) -> None:
    """Dual-write add that tolerates the copy stream having arrived first."""
    if document.doc_id not in replica.vertical(vertical).index:
        replica.add(vertical, document)


def _discard(replica, vertical, doc_id: str) -> None:
    """Dual-write remove that tolerates the document not having copied yet."""
    if doc_id in replica.vertical(vertical).index:
        replica.remove(vertical, doc_id)


class ClusteredSearchEngine:
    """Scatter-gather query engine over sharded, replicated indexes."""

    def __init__(self, groups: list, router: ShardRouter,
                 authority: dict | None = None,
                 clock: SimClock | None = None,
                 log: QueryLog | None = None,
                 config: ClusterConfig | None = None,
                 telemetry: Telemetry | None = None,
                 hedge=None) -> None:
        if len(groups) != router.num_shards:
            raise ValueError("one replica group per shard required")
        self.groups = list(groups)
        self.router = router
        self.authority = authority if authority is not None else {}
        self.clock = clock or SimClock()
        self.log = log or QueryLog()
        self.config = config or ClusterConfig(num_shards=len(groups))
        self.telemetry = telemetry or Telemetry.disabled()
        self._tracer = self.telemetry.tracer
        self._metrics = self.telemetry.metrics
        self.hedge_policy = hedge
        for group in self.groups:
            group.tracer = self._tracer
            if self.telemetry.enabled:
                group.events = self.telemetry.events
                group.metrics = self._metrics
            if hedge is not None:
                group.enable_hedging(hedge)
        self.executor = ScatterGatherExecutor(
            max_workers=self.config.max_workers or len(groups),
            shard_timeout_s=self.config.shard_timeout_s,
        )
        # Installed by repro.controlplane during a live migration: maps
        # a doc_id to the extra shard(s) that must also see its writes
        # (dual-write window). None on the clean path.
        self.write_fanout = None
        # Installed by repro.durability: every mutation is appended to
        # the owning shard's write-ahead log (monotonic LSN) before it
        # is applied, so a crashed replica can be caught back up. None
        # keeps the write path log-free.
        self.durability = None
        # Analyzer / field / parameter reference, independent of replica
        # health (identical to what every replica was built with).
        from repro.searchengine.engine import make_vertical_indexes
        self._reference = make_vertical_indexes(self.authority)
        # Bumped on every add/remove; invalidates merged-vocabulary
        # caches (spelling correctors).
        self._corpus_version = 0
        self._correctors: dict = {}   # (vertical, version) -> corrector

    # -- topology ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def topology_version(self) -> int:
        return self.router.topology_version

    def active_groups(self, route=None) -> list:
        """The replica groups the given (default: current) route map
        scatters to. Groups left dormant by a merge are excluded."""
        route = route if route is not None else self.router.snapshot()
        return [self.groups[shard_id] for shard_id in route.shard_ids]

    def group_for(self, doc_id: str) -> ReplicaGroup:
        return self.groups[self.router.shard_of(doc_id)]

    def register_shard(self, group: ReplicaGroup) -> None:
        """Attach a new (initially unrouted) replica group.

        The control plane builds the group, registers it here, streams
        documents into it, and only then flips the route map — queries
        never scatter to a shard that is still filling.
        """
        if group.shard_id != len(self.groups):
            raise ValueError(
                f"new shard id must be {len(self.groups)}, "
                f"got {group.shard_id}"
            )
        group.tracer = self._tracer
        if self.telemetry.enabled:
            group.events = self.telemetry.events
            group.metrics = self._metrics
        if self.hedge_policy is not None:
            group.enable_hedging(self.hedge_policy)
        self.groups.append(group)
        self.executor.resize(len(self.groups))

    def apply_route(self, route_map) -> None:
        """Atomically flip the cluster to a successor route map."""
        self.router.apply(route_map)

    def reference_vertical(self, vertical):
        return self._reference[Vertical(vertical)]

    def vertical(self, vertical) -> _ClusterVerticalView:
        return _ClusterVerticalView(self, Vertical(vertical))

    def doc_count(self, vertical) -> int:
        return sum(group.primary().doc_count(vertical)
                   for group in self.active_groups())

    def shard_doc_count(self, shard_id: int) -> int:
        """Documents held by one shard, across all verticals."""
        replica = self.groups[shard_id].primary()
        return sum(replica.doc_count(vertical)
                   for vertical in replica.verticals)

    def close(self) -> None:
        self.executor.close()

    # -- ops hooks ------------------------------------------------------------

    def kill_replica(self, shard_id: int, replica_index: int) -> None:
        self.groups[shard_id].kill(replica_index)

    def revive_replica(self, shard_id: int, replica_index: int) -> None:
        self.groups[shard_id].revive(replica_index)

    def health(self) -> dict:
        """Per-shard replica health: ``{shard_id: [True/False, ...]}``."""
        return {
            group.shard_id: [r.healthy for r in group.replicas]
            for group in self.groups
        }

    # -- incremental writes (replicated to every replica of the shard) --------

    def _extra_write_shards(self, doc_id: str, primary: int) -> tuple:
        if self.write_fanout is None:
            return ()
        return tuple(shard_id for shard_id in self.write_fanout(doc_id)
                     if shard_id != primary)

    def replicated_write(self, shard_id: int, op: str, vertical,
                         document=None, doc_id: str | None = None,
                         tolerant: bool = False) -> None:
        """Apply one mutation to every intact replica of one shard.

        When a durability layer is attached the mutation is first
        appended to the shard's write-ahead log; each replica that
        applies it advances its ``applied_lsn`` to the record's LSN, so
        a crashed replica's recovery knows exactly which log tail it
        missed. ``tolerant`` writes (resharding dual-writes and handoff
        batches) upsert/discard instead of raising on duplicates or
        absences, since the copy stream may race them.
        """
        lsn = 0
        if self.durability is not None:
            lsn = self.durability.append(
                shard_id, op, vertical, document=document, doc_id=doc_id
            ).lsn
        if op == "add":
            def mutate(replica):
                if tolerant:
                    _upsert(replica, vertical, document)
                else:
                    replica.add(vertical, document)
        elif op == "remove":
            def mutate(replica):
                if tolerant:
                    _discard(replica, vertical, doc_id)
                else:
                    replica.remove(vertical, doc_id)
        else:
            raise ValueError(f"unknown write op {op!r}")

        def write(replica):
            mutate(replica)
            if lsn:
                replica.applied_lsn = lsn
        self.groups[shard_id].broadcast(write)
        if self.durability is not None:
            self.durability.after_write(shard_id)

    def add_document(self, vertical, document) -> int:
        """Route and index one document; returns the owning shard id.

        During a live migration the control plane fans the write out to
        the other side of the handoff as well (idempotently, since the
        copy stream may already have delivered the document there).
        """
        shard_id = self.router.shard_of(document.doc_id)
        self.replicated_write(shard_id, "add", vertical,
                              document=document)
        for extra in self._extra_write_shards(document.doc_id, shard_id):
            self.replicated_write(extra, "add", vertical,
                                  document=document, tolerant=True)
        self._corpus_version += 1
        return shard_id

    def remove_document(self, vertical, doc_id: str) -> int:
        shard_id = self.router.shard_of(doc_id)
        self.replicated_write(shard_id, "remove", vertical,
                              doc_id=doc_id)
        for extra in self._extra_write_shards(doc_id, shard_id):
            self.replicated_write(extra, "remove", vertical,
                                  doc_id=doc_id, tolerant=True)
        self._corpus_version += 1
        return shard_id

    # -- the SearchEngine contract --------------------------------------------

    def _shard_task(self, group, phase: str, fn, annotated: bool = False):
        """Wrap ``group.run(fn)`` in a per-shard span.

        The span opens on the worker thread, under the context the
        executor copied at scatter time, so it parents beneath the
        phase span. Names are unique per shard (``exec:shard-3``) —
        the tracer's content-derived ids stay deterministic however
        the OS interleaves the workers.

        With ``annotated=True`` the task returns the group's
        ``(result, meta)`` pair, carrying per-attempt latency and
        hedging outcomes for the gather phase's cost accounting.
        """
        tracer = self._tracer
        runner = group.run_annotated if annotated else group.run
        if not tracer.enabled:
            return lambda: runner(fn)
        label = f"{phase}:shard-{group.shard_id}"

        def task():
            with tracer.span(label):
                return runner(fn)
        return task

    #: The runtime checks this before passing ``deadline=`` — the
    #: single-node :class:`SearchEngine` keeps its original signature.
    accepts_deadline = True

    def search(self, vertical, query_text: str,
               options: SearchOptions | None = None,
               app_id: str | None = None,
               session_id: str | None = None,
               deadline=None) -> ClusterSearchResponse:
        """Scatter ``query_text`` across shards and gather global top-k."""
        with self._tracer.span("cluster.search") as root:
            if root:
                root.set("query", query_text)
                root.set("vertical", Vertical(vertical).value)
            return self._search_traced(
                vertical, query_text, options, app_id, session_id,
                root, deadline,
            )

    def _search_traced(self, vertical, query_text: str, options,
                       app_id, session_id, root,
                       deadline=None) -> ClusterSearchResponse:
        options = options or SearchOptions()
        vkey = Vertical(vertical)
        reference = self.reference_vertical(vkey)
        node = parse_query(query_text)
        node = apply_options_to_ast(node, options)
        terms = extract_terms(node, reference.index.analyzer)
        now_ms = self.clock.now_ms
        failed: set[int] = set()
        # Pin one topology for the whole query: both scatter phases and
        # the gather see the same route map even if the control plane
        # flips it mid-flight, so a query can never mix shard layouts.
        route = self.router.snapshot()
        groups = self.active_groups(route)
        if root:
            root.set("topology_version", route.version)

        def wall_budget():
            return (deadline.remaining_wall_s()
                    if deadline is not None else None)

        # Phase 1: gather global statistics (skipped for pure-filter
        # queries, which BM25 never scores).
        if terms:
            with self._tracer.span("phase:stats"):
                outcomes = self.executor.scatter({
                    group.shard_id: self._shard_task(
                        group, "stats",
                        lambda r: r.collect_stats(vkey, terms),
                    )
                    for group in groups
                }, wall_budget_s=wall_budget())
            failed |= {sid for sid, out in outcomes.items()
                       if not out.ok}
            stats = CorpusStats.merge(
                out.value for out in outcomes.values() if out.ok
            )
        else:
            stats = CorpusStats.empty()

        # Phase 2: parallel per-shard evaluate + rank under the global
        # statistics; remember which replica served each shard so the
        # gather phase can materialize results from it. Skipped
        # entirely when the query's deadline already ran out — the
        # response degrades to whatever is free (nothing) rather than
        # starting work it cannot afford.
        served: dict[int, ShardReplica] = {}
        overrun = deadline is not None and deadline.expired

        def run_shard(replica):
            scored, count = replica.execute(
                vkey, node, options, terms, stats, now_ms
            )
            return replica, scored, count

        outcomes = {}
        if not overrun:
            with self._tracer.span("phase:execute"):
                outcomes = self.executor.scatter({
                    group.shard_id: self._shard_task(
                        group, "exec", run_shard, annotated=True)
                    for group in groups
                    if group.shard_id not in failed
                }, wall_budget_s=wall_budget())
        shard_lists: dict[int, list] = {}
        candidate_counts: dict[int, int] = {}
        extra_latency: dict[int, float] = {}
        hedges = wins = 0
        for sid, outcome in outcomes.items():
            if not outcome.ok:
                failed.add(sid)
                continue
            (replica, scored, count), meta = outcome.value
            served[sid] = replica
            shard_lists[sid] = scored
            candidate_counts[sid] = count
            extra_latency[sid] = meta.get("latency_ms", 0.0)
            if meta.get("hedged"):
                hedges += 1
                wins += meta.get("hedge") == "win"

        if self._metrics.enabled:
            latency = self._metrics.histogram("shard_latency_ms")
            for sid in sorted(candidate_counts):
                cost = (simulated_latency_ms(candidate_counts[sid])
                        + extra_latency[sid])
                latency.observe(cost)
                # Per-shard series feed the control plane's autoscaler.
                self._metrics.histogram(
                    "shard_latency_ms", shard=str(sid)
                ).observe(cost)
            if failed:
                self._metrics.counter("shard_failures_total").inc(
                    len(failed)
                )
                for sid in failed:
                    self._metrics.counter(
                        "shard_failures_total", shard=str(sid)
                    ).inc()
            if hedges:
                self._metrics.counter("hedges_total").inc(hedges)
            if wins:
                self._metrics.counter("hedge_wins_total").inc(wins)

        # Gather: parallel shards cost max-over-shards, not the sum.
        # Each shard's cost is its ranking latency plus any replica
        # attempt latency (injected spikes, bounded by hedging).
        if candidate_counts:
            costs = {
                sid: (simulated_latency_ms(candidate_counts[sid])
                      + extra_latency[sid])
                for sid in candidate_counts
            }
            # The slowest shard gates the whole scatter-gather, so the
            # wall the clock pays here is *its* cost — record it under a
            # span naming that shard so latency attribution (repro.slo)
            # can blame the right place. Deterministic tie-break on id.
            slowest = min(costs, key=lambda sid: (-costs[sid], sid))
            elapsed = costs[slowest]
            with self._tracer.span(f"gather:shard-{slowest}") as gspan:
                if gspan:
                    gspan.set("cost_ms", round(elapsed, 3))
                self.clock.advance(elapsed)
        else:
            self.clock.advance(simulated_latency_ms(0))
        if deadline is not None and deadline.expired:
            overrun = True

        # Dedup on gather: during a migration's dual-read window a
        # moving document legitimately exists on both sides of the
        # handoff; the first (highest-ranked) copy wins. Only while that
        # window is open (fanout installed) does the total need a full
        # deduplicated count — the clean path keeps the lazy heap merge.
        if self.write_fanout is not None:
            unique = list(_unique_by_doc(merge_ranked(shard_lists)))
            total_matches = len(unique)
            window = unique[options.offset:
                            options.offset + options.count]
        else:
            total_matches = sum(len(lst)
                                for lst in shard_lists.values())
            window = list(islice(
                _unique_by_doc(merge_ranked(shard_lists)),
                options.offset, options.offset + options.count,
            ))
        results = tuple(
            served[shard_id].materialize(vkey, doc_id, score, terms)
            for doc_id, score, shard_id in window
        )
        suggestion = None
        if total_matches == 0 and terms and not failed and not overrun:
            suggestion = self._suggest(vkey, terms)
        degraded = bool(failed) or overrun
        if degraded:
            if root:
                root.set("degraded", True)
                root.set("failed_shards", sorted(failed))
                if overrun:
                    root.set("deadline_overrun", True)
            self._metrics.counter("degraded_queries_total").inc()
            self.telemetry.events.emit(
                "cluster.degraded", query=query_text,
                failed_shards=sorted(failed),
                deadline_overrun=overrun,
            )
        response = ClusterSearchResponse(
            query=query_text,
            vertical=vkey.value,
            results=results,
            total_matches=total_matches,
            elapsed_ms=elapsed,
            suggestion=suggestion,
            degraded=degraded,
            shards_total=len(groups),
            shards_ok=len(groups) - len(failed),
            failed_shards=tuple(sorted(failed)),
            deadline_overrun=overrun,
        )
        self.log.log_query(QueryEvent(
            timestamp_ms=self.clock.now_ms,
            query=query_text,
            vertical=response.vertical,
            app_id=app_id,
            session_id=session_id,
            result_urls=tuple(response.urls()),
        ))
        return response

    def facets(self, vertical, query_text: str,
               facet_fields=("site", "topic")) -> dict:
        """Facets over the union candidate set (degraded shards skipped)."""
        vkey = Vertical(vertical)
        self.clock.advance(simulated_latency_ms(0))
        with self._tracer.span("cluster.facets"):
            outcomes = self.executor.scatter({
                group.shard_id: self._shard_task(
                    group, "facets",
                    lambda r: r.compute_facets(vkey, query_text,
                                               facet_fields),
                )
                for group in self.active_groups()
            })
        merged: dict[str, dict[str, int]] = {
            name: {} for name in facet_fields
        }
        for outcome in outcomes.values():
            if not outcome.ok:
                continue
            for name, buckets in outcome.value.items():
                target = merged[name]
                for value, count in buckets.items():
                    target[value] = target.get(value, 0) + count
        return {
            name: FacetResult(name, tuple(
                FacetCount(value, count)
                for value, count in sorted(
                    buckets.items(), key=lambda pair: (-pair[1], pair[0])
                )
            ))
            for name, buckets in merged.items()
        }

    # -- internals ------------------------------------------------------------

    def _suggest(self, vkey: Vertical, terms) -> str | None:
        """'Did you mean' over the merged cross-shard vocabulary."""
        cache_key = (vkey, self._corpus_version)
        corrector = self._correctors.get(cache_key)
        if corrector is None:
            frequencies: dict[str, int] = {}
            for group in self.active_groups():
                replica = (group.healthy_replicas()
                           or [group.primary()])[0]
                for term, count in replica.term_frequencies(
                        vkey).items():
                    frequencies[term] = (
                        frequencies.get(term, 0) + count
                    )
            corrector = SpellingCorrector(frequencies=frequencies)
            self._correctors = {cache_key: corrector}
        corrected = corrector.suggest_query(terms)
        if corrected is None:
            return None
        return " ".join(corrected)


def build_clustered_engine(web, config: ClusterConfig | None = None,
                           clock: SimClock | None = None,
                           use_authority: bool = True,
                           log: QueryLog | None = None,
                           telemetry: Telemetry | None = None,
                           hedge=None) -> ClusteredSearchEngine:
    """Index a synthetic web into a ready-to-query cluster.

    Authority (PageRank) is computed once over the full link graph and
    shared by every replica, exactly as the single-node engine blends
    it, so clustered and single-node rankings agree.
    """
    from repro.searchengine.engine import (
        compute_authority,
        iter_corpus_documents,
        make_vertical_indexes,
    )
    config = config or ClusterConfig()
    authority = compute_authority(web) if use_authority else {}
    router = ShardRouter(config.num_shards)
    groups = [
        ReplicaGroup(
            shard_id,
            [ShardReplica(shard_id, index,
                          make_vertical_indexes(authority))
             for index in range(config.replicas_per_shard)],
            failure_threshold=config.failure_threshold,
        )
        for shard_id in range(config.num_shards)
    ]
    engine = ClusteredSearchEngine(
        groups, router, authority=authority, clock=clock, log=log,
        config=config, telemetry=telemetry, hedge=hedge,
    )
    for vertical, document in iter_corpus_documents(web):
        shard_id = router.shard_of(document.doc_id)
        groups[shard_id].broadcast(
            lambda replica, v=vertical, d=document: replica.add(v, d)
        )
    return engine
