"""Shard replicas: redundant copies of one document partition.

A :class:`ShardReplica` holds a full set of vertical indexes over its
shard's documents and executes the same per-index search core as the
single-node engine. A :class:`ReplicaGroup` fronts the N replicas of one
shard with health tracking, fault-injection hooks, and automatic
failover: a request rotates across healthy replicas and falls through to
the next one when a replica errors; a replica that keeps failing is
taken out of rotation.

Writes (add/remove) always go to *every* replica, including killed
ones, so a revived replica is immediately consistent — ``kill`` models a
node that stops serving reads, not one that loses its data.
"""

from __future__ import annotations

import itertools
import threading

from repro.errors import (
    ReplicaFaultError,
    ReproError,
    ShardUnavailableError,
)
from repro.searchengine.engine import (
    Vertical,
    evaluate_candidates,
    materialize_result,
    rank_candidates,
)
from repro.searchengine.ranking import BM25Scorer
from repro.searchengine.spelling import collect_term_frequencies
from repro.searchengine.stats import CorpusStats, StatsOverlayIndex
from repro.telemetry.trace import NULL_TRACER

__all__ = ["ShardReplica", "ReplicaGroup"]


class ShardReplica:
    """One replica of one shard: per-vertical indexes plus health state."""

    def __init__(self, shard_id: int, replica_index: int,
                 verticals: dict) -> None:
        self.shard_id = shard_id
        self.replica_index = replica_index
        self.replica_id = f"shard-{shard_id}/replica-{replica_index}"
        self.verticals = verticals
        self.healthy = True
        self._pending_faults: list[Exception] = []
        self._fault_lock = threading.Lock()

    # -- health & fault injection -------------------------------------------

    def kill(self) -> None:
        """Take the replica out of read rotation (ops hook / tests)."""
        self.healthy = False

    def revive(self) -> None:
        self.healthy = True

    def inject_fault(self, count: int = 1,
                     exc: Exception | None = None) -> None:
        """Arrange for the next ``count`` reads on this replica to raise."""
        with self._fault_lock:
            for __ in range(count):
                self._pending_faults.append(
                    exc or ReplicaFaultError(
                        f"injected fault on {self.replica_id}"
                    )
                )

    def _check_fault(self) -> None:
        with self._fault_lock:
            if self._pending_faults:
                raise self._pending_faults.pop(0)

    # -- data plane -----------------------------------------------------------

    def vertical(self, vertical) -> object:
        return self.verticals[Vertical(vertical)]

    def add(self, vertical, document) -> None:
        self.vertical(vertical).index.add(document)

    def remove(self, vertical, doc_id: str) -> None:
        self.vertical(vertical).index.remove(doc_id)

    def doc_count(self, vertical) -> int:
        return len(self.vertical(vertical).index)

    # -- query plane (runs on scatter-gather worker threads) ------------------

    def collect_stats(self, vertical, terms) -> CorpusStats:
        """Phase 1: this shard's contribution to the global statistics."""
        self._check_fault()
        vindex = self.vertical(vertical)
        return CorpusStats.collect(vindex.index, vindex.text_fields,
                                   terms)

    def execute(self, vertical, node, options, terms,
                stats: CorpusStats, now_ms: int) -> tuple:
        """Phase 2: evaluate + rank this shard under global statistics.

        Returns ``(scored, candidate_count)`` where ``scored`` is the
        shard's full ``(doc_id, score)`` list ordered by score desc then
        id — ready for the gatherer's heap merge.
        """
        self._check_fault()
        vindex = self.vertical(vertical)
        candidates = evaluate_candidates(vindex, node, options, now_ms)
        scorer = BM25Scorer(StatsOverlayIndex(vindex.index, stats),
                            vindex.text_fields, vindex.params)
        scored = rank_candidates(vindex, candidates, terms, scorer,
                                 now_ms)
        return scored, len(candidates)

    def materialize(self, vertical, doc_id: str, score: float, terms):
        return materialize_result(self.vertical(vertical), doc_id,
                                  score, terms)

    def compute_facets(self, vertical, query_text: str,
                       facet_fields) -> dict:
        """Per-shard facet buckets: ``{field: {value: count}}``."""
        from repro.searchengine.facets import compute_facets
        self._check_fault()
        vindex = self.vertical(vertical)
        results = compute_facets(vindex.index, vindex.text_fields,
                                 query_text, facet_fields)
        return {name: result.as_dict()
                for name, result in results.items()}

    def term_frequencies(self, vertical) -> dict:
        """This shard's vocabulary frequencies, for merged spelling."""
        vindex = self.vertical(vertical)
        return collect_term_frequencies(vindex.index,
                                        vindex.text_fields)


class ReplicaGroup:
    """The replicas of one shard, with failover and health tracking."""

    def __init__(self, shard_id: int, replicas: list,
                 failure_threshold: int = 3) -> None:
        if not replicas:
            raise ValueError("a replica group needs at least one replica")
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        self.shard_id = shard_id
        self.replicas = list(replicas)
        self.failure_threshold = failure_threshold
        # Telemetry hooks, installed by the owning cluster engine. The
        # tracer parents attempt spans under whatever span scattered
        # the request onto this group's worker thread.
        self.tracer = NULL_TRACER
        self.events = None
        self._rotation = itertools.count()
        self._consecutive_failures = [0] * len(self.replicas)
        self._lock = threading.Lock()

    # -- ops hooks ------------------------------------------------------------

    def kill(self, replica_index: int) -> None:
        self.replicas[replica_index].kill()

    def revive(self, replica_index: int) -> None:
        self.replicas[replica_index].revive()
        with self._lock:
            self._consecutive_failures[replica_index] = 0

    def healthy_replicas(self) -> list:
        return [r for r in self.replicas if r.healthy]

    @property
    def all_down(self) -> bool:
        return not self.healthy_replicas()

    # -- write path: replicate everywhere -------------------------------------

    def broadcast(self, fn) -> None:
        """Apply a write to every replica (killed ones included)."""
        for replica in self.replicas:
            fn(replica)

    # -- read path: rotate + fail over ----------------------------------------

    def run(self, fn):
        """Run ``fn(replica)`` on a healthy replica, failing over.

        Starts at a rotating offset for load spread, skips unhealthy
        replicas, and on a :class:`ReproError` records the failure
        (``failure_threshold`` consecutive errors remove the replica
        from rotation) and tries the next one. Raises
        :class:`ShardUnavailableError` when every replica is down or
        errored.
        """
        start = next(self._rotation)
        errors: list[str] = []
        for offset in range(len(self.replicas)):
            index = (start + offset) % len(self.replicas)
            replica = self.replicas[index]
            if not replica.healthy:
                errors.append(f"{replica.replica_id}: down")
                continue
            with self.tracer.span(
                    f"attempt:{replica.replica_id}") as span:
                try:
                    result = fn(replica)
                except ReproError as exc:
                    errors.append(f"{replica.replica_id}: {exc}")
                    if span:
                        span.status = "error"
                        span.set("error", str(exc))
                    removed = False
                    with self._lock:
                        self._consecutive_failures[index] += 1
                        if (self._consecutive_failures[index]
                                >= self.failure_threshold):
                            replica.kill()
                            removed = True
                    if self.events is not None:
                        self.events.emit(
                            "replica.failover",
                            shard=self.shard_id,
                            replica=replica.replica_id,
                            error=str(exc),
                            removed_from_rotation=removed,
                        )
                    continue
                with self._lock:
                    self._consecutive_failures[index] = 0
                return result
        if self.events is not None:
            self.events.emit("shard.unavailable", shard=self.shard_id,
                             attempts=len(errors))
        raise ShardUnavailableError(
            f"shard {self.shard_id} unavailable: " + "; ".join(errors)
        )
