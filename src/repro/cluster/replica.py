"""Shard replicas: redundant copies of one document partition.

A :class:`ShardReplica` holds a full set of vertical indexes over its
shard's documents and executes the same per-index search core as the
single-node engine. A :class:`ReplicaGroup` fronts the N replicas of one
shard with health tracking, fault-injection hooks, and automatic
failover: a request rotates across healthy replicas and falls through to
the next one when a replica errors; a replica that keeps failing is
taken out of rotation.

Writes (add/remove) go to every replica *with intact index state*,
including killed ones, so a revived replica is immediately consistent —
``kill`` models a node that stops serving reads, not one that loses its
data. ``crash`` models the real failure: the replica's in-memory
indexes are wiped, subsequent writes are genuinely missed (counted as
``replica_writes_missed_total``), and the replica can only rejoin after
:mod:`repro.durability` has caught it up from checkpoint + WAL replay
— a recovering replica is never served from.
"""

from __future__ import annotations

import itertools
import threading

from repro.errors import (
    ReplicaFaultError,
    ReproError,
    ShardUnavailableError,
)
from repro.searchengine.engine import (
    Vertical,
    evaluate_candidates,
    materialize_result,
    rank_candidates,
)
from repro.searchengine.ranking import BM25Scorer
from repro.searchengine.spelling import collect_term_frequencies
from repro.searchengine.stats import CorpusStats, StatsOverlayIndex
from repro.telemetry.trace import NULL_TRACER

__all__ = ["ShardReplica", "ReplicaGroup"]


class ShardReplica:
    """One replica of one shard: per-vertical indexes plus health state."""

    def __init__(self, shard_id: int, replica_index: int,
                 verticals: dict) -> None:
        self.shard_id = shard_id
        self.replica_index = replica_index
        self.replica_id = f"shard-{shard_id}/replica-{replica_index}"
        self.verticals = verticals
        self.healthy = True
        # Durability state (see repro.durability): a crashed replica has
        # lost its indexes and must be repaired before rejoining.
        self.crashed = False
        self.recovering = False
        self.applied_lsn = 0        # highest WAL record applied here
        self.writes_missed = 0      # broadcasts skipped while crashed
        self.reads_served = 0       # read attempts that reached us
        self._pending_faults: list[Exception] = []
        self._pending_delays: list[float] = []
        self._fault_lock = threading.Lock()

    # -- health & fault injection -------------------------------------------

    def kill(self) -> None:
        """Take the replica out of read rotation (ops hook / tests).

        Chaos injections armed for this replica are disarmed: a pending
        fault or delay describes a request the dead node will never see,
        and must not fire on whoever serves after a later revive.
        """
        self.healthy = False
        self.clear_injections()

    def revive(self) -> None:
        """Return to read rotation — unless the index state is gone.

        A *crashed* replica stays out of rotation: it holds nothing and
        must go through :class:`repro.durability.RecoveryManager` (which
        calls :meth:`rejoin` after checkpoint + WAL replay converge).
        """
        self.clear_injections()
        if self.crashed:
            return
        self.healthy = True

    def clear_injections(self) -> None:
        """Drop any still-armed injected faults and delays."""
        with self._fault_lock:
            self._pending_faults.clear()
            self._pending_delays.clear()

    # -- durability state machine (driven by repro.durability) ---------------

    def crash(self) -> None:
        """Lose the node: wipe every vertical index and leave rotation.

        Unlike :meth:`kill`, writes broadcast while crashed are *not*
        applied — the replica genuinely misses them and must be caught
        up from a checkpoint plus the shard's write-ahead log.
        """
        from repro.searchengine.engine import make_vertical_indexes
        authority = next(
            (v.authority for v in self.verticals.values() if v.authority),
            {},
        )
        self.verticals = make_vertical_indexes(authority)
        self.healthy = False
        self.crashed = True
        self.recovering = False
        self.applied_lsn = 0
        self.clear_injections()

    def begin_recovery(self) -> None:
        """Enter repair: still crashed, still unserved, being rebuilt."""
        self.recovering = True

    def rejoin(self) -> None:
        """Repair done — converged state rejoins read rotation."""
        self.crashed = False
        self.recovering = False
        self.healthy = True

    def inject_fault(self, count: int = 1,
                     exc: Exception | None = None) -> None:
        """Arrange for the next ``count`` reads on this replica to raise."""
        with self._fault_lock:
            for __ in range(count):
                self._pending_faults.append(
                    exc or ReplicaFaultError(
                        f"injected fault on {self.replica_id}"
                    )
                )

    def _check_fault(self) -> None:
        with self._fault_lock:
            if self._pending_faults:
                raise self._pending_faults.pop(0)

    def inject_latency(self, delay_ms: float, count: int = 1) -> None:
        """Make the next ``count`` reads appear ``delay_ms`` slow.

        The delay is simulated — consumed by the owning
        :class:`ReplicaGroup` for latency accounting and hedging
        decisions, never slept.
        """
        if delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        with self._fault_lock:
            self._pending_delays.extend([float(delay_ms)] * count)

    def take_latency_ms(self) -> float:
        """Consume the next injected read delay (0 when none pending)."""
        with self._fault_lock:
            if self._pending_delays:
                return self._pending_delays.pop(0)
            return 0.0

    # -- data plane -----------------------------------------------------------

    def vertical(self, vertical) -> object:
        return self.verticals[Vertical(vertical)]

    def add(self, vertical, document) -> None:
        self.vertical(vertical).index.add(document)

    def remove(self, vertical, doc_id: str) -> None:
        self.vertical(vertical).index.remove(doc_id)

    def doc_count(self, vertical) -> int:
        return len(self.vertical(vertical).index)

    # -- query plane (runs on scatter-gather worker threads) ------------------

    def collect_stats(self, vertical, terms) -> CorpusStats:
        """Phase 1: this shard's contribution to the global statistics."""
        self.reads_served += 1
        self._check_fault()
        vindex = self.vertical(vertical)
        return CorpusStats.collect(vindex.index, vindex.text_fields,
                                   terms)

    def execute(self, vertical, node, options, terms,
                stats: CorpusStats, now_ms: int) -> tuple:
        """Phase 2: evaluate + rank this shard under global statistics.

        Returns ``(scored, candidate_count)`` where ``scored`` is the
        shard's full ``(doc_id, score)`` list ordered by score desc then
        id — ready for the gatherer's heap merge.
        """
        self.reads_served += 1
        self._check_fault()
        vindex = self.vertical(vertical)
        candidates = evaluate_candidates(vindex, node, options, now_ms)
        scorer = BM25Scorer(StatsOverlayIndex(vindex.index, stats),
                            vindex.text_fields, vindex.params)
        scored = rank_candidates(vindex, candidates, terms, scorer,
                                 now_ms)
        return scored, len(candidates)

    def materialize(self, vertical, doc_id: str, score: float, terms):
        return materialize_result(self.vertical(vertical), doc_id,
                                  score, terms)

    def compute_facets(self, vertical, query_text: str,
                       facet_fields) -> dict:
        """Per-shard facet buckets: ``{field: {value: count}}``."""
        from repro.searchengine.facets import compute_facets
        self.reads_served += 1
        self._check_fault()
        vindex = self.vertical(vertical)
        results = compute_facets(vindex.index, vindex.text_fields,
                                 query_text, facet_fields)
        return {name: result.as_dict()
                for name, result in results.items()}

    def term_frequencies(self, vertical) -> dict:
        """This shard's vocabulary frequencies, for merged spelling."""
        vindex = self.vertical(vertical)
        return collect_term_frequencies(vindex.index,
                                        vindex.text_fields)


class ReplicaGroup:
    """The replicas of one shard, with failover and health tracking."""

    def __init__(self, shard_id: int, replicas: list,
                 failure_threshold: int = 3) -> None:
        if not replicas:
            raise ValueError("a replica group needs at least one replica")
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        self.shard_id = shard_id
        self.replicas = list(replicas)
        self.failure_threshold = failure_threshold
        # Telemetry hooks, installed by the owning cluster engine. The
        # tracer parents attempt spans under whatever span scattered
        # the request onto this group's worker thread.
        self.tracer = NULL_TRACER
        self.events = None
        self.metrics = None
        # Hedging, installed via enable_hedging by the cluster engine.
        self.hedge_policy = None
        self.latency_histogram = None
        self._rotation = itertools.count()
        self._consecutive_failures = [0] * len(self.replicas)
        self._lock = threading.Lock()

    # -- membership (driven by repro.controlplane) ----------------------------

    def add_replica(self, replica) -> None:
        """Add a fully built replica to the read rotation."""
        with self._lock:
            self.replicas.append(replica)
            self._consecutive_failures.append(0)
        self._reset_latency_learning()

    def remove_replica(self, replica_index: int):
        """Drop one replica from the group; returns it."""
        with self._lock:
            if len(self.replicas) <= 1:
                raise ValueError(
                    "cannot remove the last replica of a shard"
                )
            replica = self.replicas.pop(replica_index)
            self._consecutive_failures.pop(replica_index)
        self._reset_latency_learning()
        return replica

    def _reset_latency_learning(self) -> None:
        """Re-learn hedge latencies after a membership change.

        The learned attempt-latency distribution describes the *old*
        replica set; keeping it would let a departed slow replica (or a
        fresh replica's cold start) poison the hedge threshold, so the
        histogram restarts and the policy falls back to its fixed
        threshold until enough new observations accumulate.
        """
        if self.latency_histogram is not None:
            from repro.telemetry.metrics import Histogram
            self.latency_histogram = Histogram(
                "replica_attempt_ms",
                labels=(("shard", str(self.shard_id)),),
            )

    # -- ops hooks ------------------------------------------------------------

    def kill(self, replica_index: int) -> None:
        self.replicas[replica_index].kill()

    def revive(self, replica_index: int) -> None:
        """Bring one replica back into rotation (no-op while crashed).

        Besides the health flag, revival resets the failure streak *and*
        the hedge-latency learning: the attempt-latency distribution was
        learned while this replica was degraded or absent, and a hedge
        threshold inflated by its bad period would otherwise persist
        long after it recovered.
        """
        self.replicas[replica_index].revive()
        with self._lock:
            self._consecutive_failures[replica_index] = 0
        self._reset_latency_learning()

    def healthy_replicas(self) -> list:
        return [r for r in self.replicas if r.healthy]

    def primary(self):
        """The first replica with intact index state.

        Crashed replicas hold nothing, so copy streams, doc counts, and
        read-only views must come from an intact one (killed-but-intact
        replicas still apply every write, so they qualify). Falls back
        to replica 0 when the whole group has crashed.
        """
        for replica in self.replicas:
            if not replica.crashed:
                return replica
        return self.replicas[0]

    @property
    def all_down(self) -> bool:
        return not self.healthy_replicas()

    # -- write path: replicate everywhere -------------------------------------

    def broadcast(self, fn) -> None:
        """Apply a write to every replica with intact state.

        Killed replicas still receive writes (their indexes are intact —
        ``kill`` only stops reads), but *crashed* replicas genuinely
        miss them: the write is counted against the replica and must be
        recovered from the shard's write-ahead log before it rejoins.
        """
        for replica in self.replicas:
            if replica.crashed:
                replica.writes_missed += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "replica_writes_missed_total",
                        shard=str(self.shard_id),
                        replica=replica.replica_id,
                    ).inc()
                continue
            fn(replica)

    # -- read path: rotate + fail over + hedge --------------------------------

    def enable_hedging(self, policy) -> None:
        """Install hedged reads (called by the owning cluster engine).

        The group keeps its own attempt-latency histogram so the hedge
        threshold adapts to the latencies this shard has actually
        observed, independent of whether full telemetry is enabled.
        """
        from repro.telemetry.metrics import Histogram
        self.hedge_policy = policy
        if self.latency_histogram is None:
            self.latency_histogram = Histogram(
                "replica_attempt_ms",
                labels=(("shard", str(self.shard_id)),),
            )

    def _emit(self, kind: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(kind, shard=self.shard_id, **fields)

    def _attempt(self, fn, index: int, replica, errors: list):
        """One read attempt on ``replica``; ``(ok, result, latency_ms)``.

        Consumes the replica's injected latency, feeds the attempt
        histogram, and does the failure accounting (consecutive errors
        remove the replica from rotation).
        """
        with self.tracer.span(f"attempt:{replica.replica_id}") as span:
            latency_ms = replica.take_latency_ms()
            if span and latency_ms:
                span.set("injected_latency_ms", latency_ms)
            try:
                result = fn(replica)
            except ReproError as exc:
                errors.append(f"{replica.replica_id}: {exc}")
                if span:
                    span.status = "error"
                    span.set("error", str(exc))
                removed = False
                with self._lock:
                    self._consecutive_failures[index] += 1
                    if (self._consecutive_failures[index]
                            >= self.failure_threshold):
                        replica.kill()
                        removed = True
                self._emit(
                    "replica.failover",
                    replica=replica.replica_id,
                    error=str(exc),
                    removed_from_rotation=removed,
                )
                return False, None, latency_ms
            with self._lock:
                self._consecutive_failures[index] = 0
            if self.latency_histogram is not None:
                self.latency_histogram.observe(latency_ms)
            return True, result, latency_ms

    def run(self, fn):
        """Run ``fn(replica)`` on a healthy replica, failing over.

        Starts at a rotating offset for load spread, skips unhealthy
        replicas, and on a :class:`ReproError` records the failure
        (``failure_threshold`` consecutive errors remove the replica
        from rotation) and tries the next one. Raises
        :class:`ShardUnavailableError` when every replica is down or
        errored.
        """
        result, _meta = self.run_annotated(fn)
        return result

    def run_annotated(self, fn):
        """Like :meth:`run`, returning ``(result, meta)`` with hedging.

        ``meta`` carries ``replica``, ``attempts``, ``latency_ms`` (the
        simulated latency the caller should charge for this read) and
        ``hedged``/``hedge`` markers.  When a hedge policy is installed
        and the serving attempt came back slower than the policy's
        threshold, a backup attempt fires on the next healthy replica;
        the model is that both attempts race from the moment the hedge
        launched (at ``threshold`` ms), so the effective latency is
        ``min(primary, threshold + backup)`` and the backup's result is
        served only when it would genuinely have finished first.
        """
        start = next(self._rotation)
        errors: list[str] = []
        order = [(start + offset) % len(self.replicas)
                 for offset in range(len(self.replicas))]
        attempts = 0
        for pos, index in enumerate(order):
            replica = self.replicas[index]
            if not replica.healthy:
                errors.append(f"{replica.replica_id}: down")
                continue
            attempts += 1
            ok, result, latency_ms = self._attempt(fn, index, replica,
                                                   errors)
            if not ok:
                continue
            meta = {"replica": replica.replica_id, "attempts": attempts,
                    "latency_ms": latency_ms, "hedged": False}
            policy = self.hedge_policy
            if policy is not None:
                threshold = policy.threshold_ms(self.latency_histogram)
                if latency_ms > threshold:
                    hedged = self._hedge(fn, order[pos + 1:], threshold,
                                         latency_ms, attempts, errors)
                    if hedged is not None:
                        return hedged
                    meta["hedged"] = True
                    meta["hedge"] = "lose"
                    meta["attempts"] = attempts + 1
            return result, meta
        self._emit("shard.unavailable", attempts=len(errors))
        raise ShardUnavailableError(
            f"shard {self.shard_id} unavailable: " + "; ".join(errors)
        )

    def _hedge(self, fn, rest: list, threshold: float,
               primary_latency: float, attempts: int, errors: list):
        """Fire the backup attempt; ``(result, meta)`` on a hedge win.

        Returns ``None`` when no healthy backup exists, the backup
        failed, or the backup would not have beaten the primary (a
        hedge *lose* — the primary's result stands).
        """
        backup_index = next(
            (i for i in rest if self.replicas[i].healthy), None)
        if backup_index is None:
            return None
        backup = self.replicas[backup_index]
        self._emit("hedge.launched", backup=backup.replica_id,
                   primary_latency_ms=primary_latency,
                   threshold_ms=threshold)
        ok, result, backup_latency = self._attempt(
            fn, backup_index, backup, errors)
        hedge_latency = threshold + backup_latency
        if ok and hedge_latency < primary_latency:
            self._emit("hedge.win", backup=backup.replica_id,
                       latency_ms=hedge_latency,
                       saved_ms=primary_latency - hedge_latency)
            return result, {"replica": backup.replica_id,
                            "attempts": attempts + 1,
                            "latency_ms": hedge_latency,
                            "hedged": True, "hedge": "win"}
        self._emit("hedge.lose", backup=backup.replica_id,
                   backup_ok=ok, backup_latency_ms=backup_latency)
        return None
