"""Document-partitioned shard routing over a versioned range map.

Every document lives on exactly one shard, chosen by a process-stable
hash of its id, so routing replays identically across runs, processes,
and cluster restarts. All replicas of a shard hold the same partition.

Routing is *range-based*: the 63-bit stable-hash space is covered by
contiguous, non-overlapping ranges, each owned by one shard. A
:class:`RouteMap` is an immutable snapshot of that assignment with a
monotonically increasing ``version``; the mutable :class:`ShardRouter`
holds the current map and flips to a successor atomically. Range
ownership is what makes *online resharding* possible (see
:mod:`repro.controlplane`): splitting a shard halves one of its ranges
— only keys in the moved half change owner, nothing else rehashes —
and merging relabels a shard's ranges onto a survivor.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass

from repro.util import stable_hash

__all__ = ["HASH_SPACE", "route_hash", "ShardRange", "RouteMap",
           "ShardRouter"]

#: ``stable_hash`` yields 63-bit values; ranges partition [0, HASH_SPACE).
HASH_SPACE = 1 << 63


def route_hash(doc_id: str) -> int:
    """The routing position of ``doc_id`` in the hash space."""
    return stable_hash("shard-route", doc_id)


@dataclass(frozen=True)
class ShardRange:
    """One contiguous hash range ``[low, high)`` owned by one shard."""

    low: int
    high: int
    shard_id: int

    def __contains__(self, hash_value: int) -> bool:
        return self.low <= hash_value < self.high

    @property
    def width(self) -> int:
        return self.high - self.low


class RouteMap:
    """An immutable, versioned ``hash range -> shard`` assignment.

    In-flight queries pin one snapshot so a concurrent topology change
    can never mix shard layouts within a single scatter-gather.
    """

    __slots__ = ("version", "ranges", "_lows")

    def __init__(self, ranges, version: int) -> None:
        ordered = tuple(sorted(ranges, key=lambda r: r.low))
        if not ordered:
            raise ValueError("a route map needs at least one range")
        cursor = 0
        for entry in ordered:
            if entry.low != cursor or entry.high <= entry.low:
                raise ValueError(
                    "route ranges must tile [0, HASH_SPACE) contiguously"
                )
            cursor = entry.high
        if cursor != HASH_SPACE:
            raise ValueError("route ranges must cover the hash space")
        self.version = version
        self.ranges = _coalesce(ordered)
        self._lows = [entry.low for entry in self.ranges]

    @classmethod
    def initial(cls, num_shards: int) -> "RouteMap":
        """Equal-width ranges for shards ``0..num_shards-1``, version 1."""
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        bounds = [i * HASH_SPACE // num_shards
                  for i in range(num_shards)] + [HASH_SPACE]
        return cls(
            [ShardRange(bounds[i], bounds[i + 1], i)
             for i in range(num_shards)],
            version=1,
        )

    # -- lookups --------------------------------------------------------------

    def shard_of_hash(self, hash_value: int) -> int:
        return self.ranges[
            bisect_right(self._lows, hash_value) - 1].shard_id

    def shard_of(self, doc_id: str) -> int:
        return self.shard_of_hash(route_hash(doc_id))

    @property
    def shard_ids(self) -> tuple:
        """Active shard ids, ascending."""
        return tuple(sorted({entry.shard_id for entry in self.ranges}))

    @property
    def num_shards(self) -> int:
        return len({entry.shard_id for entry in self.ranges})

    def ranges_of(self, shard_id: int) -> tuple:
        owned = tuple(entry for entry in self.ranges
                      if entry.shard_id == shard_id)
        if not owned:
            raise ValueError(f"shard {shard_id} owns no range")
        return owned

    # -- successor maps (the control plane's planning primitives) -------------

    def split(self, shard_id: int, new_shard_id: int) -> tuple:
        """Halve ``shard_id``'s widest range, giving the upper half to
        ``new_shard_id``; returns ``(new_map, moved_range)``.

        Only keys hashing into ``moved_range`` change owner.
        """
        if new_shard_id in self.shard_ids:
            raise ValueError(f"shard {new_shard_id} is already active")
        widest = max(self.ranges_of(shard_id),
                     key=lambda entry: (entry.width, -entry.low))
        if widest.width < 2:
            raise ValueError(f"shard {shard_id} cannot split further")
        mid = (widest.low + widest.high) // 2
        moved = ShardRange(mid, widest.high, new_shard_id)
        ranges = [entry for entry in self.ranges if entry != widest]
        ranges += [ShardRange(widest.low, mid, shard_id), moved]
        return RouteMap(ranges, self.version + 1), moved

    def merge(self, source_id: int, target_id: int) -> tuple:
        """Relabel ``source_id``'s ranges onto ``target_id``; returns
        ``(new_map, moved_ranges)``. ``source_id`` becomes inactive."""
        if source_id == target_id:
            raise ValueError("cannot merge a shard into itself")
        moved = self.ranges_of(source_id)
        self.ranges_of(target_id)   # target must be active
        ranges = [
            ShardRange(entry.low, entry.high, target_id)
            if entry.shard_id == source_id else entry
            for entry in self.ranges
        ]
        return RouteMap(ranges, self.version + 1), moved

    def __repr__(self) -> str:
        return (f"RouteMap(version={self.version}, "
                f"shards={list(self.shard_ids)})")


def _coalesce(ordered) -> tuple:
    """Merge adjacent ranges owned by the same shard."""
    merged: list[ShardRange] = []
    for entry in ordered:
        if merged and merged[-1].shard_id == entry.shard_id \
                and merged[-1].high == entry.low:
            merged[-1] = ShardRange(merged[-1].low, entry.high,
                                    entry.shard_id)
        else:
            merged.append(entry)
    return tuple(merged)


class ShardRouter:
    """Hash-based ``doc_id -> shard`` routing behind a versioned map."""

    def __init__(self, num_shards: int) -> None:
        self._route = RouteMap.initial(num_shards)
        self._lock = threading.Lock()

    @property
    def num_shards(self) -> int:
        return self._route.num_shards

    @property
    def topology_version(self) -> int:
        return self._route.version

    def snapshot(self) -> RouteMap:
        """The current immutable route map; pin one per query."""
        return self._route

    def apply(self, route_map: RouteMap) -> RouteMap:
        """Atomically flip to a successor map (version must advance by
        exactly one, so concurrent planners cannot clobber each other)."""
        with self._lock:
            if route_map.version != self._route.version + 1:
                raise ValueError(
                    f"stale route map: version {route_map.version} "
                    f"does not succeed {self._route.version}"
                )
            self._route = route_map
            return route_map

    def shard_of(self, doc_id: str) -> int:
        return self._route.shard_of(doc_id)

    def partition(self, doc_ids) -> dict:
        """Group ``doc_ids`` by owning shard: ``{shard_id: [doc_id]}``."""
        route = self.snapshot()
        by_shard: dict[int, list] = {
            shard: [] for shard in route.shard_ids
        }
        for doc_id in doc_ids:
            by_shard[route.shard_of(doc_id)].append(doc_id)
        return by_shard
