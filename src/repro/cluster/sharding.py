"""Document-partitioned shard routing.

Every document lives on exactly one shard, chosen by a process-stable
hash of its id, so routing replays identically across runs, processes,
and cluster restarts. All replicas of a shard hold the same partition.
"""

from __future__ import annotations

from repro.util import stable_hash

__all__ = ["ShardRouter"]


class ShardRouter:
    """Hash-based ``doc_id -> shard`` routing."""

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards

    def shard_of(self, doc_id: str) -> int:
        return stable_hash("shard-route", doc_id) % self.num_shards

    def partition(self, doc_ids) -> dict:
        """Group ``doc_ids`` by owning shard: ``{shard_id: [doc_id]}``."""
        by_shard: dict[int, list] = {
            shard: [] for shard in range(self.num_shards)
        }
        for doc_id in doc_ids:
            by_shard[self.shard_of(doc_id)].append(doc_id)
        return by_shard
