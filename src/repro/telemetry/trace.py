"""Hierarchical tracing: spans, parent-child context, deterministic ids.

A :class:`Tracer` produces a tree of :class:`Span` objects per query —
query → stage → per-source → cluster phase → per-shard → per-replica —
timed off :class:`~repro.util.SimClock` so the same seeded run always
yields the same span tree. The *current* span lives in a
:class:`contextvars.ContextVar`; because
:class:`~repro.cluster.executor.ScatterGatherExecutor` submits every
shard task under a copy of the caller's context, spans opened on worker
threads parent correctly under the span that scattered them.

Span ids are content-derived (``stable_hash(parent, name, occurrence)``)
rather than random, which is what makes traces reproducible: two runs
that perform the same operations produce byte-identical span trees.
Concurrent siblings must therefore use distinct span names (the cluster
instrumentation names spans ``exec:shard-3``, never a bare ``exec``);
same-named siblings are only deterministic when opened sequentially.

The default tracer is :data:`NULL_TRACER`, whose ``span()`` returns one
shared no-op object — the uninstrumented hot path allocates nothing.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar

from repro.util import SimClock, stable_hash

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "build_span_forest",
    "render_span_tree",
]

_CURRENT_SPAN: ContextVar = ContextVar("repro_current_span",
                                       default=None)


class Span:
    """One timed operation; a context manager that tracks the tree.

    Truthiness doubles as an "is tracing live?" check, so call sites can
    guard attribute work with ``if span: span.set(...)`` and pay nothing
    when the no-op tracer is installed.
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "start_ms", "end_ms", "status", "attrs",
                 "_child_counts", "_token")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str,
                 parent_id: str | None, name: str,
                 start_ms: int) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.end_ms: int | None = None
        self.status = "ok"
        self.attrs: dict = {}
        self._child_counts: dict[str, int] = {}
        self._token = None

    def __bool__(self) -> bool:
        return True

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    @property
    def duration_ms(self) -> float:
        end = self.end_ms if self.end_ms is not None \
            else self.tracer.clock.now_ms
        return float(end - self.start_ms)

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", str(exc))
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self.tracer._finish(self)
        return False

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, status={self.status})")


class _NullSpan:
    """The shared do-nothing span; falsy so callers can skip attr work."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans parented off the ambient current span.

    ``clock`` supplies every timestamp, so span trees (ids, times,
    structure) replay identically for the same seeded workload.
    """

    enabled = True

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._finished: list[Span] = []
        self._lock = threading.Lock()
        self._root_counts: dict[str, int] = {}

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str) -> Span:
        """Open a child of the current span (or a new root)."""
        parent = _CURRENT_SPAN.get()
        with self._lock:
            if parent is None:
                occurrence = self._root_counts.get(name, 0)
                self._root_counts[name] = occurrence + 1
                trace_id = _hex(stable_hash("trace", name, occurrence))
                parent_id = None
                span_id = _hex(stable_hash(trace_id, name, occurrence))
            else:
                occurrence = parent._child_counts.get(name, 0)
                parent._child_counts[name] = occurrence + 1
                trace_id = parent.trace_id
                parent_id = parent.span_id
                span_id = _hex(stable_hash(parent_id, name, occurrence))
        return Span(self, trace_id, span_id, parent_id, name,
                    self.clock.now_ms)

    def current(self) -> Span | None:
        return _CURRENT_SPAN.get()

    def _finish(self, span: Span) -> None:
        span.end_ms = self.clock.now_ms
        with self._lock:
            self._finished.append(span)

    # -- accessors ------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans in a deterministic order (not completion order:
        worker threads finish in whatever order the OS schedules)."""
        with self._lock:
            return sorted(
                self._finished,
                key=lambda s: (s.trace_id, s.start_ms, s.span_id),
            )

    def trace_spans(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id)
        return list(seen)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
            self._root_counts.clear()


class NullTracer:
    """The default: every ``span()`` is the same shared no-op object."""

    enabled = False
    spans: tuple = ()

    def span(self, name: str | None = None) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def trace_spans(self, trace_id: str) -> tuple:
        return ()

    def trace_ids(self) -> tuple:
        return ()

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()


def _hex(value: int) -> str:
    return f"{value:016x}"


def _as_dict(span) -> dict:
    return span if isinstance(span, dict) else span.to_dict()


def build_span_forest(spans) -> list[dict]:
    """Arrange span dicts (or :class:`Span` objects) into root trees.

    Each returned node is the span dict plus a ``children`` list;
    children are ordered by (start, span_id) so the forest is stable
    regardless of thread completion order.
    """
    nodes = [dict(_as_dict(s), children=[]) for s in spans]
    by_id = {node["span_id"]: node for node in nodes}
    roots = []
    for node in nodes:
        parent = by_id.get(node["parent_id"])
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    order = (lambda n: (n["start_ms"], n["span_id"]))
    for node in nodes:
        node["children"].sort(key=order)
    roots.sort(key=lambda n: (n["trace_id"], n["start_ms"],
                              n["span_id"]))
    return roots


def render_span_tree(spans, include_ids: bool = False) -> str:
    """Text rendering of the span forest, one line per span."""
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        duration = ((node["end_ms"] - node["start_ms"])
                    if node["end_ms"] is not None else 0)
        attrs = " ".join(
            f"{key}={node['attrs'][key]!r}"
            for key in sorted(node["attrs"])
        )
        status = "" if node["status"] == "ok" else f" !{node['status']}"
        span_id = f" [{node['span_id'][:8]}]" if include_ids else ""
        lines.append(
            f"{'  ' * depth}{node['name']}{span_id} "
            f"{duration} ms{status}" + (f"  {attrs}" if attrs else "")
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in build_span_forest(spans):
        walk(root, 0)
    return "\n".join(lines)
