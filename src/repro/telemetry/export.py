"""Exporters: JSONL dump/load, Prometheus text, and the human report.

The JSONL format is one object per line with a ``type`` discriminator
(``span`` | ``event`` | ``metrics``), so a single file captures a whole
telemetry session and round-trips losslessly: the report rendered from
a loaded file is identical to the report rendered live. The Prometheus
exposition is delegated to the registry; this module only adds the
report framing around it.
"""

from __future__ import annotations

import json

from repro.telemetry.trace import render_span_tree

__all__ = [
    "telemetry_lines",
    "dump_jsonl",
    "load_jsonl",
    "render_report",
]


def telemetry_lines(telemetry) -> list[dict]:
    """The JSONL payload for one telemetry session, as dicts."""
    lines: list[dict] = []
    for span in telemetry.tracer.spans:
        lines.append(dict(span.to_dict(), type="span"))
    for event in telemetry.events.events:
        lines.append(dict(event.to_dict(), type="event"))
    lines.append({"type": "metrics",
                  "snapshot": telemetry.metrics.snapshot(),
                  "events_dropped": telemetry.events.dropped})
    return lines


def dump_jsonl(telemetry, fileobj) -> int:
    """Write the session to ``fileobj``; returns the line count."""
    count = 0
    for line in telemetry_lines(telemetry):
        fileobj.write(json.dumps(line, sort_keys=True) + "\n")
        count += 1
    return count


def load_jsonl(lines) -> dict:
    """Parse a JSONL export (an iterable of lines or a file object)."""
    data: dict = {
        "spans": [],
        "events": [],
        "metrics": {"counter": {}, "gauge": {}, "histogram": {}},
        "events_dropped": 0,
    }
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        entry = json.loads(raw)
        kind = entry.pop("type", None)
        if kind == "span":
            data["spans"].append(entry)
        elif kind == "event":
            data["events"].append(entry)
        elif kind == "metrics":
            data["metrics"] = entry["snapshot"]
            data["events_dropped"] = entry.get("events_dropped", 0)
    return data


def _event_counts(events) -> dict:
    out: dict[str, int] = {}
    for event in events:
        kind = event["kind"] if isinstance(event, dict) else event.kind
        out[kind] = out.get(kind, 0) + 1
    return dict(sorted(out.items()))


def render_report(data: dict) -> str:
    """The ``repro telemetry`` CLI report over loaded (or live) data."""
    lines = ["Telemetry report", "================"]

    spans = data.get("spans", [])
    lines.append("")
    lines.append(f"Spans ({len(spans)}):")
    if spans:
        for tree_line in render_span_tree(spans).splitlines():
            lines.append(f"  {tree_line}")
    else:
        lines.append("  (none recorded)")

    events = data.get("events", [])
    dropped = data.get("events_dropped", 0)
    lines.append("")
    lines.append(f"Events ({len(events)}"
                 + (f", {dropped} dropped" if dropped else "") + "):")
    counts = _event_counts(events)
    if counts:
        for kind, count in counts.items():
            lines.append(f"  {kind:<28} {count}")
    else:
        lines.append("  (none recorded)")

    metrics = data.get("metrics", {})
    lines.append("")
    lines.append("Metrics:")
    wrote_metric = False
    for kind in ("counter", "gauge", "histogram"):
        for name, value in metrics.get(kind, {}).items():
            wrote_metric = True
            if kind == "histogram":
                parts = ", ".join(
                    f"{k}={value[k]}" for k in
                    ("count", "p50", "p95", "p99", "max")
                    if value.get(k) is not None
                )
                lines.append(f"  {name:<40} {parts}")
            else:
                lines.append(f"  {name:<40} {value}")
    if not wrote_metric:
        lines.append("  (none recorded)")
    return "\n".join(lines)
