"""Counters, gauges, and streaming histograms behind one registry.

Instruments are created lazily (``registry.counter("cache_hits")``) and
identified by (name, labels); the registry is thread-safe because
cluster worker threads and concurrent app queries record into the same
instance. :class:`Histogram` keeps an exact sample list up to a cap and
then compacts deterministically (sort, keep every other sample), so
p50/p95/p99 stay accurate at small counts, bounded in memory at large
ones, and identical across reruns — no RNG, no wall clock.

A :class:`NullMetricsRegistry` mirrors the API with shared no-op
instruments so uninstrumented deployments pay nothing.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_BUCKET_BOUNDS",
]

#: Fixed, deterministic bucket upper bounds (``le``) for every
#: histogram's Prometheus exposition. Spanning sub-ms dispatch costs to
#: multi-second chaos latencies, they let an external scraper compute
#: its own quantiles from cumulative counts regardless of sample
#: compaction.
DEFAULT_BUCKET_BOUNDS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value; either set directly or read via callback."""

    __slots__ = ("name", "labels", "_value", "_fn")

    def __init__(self, name: str, labels: tuple = (), fn=None) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Streaming distribution with deterministic, bounded quantiles.

    Up to ``sample_cap`` observations are kept exactly. Past the cap,
    the sorted sample list is halved (every other element kept) and the
    keep-stride for *future* observations doubles, so the retained
    samples stay a roughly uniform subsample of the whole stream — a
    long monotone stream cannot crowd out its own early values.
    ``count``/``sum``/``min``/``max`` are always exact, and the whole
    scheme is deterministic: no RNG, no wall clock, identical reruns
    give identical quantiles.
    """

    __slots__ = ("name", "labels", "sample_cap", "count", "total",
                 "min", "max", "bucket_bounds", "_bucket_counts",
                 "_samples", "_stride", "_sorted", "_lock")

    def __init__(self, name: str, labels: tuple = (),
                 sample_cap: int = 2048,
                 bucket_bounds: tuple = DEFAULT_BUCKET_BOUNDS) -> None:
        if sample_cap < 8:
            raise ValueError("sample_cap must be at least 8")
        if tuple(bucket_bounds) != tuple(sorted(bucket_bounds)):
            raise ValueError("bucket_bounds must be sorted ascending")
        self.name = name
        self.labels = labels
        self.sample_cap = sample_cap
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.bucket_bounds = tuple(bucket_bounds)
        # Exact per-bucket counts (last slot is the +Inf overflow) —
        # unlike the quantile samples these never compact, so the
        # exposition's cumulative counts are exact at any volume.
        self._bucket_counts = [0] * (len(self.bucket_bounds) + 1)
        self._samples: list[float] = []
        self._stride = 1       # keep every _stride-th observation
        self._sorted = True    # _samples currently in sorted order?
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min,
                                                          value)
            self.max = value if self.max is None else max(self.max,
                                                          value)
            self._bucket_counts[
                bisect_left(self.bucket_bounds, value)] += 1
            if self.count % self._stride == 0:
                self._samples.append(value)
                self._sorted = False
            if len(self._samples) > self.sample_cap:
                self._samples.sort()
                self._samples = self._samples[::2]
                self._stride *= 2
                self._sorted = True

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile; ``None`` when nothing was observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if not self._samples:
                return None
            # Sort lazily, once per batch of observations: a scrape
            # reads three quantiles per histogram and used to pay a
            # full re-sort for each.
            if not self._sorted:
                self._samples.sort()
                self._sorted = True
            index = max(0, math.ceil(q * len(self._samples)) - 1)
            return self._samples[index]

    def buckets(self) -> dict:
        """Cumulative ``{le: count}`` with string keys (JSON-stable)."""
        with self._lock:
            counts = list(self._bucket_counts)
        out: dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.bucket_bounds, counts):
            running += bucket_count
            out[f"{bound:g}"] = running
        out["+Inf"] = running + counts[-1]
        return out

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": self.buckets(),
        }


class _NullInstrument:
    """Shared stand-in for every instrument kind when metrics are off."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Get-or-create instrument registry with stable exposition output."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, labels: dict, factory):
        key = (kind, name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(name, key[2])
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, fn=None, **labels) -> Gauge:
        return self._get("gauge", name, labels,
                         lambda n, lk: Gauge(n, lk, fn=fn))

    def histogram(self, name: str, sample_cap: int = 2048,
                  **labels) -> Histogram:
        return self._get("histogram", name, labels,
                         lambda n, lk: Histogram(n, lk, sample_cap))

    # -- export ---------------------------------------------------------------

    def _sorted_items(self) -> list[tuple[tuple, object]]:
        with self._lock:
            return sorted(self._instruments.items(),
                          key=lambda pair: pair[0])

    def snapshot(self) -> dict:
        """``{kind: {exposed_name: value-or-summary}}``, fully sorted."""
        out: dict[str, dict] = {"counter": {}, "gauge": {},
                                "histogram": {}}
        for (kind, name, label_key), instrument in self._sorted_items():
            exposed = _exposed_name(name, label_key)
            if kind == "histogram":
                out[kind][exposed] = instrument.summary()
            else:
                out[kind][exposed] = instrument.value
        return out

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus-style text exposition (counters, gauges, histograms)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for (kind, name, label_key), instrument in self._sorted_items():
            metric = f"{prefix}{name}"
            if metric not in seen_types:
                seen_types.add(metric)
                lines.append(f"# TYPE {metric} {kind}")
            labels = _prom_labels(label_key)
            if kind == "histogram":
                summary = instrument.summary()
                # Pre-computed quantiles (convenience gauges) ...
                for q_name, q in (("0.5", "p50"), ("0.95", "p95"),
                                  ("0.99", "p99")):
                    value = summary.get(q)
                    if value is None:
                        continue
                    q_labels = _prom_labels(
                        label_key + (("quantile", q_name),)
                    )
                    lines.append(f"{metric}{q_labels} {value}")
                # ... plus exact cumulative buckets, so external
                # scrapers can derive any quantile themselves.
                for le, cumulative in summary["buckets"].items():
                    le_labels = _prom_labels(
                        label_key + (("le", le),)
                    )
                    lines.append(
                        f"{metric}_bucket{le_labels} {cumulative}")
                lines.append(f"{metric}_count{labels} "
                             f"{summary['count']}")
                lines.append(f"{metric}_sum{labels} {summary['sum']}")
            else:
                lines.append(f"{metric}{labels} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")


class NullMetricsRegistry:
    """API-compatible no-op registry."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, fn=None, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, sample_cap: int = 2048,
                  **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counter": {}, "gauge": {}, "histogram": {}}

    def render_prometheus(self, prefix: str = "repro_") -> str:
        return ""


NULL_METRICS = NullMetricsRegistry()


def _exposed_name(name: str, label_key: tuple) -> str:
    if not label_key:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{rendered}}}"


def _prom_labels(label_key: tuple) -> str:
    if not label_key:
        return ""
    rendered = ",".join(f'{k}="{v}"' for k, v in label_key)
    return f"{{{rendered}}}"
