"""The structured event log: discrete facts, not samples.

Where metrics aggregate and spans time, events record *that something
happened*: a circuit opened, a rate limit rejected an app, a replica
fell out of rotation, an ingest completed. Each event is a timestamped
kind plus a flat field dict, cheap enough to keep for a whole benchmark
run and structured enough to export as JSONL.

When built with a registry, the log also bumps an ``events_total{kind=}``
counter per emit, so dashboards get rates for free.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.util import SimClock

__all__ = ["TelemetryEvent", "EventLog", "NullEventLog", "NULL_EVENTS"]


@dataclass(frozen=True)
class TelemetryEvent:
    timestamp_ms: int
    kind: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "timestamp_ms": self.timestamp_ms,
            "kind": self.kind,
            "fields": dict(self.fields),
        }


class EventLog:
    """Bounded, thread-safe event sink timed off the simulated clock."""

    enabled = True

    def __init__(self, clock: SimClock | None = None, metrics=None,
                 max_events: int = 50_000) -> None:
        self._clock = clock or SimClock()
        self._metrics = metrics
        self._events: deque = deque(maxlen=max_events)
        self._dropped = 0
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields) -> TelemetryEvent:
        event = TelemetryEvent(self._clock.now_ms, kind, fields)
        wrapped = False
        with self._lock:
            # A full deque(maxlen=...) silently evicts its oldest entry
            # on append; count that so a saturated run is visibly
            # lossy instead of quietly truncated.
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
                wrapped = True
            self._events.append(event)
        if self._metrics is not None:
            self._metrics.counter("events_total", kind=kind).inc()
            if wrapped:
                self._metrics.counter("events_dropped_total").inc()
        return event

    @property
    def dropped(self) -> int:
        """Events evicted by the bounded deque since construction."""
        with self._lock:
            return self._dropped

    @property
    def events(self) -> list:
        with self._lock:
            return list(self._events)

    def by_kind(self, kind: str) -> list:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullEventLog:
    """No-op sink for uninstrumented deployments."""

    enabled = False
    events: tuple = ()
    dropped = 0

    def emit(self, kind: str, **fields) -> None:
        return None

    def by_kind(self, kind: str) -> tuple:
        return ()

    def counts(self) -> dict:
        return {}

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_EVENTS = NullEventLog()
