"""``repro.telemetry`` — the platform's observability layer.

Three coordinated instruments behind one :class:`Telemetry` bundle:

* :class:`~repro.telemetry.trace.Tracer` — hierarchical spans (query →
  stage → per-source → per-shard → per-replica) with parent-child
  context propagated across scatter-gather worker threads, timed off
  :class:`~repro.util.SimClock` so span trees replay identically.
* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges,
  and streaming histograms (p50/p95/p99) for cache behaviour, circuit
  breakers, rate limits, per-shard latency, and degradation.
* :class:`~repro.telemetry.events.EventLog` — structured, timestamped
  facts (state transitions, rejections, failovers) with a JSONL
  exporter and a Prometheus-style text exposition.

Construct ``Symphony(..., telemetry=True)`` to wire all of it through
the query pipeline and cluster; the default is :meth:`Telemetry.disabled`,
whose no-op tracer keeps the hot path allocation-free.
"""

from __future__ import annotations

from repro.telemetry.events import (
    NULL_EVENTS,
    EventLog,
    NullEventLog,
    TelemetryEvent,
)
from repro.telemetry.export import (
    dump_jsonl,
    load_jsonl,
    render_report,
    telemetry_lines,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    build_span_forest,
    render_span_tree,
)
from repro.util import SimClock

__all__ = [
    "Telemetry",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "build_span_forest",
    "render_span_tree",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "TelemetryEvent",
    "telemetry_lines",
    "dump_jsonl",
    "load_jsonl",
    "render_report",
]


class Telemetry:
    """Tracer + metrics + events sharing one clock.

    One bundle per platform instance; every instrumented subsystem
    receives the same bundle so a query's spans, the cache's gauges,
    and the breaker's events all land in one exportable session.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self.enabled = True
        self.tracer = Tracer(self.clock)
        self.metrics = MetricsRegistry()
        self.events = EventLog(clock=self.clock, metrics=self.metrics)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op bundle (stateless, safe to share)."""
        return _DISABLED

    # -- convenience wiring ---------------------------------------------------

    def bind_result_cache(self, cache) -> None:
        """Expose a :class:`~repro.core.runtime.ResultCache`'s stats as
        callback gauges, so exports always see current values."""
        for stat in ("hits", "misses", "ttl_evictions",
                     "lru_evictions", "entries"):
            self.metrics.gauge(
                f"result_cache_{stat}",
                fn=(lambda c=cache, s=stat: c.stats()[s]),
            )

    # -- export ---------------------------------------------------------------

    def data(self) -> dict:
        """Live session data in the same shape :func:`load_jsonl` returns."""
        return {
            "spans": [s.to_dict() for s in self.tracer.spans],
            "events": [e.to_dict() for e in self.events.events],
            "metrics": self.metrics.snapshot(),
            "events_dropped": self.events.dropped,
        }

    def report(self) -> str:
        return render_report(self.data())

    def export_jsonl(self, path) -> int:
        """Write the session as JSONL; returns the line count."""
        with open(path, "w", encoding="utf-8") as fh:
            return dump_jsonl(self, fh)

    def render_prometheus(self) -> str:
        return self.metrics.render_prometheus()


class _DisabledTelemetry(Telemetry):
    """Null bundle: shared singletons, nothing recorded."""

    def __init__(self) -> None:  # noqa: super().__init__ intentionally skipped
        self.clock = SimClock()
        self.enabled = False
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self.events = NULL_EVENTS

    def bind_result_cache(self, cache) -> None:
        pass


_DISABLED = _DisabledTelemetry()
