"""Online shard splits and merges with live handoff.

The :class:`ShardLifecycleManager` changes the cluster's shard layout
*while the cluster keeps answering queries*. A migration walks a small
state machine, one batch of work per :meth:`~ShardLifecycleManager.step`:

``COPY``
    Documents whose routing hash falls in the moved range stream from
    the donor to the target in generation-stamped batches. The donor
    still owns the range and serves every read; a dual-write fanout
    (installed on ``engine.write_fanout``) mirrors concurrent writes to
    both sides so the copy stream can never lose a racing update.
``CUTOVER``
    The successor :class:`~repro.cluster.sharding.RouteMap` flips in
    atomically — queries pin one snapshot, so each sees entirely-old or
    entirely-new topology, never a mix. The gateway's
    ``cluster-topology`` generation bumps in the same step, so every
    cached response computed over the old layout dies immediately.
``CLEANUP``
    The moved documents are deleted from the donor. Until cleanup
    finishes both sides hold the moved documents (the *dual-read
    window*); the gather phase deduplicates by doc id, so queries see
    each document exactly once throughout. Cleanup recomputes the
    remaining set every step, which also sweeps up documents that
    dual-writes landed on the donor mid-cleanup.
``COMPLETE``
    The fanout uninstalls and the cluster is back on the clean path.

Replica membership (add/drop a replica of one shard) is also here —
the :class:`~repro.controlplane.autoscaler.Autoscaler` drives both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.replica import ShardReplica
from repro.cluster.sharding import RouteMap, route_hash
from repro.errors import ControlPlaneError
from repro.gateway.generations import TOPOLOGY_KEY
from repro.telemetry import Telemetry

__all__ = ["Migration", "ShardLifecycleManager",
           "COPY", "CUTOVER", "CLEANUP", "COMPLETE"]

COPY = "copy"
CUTOVER = "cutover"
CLEANUP = "cleanup"
COMPLETE = "complete"


@dataclass
class Migration:
    """One in-flight shard split or merge."""

    kind: str                 # "split" | "merge"
    source_id: int            # donor shard
    target_id: int            # receiving shard
    route: RouteMap           # successor map, applied at cutover
    moved_ranges: tuple       # hash ranges changing owner
    state: str = COPY
    pending: list = field(default_factory=list)   # (vertical, doc_id)
    generation: int = 0       # handoff batch counter
    docs_moved: int = 0

    def owns(self, doc_id: str) -> bool:
        """True when ``doc_id`` hashes into a moved range."""
        position = route_hash(doc_id)
        return any(position in entry for entry in self.moved_ranges)

    def status(self) -> dict:
        return {
            "kind": self.kind,
            "source": self.source_id,
            "target": self.target_id,
            "state": self.state,
            "pending": len(self.pending),
            "generation": self.generation,
            "docs_moved": self.docs_moved,
            "next_version": self.route.version,
        }


class ShardLifecycleManager:
    """Drives topology changes against one clustered engine.

    One migration at a time; each :meth:`step` performs a bounded batch
    of work so the caller (autoscaler tick, chaos harness, CLI) can
    interleave queries with the migration and observe every window.
    """

    def __init__(self, engine, generations=None,
                 telemetry: Telemetry | None = None,
                 batch_size: int = 64) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.engine = engine
        self.generations = generations
        self.telemetry = telemetry or Telemetry.disabled()
        self.batch_size = batch_size
        self._migration: Migration | None = None
        metrics = self.telemetry.metrics
        metrics.gauge("controlplane_active_shards",
                      fn=lambda: engine.num_shards)
        metrics.gauge("controlplane_topology_version",
                      fn=lambda: engine.topology_version)

    # -- introspection --------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._migration is not None

    @property
    def migration(self) -> Migration | None:
        return self._migration

    def status(self) -> dict | None:
        return self._migration.status() if self._migration else None

    # -- replica membership ---------------------------------------------------

    def add_replica(self, shard_id: int) -> ShardReplica:
        """Clone the shard's primary into a new replica and enroll it."""
        from repro.searchengine.engine import make_vertical_indexes
        group = self.engine.groups[shard_id]
        primary = group.primary()
        index = max(r.replica_index for r in group.replicas) + 1
        replica = ShardReplica(
            shard_id, index, make_vertical_indexes(self.engine.authority)
        )
        for vertical, vindex in primary.verticals.items():
            for doc_id in sorted(vindex.index.all_doc_ids()):
                replica.add(vertical, vindex.index.document(doc_id))
        replica.applied_lsn = primary.applied_lsn
        group.add_replica(replica)
        self.telemetry.metrics.counter(
            "controlplane_replicas_added_total").inc()
        self.telemetry.events.emit(
            "replica.added", shard=shard_id, replica=replica.replica_id,
            replicas=len(group.replicas),
        )
        return replica

    def remove_replica(self, shard_id: int,
                       replica_index: int | None = None) -> ShardReplica:
        """Drop one replica (default: the newest) from a shard."""
        group = self.engine.groups[shard_id]
        if replica_index is None:
            replica_index = len(group.replicas) - 1
        replica = group.remove_replica(replica_index)
        self.telemetry.metrics.counter(
            "controlplane_replicas_removed_total").inc()
        self.telemetry.events.emit(
            "replica.removed", shard=shard_id,
            replica=replica.replica_id, replicas=len(group.replicas),
        )
        return replica

    # -- migrations -----------------------------------------------------------

    def begin_split(self, shard_id: int) -> Migration:
        """Start splitting ``shard_id``'s widest range onto a new shard.

        The new shard's replica group is built empty (same redundancy
        as the donor), registered unrouted, and only receives traffic
        at cutover — after the copy stream has filled it.
        """
        self._require_idle()
        from repro.searchengine.engine import make_vertical_indexes
        engine = self.engine
        donor = engine.groups[shard_id]
        new_id = len(engine.groups)
        route, moved = engine.router.snapshot().split(shard_id, new_id)
        group_cls = type(donor)
        group = group_cls(
            new_id,
            [ShardReplica(new_id, index,
                          make_vertical_indexes(engine.authority))
             for index in range(len(donor.replicas))],
            failure_threshold=donor.failure_threshold,
        )
        engine.register_shard(group)
        return self._begin("split", shard_id, new_id, route, (moved,))

    def begin_merge(self, source_id: int, target_id: int) -> Migration:
        """Start folding ``source_id``'s ranges into ``target_id``.

        The source group goes dormant at cutover (it stays in
        ``engine.groups`` but no route points at it).
        """
        self._require_idle()
        route, moved = self.engine.router.snapshot().merge(
            source_id, target_id)
        return self._begin("merge", source_id, target_id, route, moved)

    def step(self) -> str | None:
        """Advance the migration by one bounded batch; returns the state
        reached (``None`` when no migration is active)."""
        migration = self._migration
        if migration is None:
            return None
        if migration.state == COPY:
            self._step_copy(migration)
        elif migration.state == CUTOVER:
            self._step_cutover(migration)
        elif migration.state == CLEANUP:
            self._step_cleanup(migration)
        return migration.state

    def run(self) -> Migration:
        """Drive the active migration to completion."""
        migration = self._migration
        if migration is None:
            raise ControlPlaneError("no migration in progress")
        while migration.state != COMPLETE:
            self.step()
        return migration

    # -- internals ------------------------------------------------------------

    def _require_idle(self) -> None:
        if self._migration is not None:
            raise ControlPlaneError(
                f"migration already in progress: "
                f"{self._migration.status()}"
            )

    def _begin(self, kind: str, source_id: int, target_id: int,
               route: RouteMap, moved_ranges: tuple) -> Migration:
        migration = Migration(kind=kind, source_id=source_id,
                              target_id=target_id, route=route,
                              moved_ranges=moved_ranges)
        migration.pending = self._moving_docs(migration)
        self._migration = migration
        self.engine.write_fanout = (
            lambda doc_id: (source_id, target_id)
            if migration.owns(doc_id) else ()
        )
        self.telemetry.metrics.counter(
            "controlplane_reshards_total", kind=kind).inc()
        self.telemetry.events.emit(
            "reshard.start", op=kind, source=source_id,
            target=target_id, docs=len(migration.pending),
            next_version=route.version,
        )
        return migration

    def _moving_docs(self, migration: Migration) -> list:
        """Snapshot the donor documents in the moved ranges (sorted, so
        handoff batches replay identically)."""
        primary = self.engine.groups[migration.source_id].primary()
        moving = []
        for vertical, vindex in sorted(primary.verticals.items(),
                                       key=lambda kv: kv[0].value):
            for doc_id in sorted(vindex.index.all_doc_ids()):
                if migration.owns(doc_id):
                    moving.append((vertical, doc_id))
        return moving

    def _step_copy(self, migration: Migration) -> None:
        donor = self.engine.groups[migration.source_id].primary()
        batch = migration.pending[:self.batch_size]
        del migration.pending[:self.batch_size]
        copied = 0
        for vertical, doc_id in batch:
            index = donor.vertical(vertical).index
            if doc_id not in index:      # removed while queued
                continue
            document = index.document(doc_id)
            # Handoff batches flow through the replicated write path, so
            # they are WAL-logged on the target shard and a target
            # replica that crashes mid-handoff can be caught back up.
            self.engine.replicated_write(
                migration.target_id, "add", vertical,
                document=document, tolerant=True,
            )
            copied += 1
        migration.generation += 1
        migration.docs_moved += copied
        metrics = self.telemetry.metrics
        metrics.counter("controlplane_handoff_batches_total").inc()
        metrics.counter("controlplane_docs_moved_total").inc(copied)
        self.telemetry.events.emit(
            "reshard.handoff", op=migration.kind,
            generation=migration.generation, docs=copied,
            remaining=len(migration.pending),
        )
        if not migration.pending:
            migration.state = CUTOVER

    def _step_cutover(self, migration: Migration) -> None:
        self.engine.apply_route(migration.route)
        if self.generations is not None:
            self.generations.bump(TOPOLOGY_KEY)
        self.telemetry.events.emit(
            "reshard.cutover", op=migration.kind,
            source=migration.source_id, target=migration.target_id,
            topology_version=migration.route.version,
        )
        migration.state = CLEANUP

    def _step_cleanup(self, migration: Migration) -> None:
        """Delete moved documents from the donor, one batch per step.

        The remaining set is recomputed from the donor's live indexes
        rather than replayed from the copy snapshot: dual-writes that
        landed on the donor after the snapshot get swept too, so
        COMPLETE really means the donor holds nothing from the moved
        ranges.
        """
        remaining = self._moving_docs(migration)
        if not remaining:
            self.engine.write_fanout = None
            migration.state = COMPLETE
            self._migration = None
            self.telemetry.events.emit(
                "reshard.complete", op=migration.kind,
                source=migration.source_id, target=migration.target_id,
                docs_moved=migration.docs_moved,
                generations=migration.generation,
            )
            return
        for vertical, doc_id in remaining[:self.batch_size]:
            self.engine.replicated_write(
                migration.source_id, "remove", vertical,
                doc_id=doc_id, tolerant=True,
            )
