"""``repro.controlplane`` — online resharding and autoscaling.

The cluster (:mod:`repro.cluster`) serves queries over a fixed layout;
this package changes that layout *live*. A
:class:`~repro.controlplane.lifecycle.ShardLifecycleManager` performs
online shard splits and merges — batched document handoff, a dual-read/
dual-write window, and an atomic route-map cutover that also bumps the
gateway's ``cluster-topology`` cache generation — and a
:class:`~repro.controlplane.autoscaler.Autoscaler` closes the loop,
turning the cluster's own per-shard latency telemetry into replica and
topology decisions with hysteresis and cooldown.

Wire it with ``Symphony(..., cluster=..., telemetry=True,
controlplane=True)``, or drive it directly against a
:class:`~repro.cluster.engine.ClusteredSearchEngine`.
"""

from repro.controlplane.autoscaler import (
    AutoscaleDecision,
    Autoscaler,
    AutoscalerPolicy,
)
from repro.controlplane.lifecycle import (
    CLEANUP,
    COMPLETE,
    COPY,
    CUTOVER,
    Migration,
    ShardLifecycleManager,
)

__all__ = [
    "Autoscaler",
    "AutoscaleDecision",
    "AutoscalerPolicy",
    "Migration",
    "ShardLifecycleManager",
    "COPY",
    "CUTOVER",
    "CLEANUP",
    "COMPLETE",
]
