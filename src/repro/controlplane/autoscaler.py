"""Telemetry-driven replica and shard autoscaling.

The :class:`Autoscaler` is a deterministic control loop: each
:meth:`~Autoscaler.tick` reads the per-shard latency series the cluster
engine records (``shard_latency_ms{shard=N}``), computes each shard's
*windowed* mean — from the histogram's exact ``(count, total)`` deltas
since the previous tick, so a scaling action shows up in the signal
immediately instead of being averaged away by hours of history — and
walks an escalation ladder:

* hot shard (windowed mean above ``latency_high_ms`` for
  ``breach_rounds`` consecutive ticks): add a replica; at
  ``max_replicas``, split the shard.
* cold shard (below ``latency_low_ms`` just as persistently): drop a
  replica; at ``min_replicas`` with a small document count, merge it
  into its smallest surviving peer.

Flap resistance is structural, not tuned: the high/low thresholds form
a dead band, breaches must persist for ``breach_rounds`` ticks, at most
one action fires per tick, and every action starts a global
``cooldown_ticks`` quiet period. While a migration is in flight the
loop steps *it* instead of deciding anything new.

Everything is replayable — the loop consumes SimClock-timed telemetry
and holds no wall-clock or random state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry import Telemetry

__all__ = ["AutoscalerPolicy", "AutoscaleDecision", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Thresholds and guard rails for the scaling loop."""

    latency_high_ms: float = 45.0   # windowed mean above -> hot
    latency_low_ms: float = 15.0    # windowed mean below -> cold
    breach_rounds: int = 3          # consecutive ticks before acting
    cooldown_ticks: int = 4         # quiet period after any action
    min_replicas: int = 1
    max_replicas: int = 3
    max_shards: int = 16
    split_min_docs: int = 64        # never split a shard smaller than this
    merge_max_docs: int = 32        # merge candidates must be this small
                                    # (0 disables merges entirely)

    def __post_init__(self) -> None:
        if self.latency_low_ms >= self.latency_high_ms:
            raise ValueError(
                "latency_low_ms must sit below latency_high_ms"
            )
        if self.breach_rounds <= 0 or self.cooldown_ticks < 0:
            raise ValueError("breach_rounds must be positive and "
                             "cooldown_ticks non-negative")
        if self.min_replicas <= 0 or self.max_replicas < self.min_replicas:
            raise ValueError("need 0 < min_replicas <= max_replicas")


@dataclass(frozen=True)
class AutoscaleDecision:
    """What one tick decided, and why."""

    tick: int
    action: str          # add_replica | remove_replica | split | merge
                         # | reshard_step | none
    shard_id: int | None = None
    target_id: int | None = None
    reason: str = ""

    @property
    def acted(self) -> bool:
        return self.action not in ("none", "reshard_step")


class Autoscaler:
    """Deterministic scaling loop over one cluster + lifecycle manager."""

    def __init__(self, engine, lifecycle,
                 telemetry: Telemetry | None = None,
                 policy: AutoscalerPolicy | None = None,
                 slo=None) -> None:
        self.engine = engine
        self.lifecycle = lifecycle
        self.telemetry = telemetry or Telemetry.disabled()
        self.policy = policy or AutoscalerPolicy()
        # Optional repro.slo engine: a firing burn-rate alert becomes an
        # additional scale-up pressure on the hottest shard.
        self.slo = slo
        self.tick_count = 0
        self.decisions: list[AutoscaleDecision] = []
        self._last_seen: dict[int, tuple] = {}   # shard -> (count, total)
        self._hot_rounds: dict[int, int] = {}
        self._cold_rounds: dict[int, int] = {}
        self._cooldown = 0

    # -- signal ---------------------------------------------------------------

    def windowed_means(self) -> dict:
        """Per-shard mean latency since the previous tick.

        Exact — derived from histogram ``(count, total)`` deltas, not
        the compacted sample set. Shards with no traffic this window
        map to ``None``.
        """
        means: dict[int, float | None] = {}
        for shard_id in self.engine.router.snapshot().shard_ids:
            histogram = self.telemetry.metrics.histogram(
                "shard_latency_ms", shard=str(shard_id))
            count, total = histogram.count, float(histogram.total)
            last_count, last_total = self._last_seen.get(
                shard_id, (0, 0.0))
            window = count - last_count
            means[shard_id] = ((total - last_total) / window
                               if window > 0 else None)
            self._last_seen[shard_id] = (count, total)
        return means

    # -- control loop ---------------------------------------------------------

    def tick(self) -> AutoscaleDecision:
        """Read the window, update breach streaks, maybe act once."""
        self.tick_count += 1
        means = self.windowed_means()
        self._update_streaks(means)
        self._note_slo_burn(means)
        if self.lifecycle.active:
            state = self.lifecycle.step()
            decision = AutoscaleDecision(
                tick=self.tick_count, action="reshard_step",
                reason=f"migration in {state}")
        elif self._cooldown > 0:
            self._cooldown -= 1
            decision = AutoscaleDecision(
                tick=self.tick_count, action="none",
                reason=f"cooldown ({self._cooldown} ticks left)")
        else:
            decision = (self._scale_up(means)
                        or self._scale_down(means)
                        or AutoscaleDecision(tick=self.tick_count,
                                             action="none",
                                             reason="within band"))
        if decision.acted:
            self._cooldown = self.policy.cooldown_ticks
            self._hot_rounds.pop(decision.shard_id, None)
            self._cold_rounds.pop(decision.shard_id, None)
            self.telemetry.metrics.counter(
                "controlplane_autoscale_decisions_total",
                action=decision.action).inc()
            self.telemetry.events.emit(
                "autoscale.decision", tick=decision.tick,
                action=decision.action, shard=decision.shard_id,
                target=decision.target_id, reason=decision.reason,
            )
        self.decisions.append(decision)
        return decision

    def run(self, ticks: int) -> list:
        """Run ``ticks`` iterations; returns the decisions made."""
        return [self.tick() for __ in range(ticks)]

    # -- internals ------------------------------------------------------------

    def _update_streaks(self, means: dict) -> None:
        policy = self.policy
        for shard_id, mean in means.items():
            if mean is None:             # idle window: hold streaks
                continue
            if mean > policy.latency_high_ms:
                self._hot_rounds[shard_id] = (
                    self._hot_rounds.get(shard_id, 0) + 1)
                self._cold_rounds.pop(shard_id, None)
            elif mean < policy.latency_low_ms:
                self._cold_rounds[shard_id] = (
                    self._cold_rounds.get(shard_id, 0) + 1)
                self._hot_rounds.pop(shard_id, None)
            else:                        # dead band
                self._hot_rounds.pop(shard_id, None)
                self._cold_rounds.pop(shard_id, None)
        # Streaks for shards that left the topology die with it.
        active = set(means)
        for streaks in (self._hot_rounds, self._cold_rounds):
            for shard_id in list(streaks):
                if shard_id not in active:
                    del streaks[shard_id]

    def _note_slo_burn(self, means: dict) -> None:
        """Fold SLO burn into the hot streaks.

        While any burn-rate alert is firing, error budget is draining
        faster than the objective allows — platform-wide evidence that
        the latency dead band is too forgiving for the current load.
        Credit one extra hot round to the hottest shard of the window
        (deterministic tie-break by shard id), so the escalation ladder
        engages sooner without bypassing the persistence bar entirely.
        """
        if self.slo is None or not self.slo.burning():
            return
        candidates = [(mean, shard_id)
                      for shard_id, mean in means.items()
                      if mean is not None]
        if not candidates:
            return
        hottest = min(candidates,
                      key=lambda pair: (-pair[0], pair[1]))[1]
        self._hot_rounds[hottest] = self._hot_rounds.get(hottest, 0) + 1
        self._cold_rounds.pop(hottest, None)

    def _breached(self, streaks: dict, means: dict) -> list:
        """Shards past the persistence bar, worst offender first."""
        policy = self.policy
        ready = [shard_id for shard_id, rounds in streaks.items()
                 if rounds >= policy.breach_rounds]
        return sorted(
            ready,
            key=lambda sid: (-(means.get(sid) or 0.0), sid),
        )

    def _scale_up(self, means: dict) -> AutoscaleDecision | None:
        policy = self.policy
        for shard_id in self._breached(self._hot_rounds, means):
            group = self.engine.groups[shard_id]
            mean = means[shard_id]
            if mean is None:      # streak held over an idle window
                continue
            if len(group.replicas) < policy.max_replicas:
                self.lifecycle.add_replica(shard_id)
                if mean > policy.latency_high_ms:
                    reason = (f"mean {mean:.1f}ms > "
                              f"{policy.latency_high_ms:.1f}ms")
                else:
                    # Streak earned (at least partly) by SLO burn
                    # credits rather than the latency threshold alone.
                    reason = (f"slo burn; hottest shard mean "
                              f"{mean:.1f}ms")
                return AutoscaleDecision(
                    tick=self.tick_count, action="add_replica",
                    shard_id=shard_id, reason=reason,
                )
            docs = self.engine.shard_doc_count(shard_id)
            if (docs >= policy.split_min_docs
                    and self.engine.num_shards < policy.max_shards):
                migration = self.lifecycle.begin_split(shard_id)
                return AutoscaleDecision(
                    tick=self.tick_count, action="split",
                    shard_id=shard_id, target_id=migration.target_id,
                    reason=f"mean {mean:.1f}ms at max_replicas; "
                           f"{docs} docs",
                )
        return None

    def _scale_down(self, means: dict) -> AutoscaleDecision | None:
        policy = self.policy
        # Coldest last in _breached's hot-first ordering; walk reversed
        # so the idlest shard sheds capacity first.
        for shard_id in reversed(self._breached(self._cold_rounds,
                                                means)):
            group = self.engine.groups[shard_id]
            mean = means[shard_id]
            if mean is None:      # streak held over an idle window
                continue
            if len(group.replicas) > policy.min_replicas:
                self.lifecycle.remove_replica(shard_id)
                return AutoscaleDecision(
                    tick=self.tick_count, action="remove_replica",
                    shard_id=shard_id,
                    reason=f"mean {mean:.1f}ms < "
                           f"{policy.latency_low_ms:.1f}ms",
                )
            docs = self.engine.shard_doc_count(shard_id)
            peers = [sid for sid in means if sid != shard_id]
            if (policy.merge_max_docs > 0
                    and docs <= policy.merge_max_docs and peers):
                target = min(
                    peers,
                    key=lambda sid: (self.engine.shard_doc_count(sid),
                                     sid),
                )
                self.lifecycle.begin_merge(shard_id, target)
                return AutoscaleDecision(
                    tick=self.tick_count, action="merge",
                    shard_id=shard_id, target_id=target,
                    reason=f"{docs} docs <= merge_max_docs "
                           f"{policy.merge_max_docs}",
                )
        return None
