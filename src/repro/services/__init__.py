"""Web-services substrate: the SOAP/REST integration layer plus adCenter.

The paper: "Symphony also supports dynamic data accessed through SOAP and
REST-based web services... We also integrate with advertising services such
as adCenter, allowing ads to be displayed and configured just like any
other content source."

* :mod:`bus` — in-process service bus with latency and fault injection;
* :mod:`rest` — REST-style services (path templates, GET semantics);
* :mod:`soap` — SOAP-style envelopes, operations, and WSDL-lite
  descriptors;
* :mod:`samples` — the pricing/in-stock, weather, and review services the
  examples and benchmarks use;
* :mod:`ads` — the ad service: campaigns, a generalized-second-price
  auction, budgets, and a revenue-share ledger.
"""

from repro.services.ads import AdCampaign, AdResult, AdService, Advertiser
from repro.services.bus import ServiceBus, ServiceDescriptor
from repro.services.rest import RestClient, RestService
from repro.services.samples import (
    PricingService,
    ReviewArchiveService,
    WeatherService,
)
from repro.services.soap import SoapClient, SoapEnvelope, SoapService

__all__ = [
    "AdCampaign",
    "AdResult",
    "AdService",
    "Advertiser",
    "ServiceBus",
    "ServiceDescriptor",
    "RestClient",
    "RestService",
    "PricingService",
    "ReviewArchiveService",
    "WeatherService",
    "SoapClient",
    "SoapEnvelope",
    "SoapService",
]
