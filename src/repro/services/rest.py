"""REST-style services: path-template routing over the service bus.

A :class:`RestService` subclass declares routes like ``GET /prices/{sku}``;
the bus invokes them via the generic ``invoke(operation, params)`` contract
where the operation is ``"GET /prices/{sku}"`` and ``params`` carries both
path and query parameters. :class:`RestClient` gives callers a friendlier
``get("/prices/halo-3")`` surface and does the template matching.
"""

from __future__ import annotations

import re

from repro.errors import NotFoundError, ServiceError, TransportError
from repro.services.bus import ServiceDescriptor
from repro.telemetry.trace import NULL_TRACER

__all__ = ["RestService", "RestClient"]

_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _template_to_regex(template: str) -> re.Pattern:
    pattern = _PARAM_RE.sub(r"(?P<\1>[^/]+)", re.escape(template)
                            .replace(r"\{", "{").replace(r"\}", "}"))
    return re.compile(f"^{pattern}$")


class RestService:
    """Base class: subclasses populate ``self.routes`` in ``__init__``.

    ``routes`` maps ``"GET /path/{param}"`` to a handler taking a params
    dict and returning a JSON-able value.
    """

    name = "rest-service"
    description = ""
    tracer = NULL_TRACER

    def __init__(self) -> None:
        self.routes: dict[str, object] = {}
        self._compiled: list[tuple[str, re.Pattern, object]] = []

    def attach_telemetry(self, telemetry) -> None:
        """Trace invocations under the caller's current span."""
        self.tracer = telemetry.tracer

    def route(self, operation: str, handler) -> None:
        self.routes[operation] = handler
        method, __, template = operation.partition(" ")
        self._compiled.append(
            (method.upper(), _template_to_regex(template), handler)
        )

    def describe(self) -> ServiceDescriptor:
        return ServiceDescriptor(
            name=self.name,
            protocol="rest",
            operations=tuple(sorted(self.routes)),
            description=self.description,
        )

    def invoke(self, operation: str, params: dict):
        """Bus entry point. ``operation`` may be a declared route key or a
        concrete ``"GET /prices/halo-3"`` that matches a template."""
        if not self.tracer.enabled:
            return self._dispatch(operation, params)
        with self.tracer.span(f"rest:{self.name}") as span:
            span.set("operation", operation)
            return self._dispatch(operation, params)

    def _dispatch(self, operation: str, params: dict):
        handler = self.routes.get(operation)
        if handler is not None:
            return handler(dict(params))
        method, __, path = operation.partition(" ")
        for route_method, pattern, route_handler in self._compiled:
            if route_method != method.upper():
                continue
            match = pattern.match(path)
            if match:
                merged = dict(params)
                merged.update(match.groupdict())
                return route_handler(merged)
        raise NotFoundError(
            f"service {self.name!r} has no route for {operation!r}"
        )


class RestClient:
    """Convenience caller for REST services on a bus.

    All provider-side failures surface as :class:`ServiceError`:
    transport resets are normalized here (and at the bus), so callers
    — and the runtime's ``except ReproError`` warning path — handle
    every provider failure through one class instead of special-casing
    :class:`TransportError`.
    """

    def __init__(self, bus, service_name: str) -> None:
        self._bus = bus
        self._service_name = service_name

    def _invoke(self, operation: str, params: dict, deadline=None):
        try:
            return self._bus.invoke(self._service_name, operation,
                                    params, deadline=deadline)
        except TransportError as exc:
            raise ServiceError(
                f"transport failure calling {self._service_name}: {exc}"
            ) from exc

    def get(self, path: str, deadline=None, **params):
        return self._invoke(f"GET {path}", params, deadline=deadline)

    def post(self, path: str, deadline=None, **params):
        return self._invoke(f"POST {path}", params, deadline=deadline)

    def must_get(self, path: str, deadline=None, **params):
        """Like :meth:`get` but wraps NotFound in :class:`ServiceError`."""
        try:
            return self.get(path, deadline=deadline, **params)
        except NotFoundError as exc:
            raise ServiceError(str(exc)) from exc
