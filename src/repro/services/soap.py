"""SOAP-style services: envelopes, typed operations, WSDL-lite contracts.

A :class:`SoapService` declares operations with named input/output parts;
invocations travel as :class:`SoapEnvelope` objects, and errors surface as
faults (:class:`~repro.errors.ServiceFaultError`) with a code and reason —
the shape real SOAP integrations give Symphony.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    NotFoundError,
    ServiceError,
    ServiceFaultError,
    TransportError,
    ValidationError,
)
from repro.services.bus import ServiceDescriptor
from repro.telemetry.trace import NULL_TRACER

__all__ = ["SoapEnvelope", "SoapOperation", "SoapService", "SoapClient"]


@dataclass(frozen=True)
class SoapEnvelope:
    """A SOAP message: headers plus a body of named parts."""

    operation: str
    body: dict
    headers: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SoapOperation:
    """A WSDL-lite operation contract."""

    name: str
    input_parts: tuple      # required body part names
    output_parts: tuple
    documentation: str = ""


class SoapService:
    """Base class: subclasses register operations with contracts."""

    name = "soap-service"
    description = ""
    tracer = NULL_TRACER

    def __init__(self) -> None:
        self._operations: dict[str, tuple[SoapOperation, object]] = {}

    def attach_telemetry(self, telemetry) -> None:
        """Trace invocations under the caller's current span."""
        self.tracer = telemetry.tracer

    def operation(self, contract: SoapOperation, handler) -> None:
        self._operations[contract.name] = (contract, handler)

    def describe(self) -> ServiceDescriptor:
        return ServiceDescriptor(
            name=self.name,
            protocol="soap",
            operations=tuple(sorted(self._operations)),
            description=self.description,
        )

    def wsdl(self) -> dict:
        """A WSDL-lite description: operation → input/output parts."""
        return {
            "service": self.name,
            "operations": {
                name: {
                    "input": list(contract.input_parts),
                    "output": list(contract.output_parts),
                    "documentation": contract.documentation,
                }
                for name, (contract, __) in sorted(self._operations.items())
            },
        }

    def invoke(self, operation: str, params: dict):
        """Bus entry point: validate parts, call handler, wrap faults."""
        if not self.tracer.enabled:
            return self._dispatch(operation, params)
        with self.tracer.span(f"soap:{self.name}") as span:
            span.set("operation", operation)
            return self._dispatch(operation, params)

    def _dispatch(self, operation: str, params: dict):
        entry = self._operations.get(operation)
        if entry is None:
            raise NotFoundError(
                f"service {self.name!r} has no operation {operation!r}"
            )
        contract, handler = entry
        missing = [part for part in contract.input_parts
                   if part not in params]
        if missing:
            raise ServiceFaultError(
                "Client.MissingPart",
                f"operation {operation!r} requires parts: {missing}",
            )
        try:
            result = handler(dict(params))
        except ServiceFaultError:
            raise
        except ValidationError as exc:
            raise ServiceFaultError("Client.BadInput", str(exc)) from exc
        if not isinstance(result, dict):
            raise ServiceFaultError(
                "Server.BadResponse",
                f"operation {operation!r} returned a non-dict body",
            )
        missing_out = [part for part in contract.output_parts
                       if part not in result]
        if missing_out:
            raise ServiceFaultError(
                "Server.MissingPart",
                f"operation {operation!r} response lacks parts: "
                f"{missing_out}",
            )
        return result

    def call(self, envelope: SoapEnvelope) -> SoapEnvelope:
        """Direct envelope-in / envelope-out calling convention."""
        body = self.invoke(envelope.operation, envelope.body)
        return SoapEnvelope(
            operation=f"{envelope.operation}Response",
            body=body,
            headers=dict(envelope.headers),
        )


class SoapClient:
    """Caller that speaks envelopes to a SOAP service through the bus.

    Transport resets are normalized to :class:`ServiceError`, matching
    :class:`~repro.services.rest.RestClient` — provider failures reach
    callers as one uniform class (faults stay :class:`ServiceFaultError`,
    itself a :class:`ServiceError`).
    """

    def __init__(self, bus, service_name: str) -> None:
        self._bus = bus
        self._service_name = service_name

    def _invoke(self, operation: str, parts: dict, deadline=None):
        try:
            return self._bus.invoke(self._service_name, operation,
                                    parts, deadline=deadline)
        except TransportError as exc:
            raise ServiceError(
                f"transport failure calling {self._service_name}: {exc}"
            ) from exc

    def call(self, operation: str, deadline=None, **parts) -> dict:
        return self._invoke(operation, parts, deadline=deadline)

    def call_envelope(self, envelope: SoapEnvelope,
                      deadline=None) -> SoapEnvelope:
        body = self._invoke(envelope.operation, envelope.body,
                            deadline=deadline)
        return SoapEnvelope(
            operation=f"{envelope.operation}Response",
            body=body,
            headers=dict(envelope.headers),
        )
