"""The advertising service: campaigns, GSP auction, and revenue sharing.

The paper: ads "displayed and configured just like any other content
source", with voluntary monetization that "shares any revenue with the
designer" (Table I). Advertisers run keyword-targeted campaigns with a
bid-per-click and a budget; ad selection runs a generalized second-price
auction over the query's terms; clicks charge the advertiser the GSP price
and credit the application designer their revenue share through a ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NotFoundError, ValidationError
from repro.searchengine.analysis import Analyzer
from repro.services.bus import ServiceDescriptor
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.trace import NULL_TRACER
from repro.util import IdGenerator

__all__ = ["Advertiser", "AdCampaign", "AdResult", "LedgerEntry",
           "AdService"]

_DEFAULT_DESIGNER_SHARE = 0.70  # designer keeps 70% of click revenue


@dataclass
class Advertiser:
    advertiser_id: str
    name: str
    balance: float  # prepaid budget, decremented by click charges


@dataclass
class AdCampaign:
    campaign_id: str
    advertiser_id: str
    keywords: tuple            # analyzed keywords this campaign targets
    bid_per_click: float
    headline: str
    url: str
    body: str = ""
    quality: float = 1.0       # quality score multiplier for ranking
    daily_budget: float = 100.0
    spent_today: float = 0.0
    match_type: str = "broad"  # "broad" | "phrase" | "exact"
    negative_keywords: tuple = ()

    def active(self) -> bool:
        return self.spent_today < self.daily_budget

    def matches(self, query_terms: list) -> bool:
        """Does this campaign target the analyzed query?

        * broad  — any campaign keyword appears anywhere in the query;
        * phrase — the keywords appear, in order, as a contiguous run;
        * exact  — the query's term multiset equals the keywords.

        Negative keywords veto a match regardless of match type.
        """
        term_set = set(query_terms)
        if term_set & set(self.negative_keywords):
            return False
        if self.match_type == "exact":
            return tuple(sorted(query_terms)) == tuple(
                sorted(self.keywords)
            )
        if self.match_type == "phrase":
            k = len(self.keywords)
            return any(
                tuple(query_terms[i:i + k]) == self.keywords
                for i in range(len(query_terms) - k + 1)
            )
        return bool(term_set & set(self.keywords))


@dataclass(frozen=True)
class AdResult:
    """One ad selected for display; ``price_per_click`` is the GSP price."""

    ad_id: str
    campaign_id: str
    headline: str
    url: str
    body: str
    price_per_click: float


@dataclass(frozen=True)
class LedgerEntry:
    timestamp_ms: int
    kind: str            # "impression" | "click"
    campaign_id: str
    app_id: str
    amount: float        # charged to the advertiser (0 for impressions)
    designer_credit: float


class AdService:
    """Keyword ad marketplace with second-price click pricing."""

    name = "adcenter"

    def __init__(self, ids: IdGenerator | None = None,
                 designer_share: float = _DEFAULT_DESIGNER_SHARE) -> None:
        if not 0.0 <= designer_share <= 1.0:
            raise ValidationError("designer share must be within [0, 1]")
        self._ids = ids or IdGenerator()
        self._analyzer = Analyzer()
        self.designer_share = designer_share
        self._advertisers: dict[str, Advertiser] = {}
        self._campaigns: dict[str, AdCampaign] = {}
        self._served: dict[str, AdResult] = {}       # ad_id -> result
        self._served_app: dict[str, str] = {}        # ad_id -> app_id
        self.ledger: list[LedgerEntry] = []
        self._tracer = NULL_TRACER
        self._metrics = NULL_METRICS
        self._events = None

    def attach_telemetry(self, telemetry) -> None:
        """Trace auctions and count impressions/clicks/revenue."""
        self._tracer = telemetry.tracer
        self._metrics = telemetry.metrics
        self._events = telemetry.events

    # -- bus integration -------------------------------------------------------

    def describe(self) -> ServiceDescriptor:
        return ServiceDescriptor(
            name=self.name,
            protocol="rest",
            operations=("GET /ads", "POST /clicks/{ad_id}"),
            description="Keyword advertising with revenue share",
        )

    def invoke(self, operation: str, params: dict):
        if operation == "GET /ads":
            ads = self.select_ads(
                params["query"], params.get("app_id", ""),
                count=int(params.get("count", 2)),
                now_ms=int(params.get("now_ms", 0)),
            )
            return [ad.__dict__ for ad in ads]
        if operation.startswith("POST /clicks/"):
            ad_id = operation.rsplit("/", 1)[-1]
            return self.record_click(
                ad_id, now_ms=int(params.get("now_ms", 0))
            )
        raise NotFoundError(f"ad service has no operation {operation!r}")

    # -- account management -------------------------------------------------------

    def create_advertiser(self, name: str, balance: float) -> Advertiser:
        advertiser = Advertiser(
            self._ids.next_id("advertiser"), name, float(balance)
        )
        self._advertisers[advertiser.advertiser_id] = advertiser
        return advertiser

    def advertiser(self, advertiser_id: str) -> Advertiser:
        try:
            return self._advertisers[advertiser_id]
        except KeyError:
            raise NotFoundError(
                f"no advertiser {advertiser_id!r}"
            ) from None

    def create_campaign(self, advertiser_id: str, keywords, bid_per_click:
                        float, headline: str, url: str, body: str = "",
                        quality: float = 1.0,
                        daily_budget: float = 100.0,
                        match_type: str = "broad",
                        negative_keywords=()) -> AdCampaign:
        self.advertiser(advertiser_id)  # existence check
        if bid_per_click <= 0:
            raise ValidationError("bid per click must be positive")
        if match_type not in ("broad", "phrase", "exact"):
            raise ValidationError(
                f"unknown match type {match_type!r}; expected broad, "
                "phrase, or exact"
            )
        analyzed = []
        for keyword in keywords:
            analyzed.extend(self._analyzer.analyze(keyword))
        if not analyzed:
            raise ValidationError("campaign needs at least one keyword")
        negatives = []
        for keyword in negative_keywords:
            negatives.extend(self._analyzer.analyze(keyword))
        keyword_tuple = (tuple(analyzed) if match_type == "phrase"
                         else tuple(dict.fromkeys(analyzed)))
        campaign = AdCampaign(
            campaign_id=self._ids.next_id("campaign"),
            advertiser_id=advertiser_id,
            keywords=keyword_tuple,
            bid_per_click=float(bid_per_click),
            headline=headline,
            url=url,
            body=body,
            quality=float(quality),
            daily_budget=float(daily_budget),
            match_type=match_type,
            negative_keywords=tuple(dict.fromkeys(negatives)),
        )
        self._campaigns[campaign.campaign_id] = campaign
        return campaign

    def campaign(self, campaign_id: str) -> AdCampaign:
        try:
            return self._campaigns[campaign_id]
        except KeyError:
            raise NotFoundError(f"no campaign {campaign_id!r}") from None

    # -- auction ----------------------------------------------------------------

    def _eligible(self, query_terms: list) -> list[AdCampaign]:
        out = []
        for campaign in self._campaigns.values():
            if not campaign.active():
                continue
            advertiser = self._advertisers[campaign.advertiser_id]
            if advertiser.balance < campaign.bid_per_click:
                continue
            if campaign.matches(query_terms):
                out.append(campaign)
        return out

    def select_ads(self, query: str, app_id: str, count: int = 2,
                   now_ms: int = 0, deadline=None) -> list[AdResult]:
        """Run a GSP auction for ``query`` and return up to ``count`` ads.

        Ranking is by bid × quality; the click price for slot *i* is the
        minimum bid that would keep its rank over slot *i+1* (classic GSP),
        floored at a 1-cent reserve.

        Ads are strictly best-effort: when the query's deadline has
        already run out the auction is refused up front
        (:class:`~repro.errors.DeadlineExceededError`) so an overrun
        query ships its organic results without waiting on monetization.
        """
        if deadline is not None:
            deadline.check("ads:auction")
        with self._tracer.span("ads:auction") as span:
            if span:
                span.set("query", query)
                span.set("app_id", app_id)
            selected = self._run_auction(query, app_id, count, now_ms)
            if span:
                span.set("selected", len(selected))
        if selected and self._metrics.enabled:
            self._metrics.counter("ad_impressions_total").inc(
                len(selected)
            )
        return selected

    def _run_auction(self, query: str, app_id: str, count: int,
                     now_ms: int) -> list[AdResult]:
        terms = self._analyzer.analyze(query)
        eligible = self._eligible(terms)
        eligible.sort(
            key=lambda c: (-c.bid_per_click * c.quality, c.campaign_id)
        )
        selected = []
        for rank, campaign in enumerate(eligible[:count]):
            if rank + 1 < len(eligible):
                runner_up = eligible[rank + 1]
                price = (runner_up.bid_per_click * runner_up.quality
                         / campaign.quality) + 0.01
                price = min(price, campaign.bid_per_click)
            else:
                price = 0.01  # reserve price
            ad_id = self._ids.next_id("ad")
            result = AdResult(
                ad_id=ad_id,
                campaign_id=campaign.campaign_id,
                headline=campaign.headline,
                url=campaign.url,
                body=campaign.body,
                price_per_click=round(max(price, 0.01), 2),
            )
            self._served[ad_id] = result
            self._served_app[ad_id] = app_id
            self.ledger.append(LedgerEntry(
                timestamp_ms=now_ms, kind="impression",
                campaign_id=campaign.campaign_id, app_id=app_id,
                amount=0.0, designer_credit=0.0,
            ))
            selected.append(result)
        return selected

    def record_click(self, ad_id: str, now_ms: int = 0) -> dict:
        """Charge the advertiser and credit the designer for one click."""
        ad = self._served.get(ad_id)
        if ad is None:
            raise NotFoundError(f"no served ad {ad_id!r}")
        campaign = self.campaign(ad.campaign_id)
        advertiser = self.advertiser(campaign.advertiser_id)
        charge = min(ad.price_per_click, advertiser.balance)
        advertiser.balance = round(advertiser.balance - charge, 2)
        campaign.spent_today = round(campaign.spent_today + charge, 2)
        credit = round(charge * self.designer_share, 4)
        app_id = self._served_app.get(ad_id, "")
        self.ledger.append(LedgerEntry(
            timestamp_ms=now_ms, kind="click",
            campaign_id=campaign.campaign_id, app_id=app_id,
            amount=charge, designer_credit=credit,
        ))
        if self._metrics.enabled:
            self._metrics.counter("ad_clicks_total").inc()
            self._metrics.counter("ad_revenue_total").inc(charge)
        if self._events is not None:
            self._events.emit(
                "ad.click", ad_id=ad_id,
                campaign_id=campaign.campaign_id, app_id=app_id,
                charged=charge, designer_credit=credit,
            )
        return {"ad_id": ad_id, "charged": charge,
                "designer_credit": credit}

    # -- reporting ----------------------------------------------------------------

    def designer_earnings(self, app_id: str) -> float:
        return round(sum(
            entry.designer_credit for entry in self.ledger
            if entry.app_id == app_id and entry.kind == "click"
        ), 4)

    def advertiser_spend(self, advertiser_id: str) -> float:
        campaign_ids = {
            c.campaign_id for c in self._campaigns.values()
            if c.advertiser_id == advertiser_id
        }
        return round(sum(
            entry.amount for entry in self.ledger
            if entry.campaign_id in campaign_ids and entry.kind == "click"
        ), 4)

    def platform_revenue(self) -> float:
        """Total click revenue retained by the platform (1 - share)."""
        return round(sum(
            entry.amount - entry.designer_credit for entry in self.ledger
            if entry.kind == "click"
        ), 4)

    # -- persistence ---------------------------------------------------------------

    def export_state(self) -> dict:
        """Serializable marketplace state (accounts, campaigns, ledger)."""
        return {
            "designer_share": self.designer_share,
            "advertisers": [
                {"advertiser_id": a.advertiser_id, "name": a.name,
                 "balance": a.balance}
                for a in self._advertisers.values()
            ],
            "campaigns": [
                {
                    "campaign_id": c.campaign_id,
                    "advertiser_id": c.advertiser_id,
                    "keywords": list(c.keywords),
                    "bid_per_click": c.bid_per_click,
                    "headline": c.headline,
                    "url": c.url,
                    "body": c.body,
                    "quality": c.quality,
                    "daily_budget": c.daily_budget,
                    "spent_today": c.spent_today,
                    "match_type": c.match_type,
                    "negative_keywords": list(c.negative_keywords),
                }
                for c in self._campaigns.values()
            ],
            "ledger": [
                {"timestamp_ms": e.timestamp_ms, "kind": e.kind,
                 "campaign_id": e.campaign_id, "app_id": e.app_id,
                 "amount": e.amount,
                 "designer_credit": e.designer_credit}
                for e in self.ledger
            ],
        }

    def restore_state(self, data: dict) -> None:
        """Load a previously exported marketplace state."""
        self.designer_share = data.get("designer_share",
                                       self.designer_share)
        for entry in data.get("advertisers", ()):
            self._advertisers[entry["advertiser_id"]] = Advertiser(
                entry["advertiser_id"], entry["name"],
                float(entry["balance"]),
            )
        for entry in data.get("campaigns", ()):
            campaign = AdCampaign(
                campaign_id=entry["campaign_id"],
                advertiser_id=entry["advertiser_id"],
                keywords=tuple(entry["keywords"]),
                bid_per_click=entry["bid_per_click"],
                headline=entry["headline"],
                url=entry["url"],
                body=entry.get("body", ""),
                quality=entry.get("quality", 1.0),
                daily_budget=entry.get("daily_budget", 100.0),
                spent_today=entry.get("spent_today", 0.0),
                match_type=entry.get("match_type", "broad"),
                negative_keywords=tuple(
                    entry.get("negative_keywords", ())
                ),
            )
            self._campaigns[campaign.campaign_id] = campaign
        for entry in data.get("ledger", ()):
            self.ledger.append(LedgerEntry(
                timestamp_ms=entry["timestamp_ms"],
                kind=entry["kind"],
                campaign_id=entry["campaign_id"],
                app_id=entry["app_id"],
                amount=entry["amount"],
                designer_credit=entry["designer_credit"],
            ))
