"""In-process service bus.

Services register under a name; callers invoke operations through the bus,
which charges simulated latency, injects faults per policy, and keeps
per-service call statistics. REST and SOAP bindings both sit on top of this
single dispatch point so "keep data in-house and reach it as a service"
(the paper's real-time freshness story) is one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    NotFoundError,
    ServiceError,
    TransportError,
)
from repro.util import SimClock, deterministic_rng

__all__ = ["ServiceDescriptor", "CallStats", "ServiceBus"]


@dataclass(frozen=True)
class ServiceDescriptor:
    """Registry metadata for one service."""

    name: str
    protocol: str          # "rest" | "soap"
    operations: tuple      # operation names
    description: str = ""


@dataclass
class CallStats:
    calls: int = 0
    failures: int = 0
    total_latency_ms: float = 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.total_latency_ms / self.calls if self.calls else 0.0


class ServiceBus:
    """Routes invocations to registered services."""

    def __init__(self, clock: SimClock | None = None,
                 base_latency_ms: float = 18.0,
                 failure_probability: float = 0.0,
                 latency_spike_ms: float = 0.0,
                 latency_spike_probability: float = 0.0,
                 seed: object = 0) -> None:
        self.clock = clock or SimClock()
        self.base_latency_ms = base_latency_ms
        self.failure_probability = failure_probability
        self.latency_spike_ms = latency_spike_ms
        self.latency_spike_probability = latency_spike_probability
        self._seed = seed
        self._sequence = 0
        self._services: dict[str, object] = {}
        self._stats: dict[str, CallStats] = {}
        self._fault_profiles: dict[str, dict] = {}

    def set_fault_profile(self, name: str,
                          failure_probability: float | None = None,
                          latency_spike_ms: float | None = None,
                          latency_spike_probability: float | None = None
                          ) -> None:
        """Override the bus-wide fault knobs for one service.

        ``None`` keeps the bus default for that knob. The chaos harness
        uses this for per-source error rates and latency spikes.
        """
        self._fault_profiles[name] = {
            "failure_probability": failure_probability,
            "latency_spike_ms": latency_spike_ms,
            "latency_spike_probability": latency_spike_probability,
        }

    def _knob(self, name: str, knob: str) -> float:
        profile = self._fault_profiles.get(name)
        if profile is not None and profile[knob] is not None:
            return profile[knob]
        return getattr(self, knob)

    def register(self, service) -> ServiceDescriptor:
        descriptor = service.describe()
        self._services[descriptor.name] = service
        self._stats.setdefault(descriptor.name, CallStats())
        return descriptor

    def unregister(self, name: str) -> None:
        if name not in self._services:
            raise NotFoundError(f"no service registered as {name!r}")
        del self._services[name]

    def service(self, name: str):
        try:
            return self._services[name]
        except KeyError:
            raise NotFoundError(
                f"no service registered as {name!r}"
            ) from None

    def describe_service(self, name: str) -> dict:
        """Directory entry for one service: descriptor, stats, and (for
        SOAP services) the WSDL-lite contract — what the designer's
        palette shows before a service source is added."""
        service = self.service(name)
        entry = {
            "descriptor": service.describe(),
            "stats": self.stats(name),
        }
        wsdl = getattr(service, "wsdl", None)
        if callable(wsdl):
            entry["wsdl"] = wsdl()
        return entry

    def descriptors(self) -> list[ServiceDescriptor]:
        return sorted(
            (s.describe() for s in self._services.values()),
            key=lambda d: d.name,
        )

    def stats(self, name: str) -> CallStats:
        return self._stats.setdefault(name, CallStats())

    def invoke(self, name: str, operation: str, params: dict,
               deadline=None):
        """Dispatch ``operation`` on service ``name`` with fault injection.

        When a :class:`~repro.resilience.Deadline` is passed, the call
        is refused before dispatch if the budget already ran out, and
        abandoned (a client-side timeout — the handler never runs) if
        charging the transport latency exhausts it mid-flight.

        Transport-level failures raised by handlers are normalized to
        :class:`ServiceError`, so REST and SOAP callers see one uniform
        provider-failure class.
        """
        if deadline is not None:
            deadline.check(f"bus:{name}.{operation}")
        service = self.service(name)
        stats = self.stats(name)
        latency = self.base_latency_ms
        self._sequence += 1
        spike_probability = self._knob(name, "latency_spike_probability")
        if spike_probability:
            draw = deterministic_rng(
                (self._seed, "bus-latency", self._sequence)
            ).random()
            if draw < spike_probability:
                latency += self._knob(name, "latency_spike_ms")
        self.clock.advance(latency)
        stats.calls += 1
        stats.total_latency_ms += latency
        if deadline is not None and deadline.expired:
            stats.failures += 1
            deadline.check(f"bus:{name}.{operation}")
        failure_probability = self._knob(name, "failure_probability")
        if failure_probability:
            draw = deterministic_rng(
                (self._seed, "bus", self._sequence)
            ).random()
            if draw < failure_probability:
                stats.failures += 1
                raise ServiceError(
                    f"simulated outage calling {name}.{operation}"
                )
        try:
            return service.invoke(operation, params)
        except TransportError as exc:
            stats.failures += 1
            raise ServiceError(
                f"transport failure calling {name}.{operation}: {exc}"
            ) from exc
        except ServiceError:
            stats.failures += 1
            raise
