"""Sample services used by examples, tests, and benchmarks.

* :class:`PricingService` — the "real-time pricing and in-stock service"
  from the GamerQueen narrative (§II-B), REST-bound;
* :class:`ReviewArchiveService` — a SOAP-bound archive of editorial
  reviews per entity, exercising the envelope/fault path;
* :class:`WeatherService` — a REST lookup used by the travel example.
"""

from __future__ import annotations

from repro.errors import ServiceFaultError, ServiceError
from repro.services.rest import RestService
from repro.services.soap import SoapOperation, SoapService
from repro.util import deterministic_rng, slugify

__all__ = ["PricingService", "ReviewArchiveService", "WeatherService"]


class PricingService(RestService):
    """Real-time price and stock lookups keyed by product title or SKU."""

    name = "pricing"
    description = "Real-time pricing and in-stock levels"

    def __init__(self, seed: object = 0) -> None:
        super().__init__()
        self._seed = seed
        self._overrides: dict[str, dict] = {}
        self.route("GET /prices/{sku}", self._get_price)
        self.route("POST /prices/{sku}", self._set_price)

    def _sku(self, title_or_sku: str) -> str:
        return slugify(title_or_sku)

    def set_price(self, title_or_sku: str, price: float,
                  stock: int) -> None:
        self._overrides[self._sku(title_or_sku)] = {
            "price": round(float(price), 2),
            "stock": int(stock),
        }

    def _default_quote(self, sku: str) -> dict:
        rng = deterministic_rng((self._seed, "price", sku))
        return {
            "price": round(rng.uniform(9.99, 79.99), 2),
            "stock": rng.randint(0, 40),
        }

    def _get_price(self, params: dict) -> dict:
        sku = self._sku(params["sku"])
        quote = self._overrides.get(sku) or self._default_quote(sku)
        return {
            "sku": sku,
            "price": quote["price"],
            "stock": quote["stock"],
            "in_stock": quote["stock"] > 0,
            "currency": params.get("currency", "USD"),
        }

    def _set_price(self, params: dict) -> dict:
        try:
            price = float(params["price"])
            stock = int(params["stock"])
        except (KeyError, ValueError) as exc:
            raise ServiceError(f"bad price update: {exc}") from exc
        self.set_price(params["sku"], price, stock)
        return {"sku": self._sku(params["sku"]), "updated": True}


class ReviewArchiveService(SoapService):
    """SOAP archive of editorial reviews, keyed by entity name."""

    name = "review-archive"
    description = "Editorial review archive (SOAP)"

    def __init__(self, web=None, seed: object = 0) -> None:
        super().__init__()
        self._seed = seed
        self._reviews: dict[str, list[dict]] = {}
        if web is not None:
            self._seed_from_web(web)
        self.operation(
            SoapOperation(
                name="GetReviews",
                input_parts=("entity",),
                output_parts=("entity", "reviews"),
                documentation="All archived reviews for an entity",
            ),
            self._get_reviews,
        )
        self.operation(
            SoapOperation(
                name="GetAverageScore",
                input_parts=("entity",),
                output_parts=("entity", "average", "count"),
                documentation="Mean editorial score for an entity",
            ),
            self._get_average,
        )

    def _seed_from_web(self, web) -> None:
        """Derive an archive from the synthetic web's entity pages."""
        for page in web.pages.values():
            if not page.entity:
                continue
            rng = deterministic_rng((self._seed, "review", page.url))
            self._reviews.setdefault(page.entity.lower(), []).append({
                "source": page.site,
                "url": page.url,
                "score": round(rng.uniform(3.0, 9.8), 1),
                "excerpt": page.snippet,
            })

    def add_review(self, entity: str, source: str, score: float,
                   excerpt: str = "", url: str = "") -> None:
        self._reviews.setdefault(entity.lower(), []).append({
            "source": source, "url": url,
            "score": round(float(score), 1), "excerpt": excerpt,
        })

    def _lookup(self, entity: str) -> list[dict]:
        reviews = self._reviews.get(entity.strip().lower())
        if not reviews:
            raise ServiceFaultError(
                "Client.UnknownEntity",
                f"no archived reviews for {entity!r}",
            )
        return reviews

    def _get_reviews(self, params: dict) -> dict:
        entity = params["entity"]
        return {"entity": entity, "reviews": list(self._lookup(entity))}

    def _get_average(self, params: dict) -> dict:
        entity = params["entity"]
        reviews = self._lookup(entity)
        average = sum(r["score"] for r in reviews) / len(reviews)
        return {
            "entity": entity,
            "average": round(average, 2),
            "count": len(reviews),
        }


class WeatherService(RestService):
    """Deterministic synthetic weather per destination."""

    name = "weather"
    description = "Current conditions by destination"

    _CONDITIONS = ("sunny", "cloudy", "rain", "snow", "windy")

    def __init__(self, seed: object = 0) -> None:
        super().__init__()
        self._seed = seed
        self.route("GET /weather/{place}", self._get_weather)

    def _get_weather(self, params: dict) -> dict:
        place = slugify(params["place"])
        rng = deterministic_rng((self._seed, "weather", place))
        return {
            "place": place,
            "condition": rng.choice(self._CONDITIONS),
            "temperature_c": round(rng.uniform(-10.0, 38.0), 1),
            "humidity": rng.randint(20, 95),
        }
