"""Topic vocabularies used to fabricate the synthetic web.

Each topic carries a vocabulary of content words, entity name parts, and a
set of well-known site domains (including the review sites named in the
paper's GamerQueen example: gamespot.com, ign.com, teamxbox.com). Text is
sampled with a Zipf-like distribution so term frequencies look like real
language and ranking behaves sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import deterministic_rng

__all__ = ["TopicVocabulary", "topic_vocabulary", "TOPICS"]

_GENERIC_WORDS = [
    "the", "a", "of", "and", "to", "in", "for", "with", "on", "about",
    "best", "new", "guide", "review", "top", "latest", "official", "free",
    "online", "full", "great", "classic", "popular", "complete", "ultimate",
    "list", "find", "compare", "buy", "price", "deal", "release", "edition",
]

_TOPIC_DATA: dict[str, dict[str, list[str]]] = {
    "video_games": {
        "words": [
            "game", "gameplay", "console", "controller", "multiplayer",
            "campaign", "quest", "level", "boss", "graphics", "soundtrack",
            "rpg", "shooter", "platformer", "strategy", "arcade", "pixel",
            "achievement", "xbox", "playstation", "nintendo", "sequel",
            "trailer", "demo", "patch", "mod", "speedrun", "walkthrough",
            "cheats", "lore", "studio", "publisher", "frame", "rating",
            "score", "combo", "inventory", "loot", "dungeon", "raid",
        ],
        "entities": [
            "Halo", "Zelda", "Mario", "Portal", "Bioshock", "Fallout",
            "Starcraft", "Warcraft", "Gears", "Fable", "Oblivion", "Crysis",
            "Tetris", "Myst", "Doom", "Quake", "Spore", "Braid", "Okami",
            "Ico", "Shadow", "Chrono", "Metroid", "Kirby", "Pikmin",
        ],
        "entity_suffixes": [
            "Odyssey", "Legends", "Chronicles", "Reborn", "II", "III",
            "Origins", "Unlimited", "Arena", "Tactics", "Online", "Zero",
        ],
        "sites": [
            "gamespot.com", "ign.com", "teamxbox.com", "gamerhub.example",
            "pixelpress.example", "joystiq.example", "criticalplay.example",
        ],
    },
    "wine": {
        "words": [
            "wine", "vintage", "grape", "vineyard", "tannin", "bouquet",
            "cellar", "oak", "barrel", "terroir", "cabernet", "merlot",
            "chardonnay", "pinot", "riesling", "zinfandel", "syrah",
            "sommelier", "pairing", "decant", "aroma", "finish", "acidity",
            "bottle", "cork", "estate", "harvest", "appellation", "blend",
            "tasting", "notes", "fruit", "berry", "citrus", "spice",
        ],
        "entities": [
            "Silverado", "Duckhorn", "Chateau", "Ridge", "Opus", "Caymus",
            "Stag", "Meridian", "Columbia", "Willamette", "Sonoma", "Napa",
            "Barolo", "Rioja", "Margaux", "Pomerol", "Chianti", "Mosel",
        ],
        "entity_suffixes": [
            "Reserve", "Estate", "Valley", "Hills", "Creek", "Crest",
            "Cellars", "Vineyards", "Selection", "Blanc", "Noir", "Rouge",
        ],
        "sites": [
            "winespectator.example", "cellartracker.example",
            "vinography.example", "decanterly.example", "grapenotes.example",
        ],
    },
    "movies": {
        "words": [
            "movie", "film", "director", "actor", "actress", "screenplay",
            "cinema", "scene", "plot", "sequel", "trilogy", "premiere",
            "drama", "comedy", "thriller", "documentary", "animation",
            "cinematography", "casting", "studio", "boxoffice", "critic",
            "award", "oscar", "festival", "trailer", "soundtrack", "role",
            "performance", "adaptation", "remake", "screening", "reel",
        ],
        "entities": [
            "Inception", "Casablanca", "Vertigo", "Chinatown", "Amelie",
            "Gladiator", "Memento", "Alien", "Rocky", "Jaws", "Psycho",
            "Heat", "Fargo", "Goodfellas", "Rashomon", "Metropolis",
        ],
        "entity_suffixes": [
            "Returns", "Rising", "Forever", "Begins", "Redux", "Part II",
            "Untold", "Legacy", "Dawn", "Nights", "Story", "Affair",
        ],
        "sites": [
            "imdb.example", "rottenreels.example", "screenrant.example",
            "filmdaily.example", "cinephile.example",
        ],
    },
    "health": {
        "words": [
            "health", "symptom", "treatment", "diagnosis", "doctor",
            "nutrition", "vitamin", "exercise", "therapy", "clinic",
            "allergy", "immune", "diet", "sleep", "stress", "wellness",
            "medication", "dosage", "recovery", "prevention", "chronic",
            "cardio", "protein", "fitness", "hydration", "checkup",
        ],
        "entities": [
            "Mayo", "WebMD", "Cleveland", "Hopkins", "Wellness", "CarePlus",
            "VitalSigns", "MedLine", "HealthWise", "NutriCore",
        ],
        "entity_suffixes": [
            "Clinic", "Center", "Institute", "Guide", "Daily", "Journal",
        ],
        "sites": [
            "webmd.example", "mayoclinic.example", "healthline.example",
            "medlineplus.example",
        ],
    },
    "travel": {
        "words": [
            "travel", "flight", "hotel", "itinerary", "destination",
            "beach", "mountain", "museum", "tour", "passport", "visa",
            "luggage", "booking", "resort", "hostel", "landmark", "cruise",
            "adventure", "backpacking", "airfare", "layover", "excursion",
            "sightseeing", "culture", "cuisine", "local", "island",
        ],
        "entities": [
            "Kyoto", "Lisbon", "Patagonia", "Santorini", "Reykjavik",
            "Marrakech", "Queenstown", "Havana", "Zanzibar", "Banff",
            "Tulum", "Dubrovnik", "Hanoi", "Cusco", "Valletta",
        ],
        "entity_suffixes": [
            "Getaway", "Escape", "Guide", "Journey", "Trails", "Diaries",
        ],
        "sites": [
            "expedia.example", "lonelyplanet.example", "tripnotes.example",
            "wanderwise.example",
        ],
    },
    "news": {
        "words": [
            "breaking", "report", "announcement", "statement", "press",
            "conference", "election", "market", "economy", "policy",
            "government", "industry", "technology", "launch", "update",
            "investigation", "analysis", "interview", "coverage", "source",
            "official", "quarterly", "forecast", "summit", "agreement",
        ],
        "entities": [
            "Reuters", "Associated", "Tribune", "Herald", "Gazette",
            "Chronicle", "Observer", "Dispatch", "Courier", "Sentinel",
        ],
        "entity_suffixes": [
            "Daily", "Weekly", "Times", "Post", "Wire", "Report",
        ],
        "sites": [
            "worldwire.example", "dailybrief.example", "newsroom.example",
            "thegazette.example", "morningpost.example",
        ],
    },
    "tech": {
        "words": [
            "software", "hardware", "startup", "cloud", "database",
            "algorithm", "platform", "api", "framework", "release",
            "developer", "opensource", "security", "encryption", "mobile",
            "browser", "server", "network", "benchmark", "processor",
            "storage", "interface", "protocol", "latency", "scaling",
        ],
        "entities": [
            "Nimbus", "Vertex", "Quanta", "Lattice", "Kernel", "Photon",
            "Cobalt", "Zenith", "Helix", "Tensor", "Raster", "Citadel",
        ],
        "entity_suffixes": [
            "Labs", "Systems", "Works", "Stack", "Forge", "Hub",
        ],
        "sites": [
            "techcrunchy.example", "arsdigita.example", "hackerwire.example",
            "stackreport.example",
        ],
    },
}

TOPICS = tuple(sorted(_TOPIC_DATA))


@dataclass(frozen=True)
class TopicVocabulary:
    """The word and naming material for one topic domain."""

    topic: str
    words: tuple[str, ...]
    entities: tuple[str, ...]
    entity_suffixes: tuple[str, ...]
    sites: tuple[str, ...]

    def sample_words(self, rng, count: int) -> list[str]:
        """Sample ``count`` words Zipf-ishly from topic + generic vocab.

        The first words of the (topic, generic) pools are proportionally
        more likely, which gives realistic head/tail term statistics.
        """
        pool = list(self.words) + _GENERIC_WORDS
        out = []
        n = len(pool)
        for _ in range(count):
            # Inverse-CDF of an approximate Zipf over ranks 1..n.
            rank = int(n ** rng.random()) - 1
            out.append(pool[max(0, min(rank, n - 1))])
        return out

    def sample_entity(self, rng) -> str:
        """A two-part proper name like ``Halo Chronicles``."""
        head = rng.choice(self.entities)
        if rng.random() < 0.7:
            return f"{head} {rng.choice(self.entity_suffixes)}"
        return head

    def sample_sentence(self, rng, min_words: int = 6,
                        max_words: int = 14) -> str:
        words = self.sample_words(rng, rng.randint(min_words, max_words))
        if rng.random() < 0.35:
            words.insert(rng.randrange(len(words)),
                         self.sample_entity(rng).lower())
        sentence = " ".join(words)
        return sentence[0].upper() + sentence[1:] + "."

    def sample_paragraph(self, rng, sentences: int = 4) -> str:
        return " ".join(self.sample_sentence(rng) for _ in range(sentences))


def topic_vocabulary(topic: str) -> TopicVocabulary:
    """Return the vocabulary for ``topic`` (one of :data:`TOPICS`)."""
    try:
        data = _TOPIC_DATA[topic]
    except KeyError:
        raise KeyError(
            f"unknown topic {topic!r}; expected one of {', '.join(TOPICS)}"
        ) from None
    return TopicVocabulary(
        topic=topic,
        words=tuple(data["words"]),
        entities=tuple(data["entities"]),
        entity_suffixes=tuple(data["entity_suffixes"]),
        sites=tuple(data["sites"]),
    )


def all_known_sites() -> list[str]:
    """Every well-known domain across topics (deduplicated, sorted)."""
    seen = set()
    for data in _TOPIC_DATA.values():
        seen.update(data["sites"])
    return sorted(seen)


def example_rng(seed: object):
    """Convenience used by doctests and examples."""
    return deterministic_rng(seed)
