"""robots.txt for the synthetic web.

Sites publish crawl rules; the crawler fetches and honours them. Rules
are generated deterministically per domain: every site disallows its
``/private/`` tree, and a seeded minority of sites disallow deeper
sections or everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import deterministic_rng

__all__ = ["RobotsRules", "parse_robots", "robots_txt_for"]


@dataclass(frozen=True)
class RobotsRules:
    """Parsed Disallow rules for the wildcard user-agent."""

    disallow: tuple = ()

    def allows(self, path: str) -> bool:
        if not path.startswith("/"):
            path = "/" + path
        return not any(path.startswith(prefix)
                       for prefix in self.disallow if prefix)

    @property
    def blocks_everything(self) -> bool:
        return "/" in self.disallow


def parse_robots(text: str) -> RobotsRules:
    """Parse the ``User-agent: *`` section of a robots.txt document.

    Minimal, standard-shaped parsing: sections start at ``User-agent``
    lines; only the wildcard section's ``Disallow`` rules apply.
    """
    disallow: list[str] = []
    applies = False
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        key, __, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if key == "user-agent":
            applies = value == "*"
        elif key == "disallow" and applies:
            if value:
                disallow.append(value)
    return RobotsRules(tuple(disallow))


def robots_txt_for(domain: str, seed: object = 2010) -> str:
    """The deterministic robots.txt a synthetic site serves."""
    rng = deterministic_rng((seed, "robots", domain))
    lines = ["User-agent: *", "Disallow: /private/"]
    if rng.random() < 0.15:
        lines.append("Disallow: /news/")
    if rng.random() < 0.05:
        lines = ["User-agent: *", "Disallow: /"]
    lines.append("")
    lines.append("User-agent: evilbot")
    lines.append("Disallow: /")
    return "\n".join(lines)
