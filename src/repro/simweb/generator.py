"""Deterministic generator for the synthetic web.

Given a :class:`WebSpec`, :class:`WebGenerator` fabricates a
:class:`~repro.simweb.model.SyntheticWeb` whose content, entities, and
hyperlink structure are reproducible from the seed. Entities (game titles,
wines, films...) recur across pages, images, videos, and news on multiple
sites, which is what makes supplemental "focused web search" in the core
platform return meaningfully related results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simweb.model import (
    ImageAsset,
    NewsArticle,
    Page,
    Site,
    SyntheticWeb,
    VideoAsset,
)
from repro.simweb.vocab import TOPICS, topic_vocabulary
from repro.util import deterministic_rng, slugify

__all__ = ["WebSpec", "WebGenerator"]

_DAY_MS = 24 * 3600 * 1000


@dataclass(frozen=True)
class WebSpec:
    """Size and shape parameters for the fabricated web."""

    seed: int = 2010
    topics: tuple[str, ...] = TOPICS
    extra_sites_per_topic: int = 3     # synthetic sites beyond well-known ones
    pages_per_site: int = 24
    images_per_site: int = 8
    videos_per_site: int = 5
    news_per_site: int = 10
    outlinks_per_page: int = 4
    epoch_ms: int = 1_262_304_000_000  # 2010-01-01
    history_days: int = 365


@dataclass
class WebGenerator:
    """Builds a :class:`SyntheticWeb` from a :class:`WebSpec`."""

    spec: WebSpec = field(default_factory=WebSpec)

    def build(self) -> SyntheticWeb:
        web = SyntheticWeb()
        entities_by_topic: dict[str, list[str]] = {}
        for topic in self.spec.topics:
            vocab = topic_vocabulary(topic)
            rng = deterministic_rng((self.spec.seed, "entities", topic))
            # A recurring entity pool per topic: these names thread through
            # pages, media, and news so cross-source joins find matches.
            pool = []
            seen = set()
            while len(pool) < 30:
                name = vocab.sample_entity(rng)
                if name not in seen:
                    seen.add(name)
                    pool.append(name)
            entities_by_topic[topic] = pool
            web.entities[topic] = list(pool)
            for domain in self._domains_for(topic, vocab):
                well_known = domain in vocab.sites
                self._build_site(web, domain, topic, vocab, pool, well_known)
        self._wire_links(web)
        return web

    # -- site construction -------------------------------------------------

    def _domains_for(self, topic: str, vocab) -> list[str]:
        domains = list(vocab.sites)
        rng = deterministic_rng((self.spec.seed, "domains", topic))
        for _ in range(self.spec.extra_sites_per_topic):
            name = slugify(vocab.sample_entity(rng))
            domains.append(f"{name}.{topic.replace('_', '')}.example")
        return domains

    def _build_site(self, web, domain, topic, vocab, entity_pool,
                    well_known: bool = False) -> None:
        rng = deterministic_rng((self.spec.seed, "site", domain))
        site = Site(
            domain=domain,
            topic=topic,
            title=f"{domain.split('.')[0].title()} — "
                  f"{topic.replace('_', ' ').title()}",
            # Well-known sites (gamespot.com, ign.com...) get high authority
            # so they surface first under site restriction — the behaviour
            # the GamerQueen walkthrough in §II-B depends on.
            authority_hint=(round(rng.uniform(0.7, 1.0), 3) if well_known
                            else round(rng.uniform(0.2, 0.8), 3)),
        )
        web.add_site(site)
        if well_known:
            self._build_entity_pages(web, site, vocab, entity_pool, rng)
        self._build_pages(web, site, vocab, entity_pool, rng)
        self._build_images(web, site, vocab, entity_pool, rng)
        self._build_videos(web, site, vocab, entity_pool, rng)
        self._build_news(web, site, vocab, entity_pool, rng)

    def _published(self, rng) -> int:
        offset_days = rng.randint(0, self.spec.history_days)
        return self.spec.epoch_ms + offset_days * _DAY_MS

    def _build_entity_pages(self, web, site, vocab, entity_pool,
                            rng) -> None:
        """One review/detail page per topic entity on well-known sites.

        This guarantees that a focused, site-restricted supplemental search
        for any inventory title (drawn from the same entity pool) has
        something to find — mirroring how gamespot/ign really do cover
        every major title.
        """
        for i, entity in enumerate(entity_pool):
            kind = rng.choice(("Review", "Preview", "Guide", "Interview"))
            title = f"{entity} {kind}"
            body = (
                f"{entity} {vocab.sample_sentence(rng, 8, 14)} "
                f"{kind.lower()} {vocab.sample_paragraph(rng, sentences=4)} "
                f"Read the full {entity} review and rating. "
                f"{entity} {vocab.sample_sentence(rng, 5, 9)}"
            )
            web.add_page(Page(
                url=f"http://{site.domain}/{slugify(title)}-e{i}",
                site=site.domain,
                topic=site.topic,
                title=title,
                body=body,
                published_ms=self._published(rng),
                entity=entity,
            ))

    def _build_pages(self, web, site, vocab, entity_pool, rng) -> None:
        for i in range(self.spec.pages_per_site):
            entity = rng.choice(entity_pool) if rng.random() < 0.75 else None
            title_words = " ".join(vocab.sample_words(rng, 4)).title()
            title = f"{entity} {title_words}" if entity else title_words
            body = vocab.sample_paragraph(rng, sentences=5)
            if entity:
                # Mention the entity several times so term statistics favour
                # the page when the entity is the query.
                mentions = " ".join(
                    f"{entity} {vocab.sample_sentence(rng, 4, 8)}"
                    for _ in range(2)
                )
                body = f"{body} {mentions}"
            web.add_page(Page(
                url=f"http://{site.domain}/{slugify(title)}-{i}",
                site=site.domain,
                topic=site.topic,
                title=title,
                body=body,
                published_ms=self._published(rng),
                entity=entity,
            ))

    def _build_images(self, web, site, vocab, entity_pool, rng) -> None:
        for i in range(self.spec.images_per_site):
            entity = rng.choice(entity_pool) if rng.random() < 0.8 else None
            caption_tail = " ".join(vocab.sample_words(rng, 3))
            caption = (f"{entity} {caption_tail}" if entity
                       else caption_tail).strip()
            web.add_image(ImageAsset(
                url=f"http://{site.domain}/img/{slugify(caption)}-{i}.jpg",
                site=site.domain,
                topic=site.topic,
                caption=caption,
                width=rng.choice((320, 640, 800, 1024)),
                height=rng.choice((240, 480, 600, 768)),
                entity=entity,
            ))

    def _build_videos(self, web, site, vocab, entity_pool, rng) -> None:
        for i in range(self.spec.videos_per_site):
            entity = rng.choice(entity_pool) if rng.random() < 0.8 else None
            base = " ".join(vocab.sample_words(rng, 3)).title()
            title = f"{entity} — {base}" if entity else base
            web.add_video(VideoAsset(
                url=f"http://{site.domain}/video/{slugify(title)}-{i}",
                site=site.domain,
                topic=site.topic,
                title=title,
                description=vocab.sample_sentence(rng, 8, 16),
                duration_s=rng.randint(30, 1200),
                entity=entity,
            ))

    def _build_news(self, web, site, vocab, entity_pool, rng) -> None:
        for i in range(self.spec.news_per_site):
            entity = rng.choice(entity_pool) if rng.random() < 0.7 else None
            head_tail = " ".join(vocab.sample_words(rng, 5)).capitalize()
            headline = f"{entity}: {head_tail}" if entity else head_tail
            web.add_news(NewsArticle(
                url=f"http://{site.domain}/news/{slugify(headline)}-{i}",
                site=site.domain,
                topic=site.topic,
                headline=headline,
                body=vocab.sample_paragraph(rng, sentences=6),
                published_ms=self._published(rng),
                entity=entity,
            ))

    # -- link structure -----------------------------------------------------

    def _wire_links(self, web: SyntheticWeb) -> None:
        """Attach outlinks: mostly same-topic, authority-weighted targets."""
        by_topic: dict[str, list[Page]] = {}
        for page in web.pages.values():
            by_topic.setdefault(page.topic, []).append(page)
        for topic, pages in by_topic.items():
            pages.sort(key=lambda p: p.url)
        all_pages = sorted(web.pages.values(), key=lambda p: p.url)
        rng = deterministic_rng((self.spec.seed, "links"))

        def weight(page: Page) -> float:
            return web.sites[page.site].authority_hint

        rewired = {}
        for page in all_pages:
            candidates = by_topic[page.topic]
            if rng.random() < 0.15:
                candidates = all_pages  # occasional cross-topic link
            weights = [weight(p) for p in candidates]
            picks = rng.choices(
                candidates, weights=weights,
                k=min(self.spec.outlinks_per_page, len(candidates)),
            )
            outlinks = tuple(dict.fromkeys(
                p.url for p in picks if p.url != page.url
            ))
            rewired[page.url] = Page(
                url=page.url, site=page.site, topic=page.topic,
                title=page.title, body=page.body, outlinks=outlinks,
                published_ms=page.published_ms, entity=page.entity,
            )
        web.pages = rewired
