"""Synthetic web substrate.

The paper's prototype sits on top of Bing; this reproduction replaces the
live web with a deterministic synthetic one. :class:`~repro.simweb.generator.
WebGenerator` fabricates sites, pages, media assets, news articles, and the
hyperlink graph across several topic domains. The search-engine substrate
(:mod:`repro.searchengine`) indexes this web, the crawler ingests it, and
RSS feeds are published from it — so every code path that would have touched
the internet touches the simulation instead.
"""

from repro.simweb.model import (
    ImageAsset,
    NewsArticle,
    Page,
    Site,
    SyntheticWeb,
    VideoAsset,
)
from repro.simweb.generator import WebGenerator, WebSpec
from repro.simweb.vocab import TOPICS, TopicVocabulary, topic_vocabulary

__all__ = [
    "ImageAsset",
    "NewsArticle",
    "Page",
    "Site",
    "SyntheticWeb",
    "VideoAsset",
    "WebGenerator",
    "WebSpec",
    "TOPICS",
    "TopicVocabulary",
    "topic_vocabulary",
]
