"""Entity model for the synthetic web.

A :class:`SyntheticWeb` holds sites, each of which hosts pages and media
assets, plus the cross-site hyperlink graph. Everything is a plain frozen
dataclass so the web can be shared safely between the engine, crawler, and
feed publishers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NotFoundError

__all__ = [
    "Site",
    "Page",
    "ImageAsset",
    "VideoAsset",
    "NewsArticle",
    "SyntheticWeb",
]


@dataclass(frozen=True)
class Site:
    """A web site: a domain plus topical affiliation."""

    domain: str
    topic: str
    title: str
    authority_hint: float = 0.5  # prior used when seeding the link generator


@dataclass(frozen=True)
class Page:
    """An HTML page on a site.

    ``outlinks`` are absolute URLs; they may point to pages on other sites,
    which is what gives the link graph its authority structure.
    """

    url: str
    site: str
    topic: str
    title: str
    body: str
    outlinks: tuple[str, ...] = ()
    published_ms: int = 0
    entity: str | None = None  # the proper name this page is "about", if any

    @property
    def snippet(self) -> str:
        return self.body[:180]


@dataclass(frozen=True)
class ImageAsset:
    url: str
    site: str
    topic: str
    caption: str
    width: int
    height: int
    entity: str | None = None


@dataclass(frozen=True)
class VideoAsset:
    url: str
    site: str
    topic: str
    title: str
    description: str
    duration_s: int
    entity: str | None = None


@dataclass(frozen=True)
class NewsArticle:
    url: str
    site: str
    topic: str
    headline: str
    body: str
    published_ms: int
    entity: str | None = None

    @property
    def snippet(self) -> str:
        return self.body[:180]


@dataclass
class SyntheticWeb:
    """The complete fabricated web: sites, content, and links."""

    sites: dict[str, Site] = field(default_factory=dict)
    pages: dict[str, Page] = field(default_factory=dict)
    images: dict[str, ImageAsset] = field(default_factory=dict)
    videos: dict[str, VideoAsset] = field(default_factory=dict)
    news: dict[str, NewsArticle] = field(default_factory=dict)
    # Recurring proper names per topic; example inventories draw from these
    # so proprietary data joins against web content.
    entities: dict[str, list[str]] = field(default_factory=dict)

    def add_site(self, site: Site) -> None:
        self.sites[site.domain] = site

    def add_page(self, page: Page) -> None:
        self.pages[page.url] = page

    def add_image(self, image: ImageAsset) -> None:
        self.images[image.url] = image

    def add_video(self, video: VideoAsset) -> None:
        self.videos[video.url] = video

    def add_news(self, article: NewsArticle) -> None:
        self.news[article.url] = article

    def site(self, domain: str) -> Site:
        try:
            return self.sites[domain]
        except KeyError:
            raise NotFoundError(f"no such site: {domain}") from None

    def page(self, url: str) -> Page:
        try:
            return self.pages[url]
        except KeyError:
            raise NotFoundError(f"no such page: {url}") from None

    def pages_on(self, domain: str) -> list[Page]:
        return [p for p in self.pages.values() if p.site == domain]

    def news_on(self, domain: str) -> list[NewsArticle]:
        return [a for a in self.news.values() if a.site == domain]

    def link_graph(self) -> dict[str, list[str]]:
        """Adjacency over page URLs, dropping dangling outlinks."""
        graph = {}
        for page in self.pages.values():
            graph[page.url] = [u for u in page.outlinks if u in self.pages]
        return graph

    def domain_link_graph(self) -> dict[str, dict[str, int]]:
        """Site-level weighted adjacency (counts of cross-site links)."""
        graph: dict[str, dict[str, int]] = {d: {} for d in self.sites}
        for page in self.pages.values():
            for target in page.outlinks:
                target_page = self.pages.get(target)
                if target_page is None or target_page.site == page.site:
                    continue
                out = graph.setdefault(page.site, {})
                out[target_page.site] = out.get(target_page.site, 0) + 1
        return graph

    def stats(self) -> dict[str, int]:
        return {
            "sites": len(self.sites),
            "pages": len(self.pages),
            "images": len(self.images),
            "videos": len(self.videos),
            "news": len(self.news),
        }
