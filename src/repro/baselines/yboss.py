"""Yahoo! BOSS baseline: a developer SDK, not a designer tool.

Table I: Yahoo search API; custom sites supported; proprietary data
"limited to partners"; ads mandatory; custom UI via a "Mashup Python
library, HTML/CSS" (i.e., you write code); no deployment assistance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselinePlatform
from repro.core.capability import CapabilityProfile
from repro.errors import UnsupportedCapabilityError
from repro.searchengine.engine import SearchOptions

__all__ = ["BossSearchResponse", "YahooBossPlatform"]


@dataclass(frozen=True)
class BossSearchResponse:
    """A raw API response: results plus the mandatory ad block."""

    results: tuple
    ads: tuple
    total_matches: int


class YahooBossPlatform(BaselinePlatform):
    """Web API + client-side mashup helpers for developers."""

    system_name = "Y! BOSS"
    api_name = "Yahoo (local substrate)"

    def __init__(self, engine, ad_service=None,
                 partners: tuple = ()) -> None:
        super().__init__(engine)
        self._ads = ad_service
        self._partners = set(partners)
        self._partner_tables: dict[str, list] = {}

    # -- the developer-facing Web API --------------------------------------------

    def api_search(self, query_text: str, sites=(), count: int = 10,
                   developer_id: str = "anonymous") -> BossSearchResponse:
        """Raw query call. Ads ride along on every response (mandatory)."""
        response = self.engine.search(
            "web", query_text,
            SearchOptions(count=count, sites=tuple(sites)),
        )
        ads = ()
        if self._ads is not None:
            ads = tuple(self._ads.select_ads(
                query_text, app_id=f"boss:{developer_id}", count=1
            ))
        return BossSearchResponse(
            results=response.results,
            ads=ads,
            total_matches=response.total_matches,
        )

    def mashup_merge(self, *result_lists) -> list:
        """The client-side Python library: interleave result lists.

        This is developer tooling — the user writes the code that calls
        it, which is precisely the gap Symphony's no-code designer fills.
        """
        merged = []
        longest = max((len(results) for results in result_lists),
                      default=0)
        for i in range(longest):
            for results in result_lists:
                if i < len(results):
                    merged.append(results[i])
        return merged

    # -- probe protocol ------------------------------------------------------------

    def upload_structured_data(self, rows, table_name: str = "data",
                               partner_id: str = ""):
        if partner_id not in self._partners:
            raise UnsupportedCapabilityError(
                "proprietary-structured-data",
                "BOSS data integration is limited to partners",
            )
        table = self._partner_tables.setdefault(
            f"{partner_id}/{table_name}", []
        )
        table.extend(rows)
        return len(table)

    def monetization_policy(self) -> dict:
        return {
            "ads_mandatory": True,
            "revenue_share": 0.0,
            "own_ads_allowed": False,
        }

    def ui_customization(self) -> dict:
        return {
            "mode": "code",
            "coding_required": True,
            "tooling": ["mashup Python library", "HTML/CSS"],
        }

    def deployment_options(self) -> list:
        # "No assistance." — the developer hosts everything themselves.
        return []

    def capability_profile(self) -> CapabilityProfile:
        return CapabilityProfile(
            system=self.system_name,
            search_api="Yahoo",
            custom_sites="Supported",
            proprietary_structured_data="Limited to partners",
            monetization="Ads mandatory",
            custom_ui="Mashup Python library, HTML/CSS",
            deployment="No assistance.",
        )
