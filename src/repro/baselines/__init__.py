"""Table I baselines: working reduced implementations of the compared
systems.

The paper's Table I compares Symphony against Yahoo! BOSS, Rollyo,
Eurekster, Google Custom Search, and Google Base. Rather than hard-coding
the matrix, this package implements each system's *behaviour* (to the
granularity Table I describes) over the same local search substrate, and
:mod:`probe` regenerates the table by exercising those behaviours live —
attempting uploads, building site-restricted searches, inspecting
monetization policy, and so on.
"""

from repro.baselines.eurekster import EureksterPlatform
from repro.baselines.google_base import GoogleBasePlatform
from repro.baselines.google_custom import GoogleCustomSearchPlatform
from repro.baselines.probe import build_table_one, probe_platform
from repro.baselines.rollyo import RollyoPlatform
from repro.baselines.yboss import YahooBossPlatform

__all__ = [
    "EureksterPlatform",
    "GoogleBasePlatform",
    "GoogleCustomSearchPlatform",
    "RollyoPlatform",
    "YahooBossPlatform",
    "build_table_one",
    "probe_platform",
]
