"""Shared machinery for the Table I baseline platforms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.capability import BackendDescriptor
from repro.errors import UnsupportedCapabilityError
from repro.gateway.generations import CORPUS_KEY
from repro.searchengine.engine import SearchOptions
from repro.util import slugify

__all__ = ["CustomSearchEngine", "BaselinePlatform"]


@dataclass
class CustomSearchEngine:
    """A user-created custom search engine on a baseline platform.

    The common denominator of Rollyo's "searchrolls", Eurekster's
    "swickis", and Google Custom Search engines: a named, site-restricted
    view of the underlying general engine, with optional query
    augmentation and basic styling.
    """

    name: str
    engine: object
    sites: tuple = ()
    augment_terms: tuple = ()
    styling: dict = field(default_factory=dict)  # colors/fonts only

    def search(self, query_text: str, count: int = 10):
        options = SearchOptions(
            count=count,
            sites=self.sites,
            augment_terms=self.augment_terms,
        )
        return self.engine.search("web", query_text, options)

    def set_styling(self, **styling) -> None:
        allowed = {"color", "background", "font-family", "font-size"}
        for prop in styling:
            css_prop = prop.replace("_", "-")
            if css_prop not in allowed:
                raise UnsupportedCapabilityError(
                    "custom-ui",
                    f"{self.name}: only basic styling "
                    f"({sorted(allowed)}) is supported, not {css_prop!r}",
                )
        self.styling.update({
            prop.replace("_", "-"): value
            for prop, value in styling.items()
        })


class BaselinePlatform:
    """Base class fixing the probe protocol all platforms answer.

    Subclasses override the pieces Table I differentiates; unsupported
    features raise :class:`UnsupportedCapabilityError`, which is exactly
    what the probes detect.
    """

    system_name = "baseline"
    api_name = "unknown"
    #: Descriptor overrides for the query-language capabilities Table I
    #: does not differentiate (subclasses flip these where warranted).
    fielded_queries = False
    entity_queries = False
    query_cost = 2.0  # external metered API vs the 1.0 local substrate

    def __init__(self, engine) -> None:
        self.engine = engine

    # -- probe protocol -----------------------------------------------------------

    def search_api_name(self) -> str:
        return self.api_name

    def capability_descriptor(self) -> BackendDescriptor:
        """The machine-readable capability card of this platform.

        Derived from :meth:`capability_profile` — the same object Table I
        prints — so the federation registry and the probe machinery share
        one source of truth. All baselines sit over the shared local
        substrate, hence the ``corpus`` generation dependency.
        """
        profile = self.capability_profile()
        return BackendDescriptor(
            backend_id=slugify(self.system_name),
            system=profile.system,
            search_api=profile.search_api,
            verticals=("web",),
            supports_sites=self.supports_custom_sites(),
            supports_fielded=self.fielded_queries,
            supports_entity=self.entity_queries,
            cost_per_query=self.query_cost,
            generation_keys=(CORPUS_KEY,),
        )

    def supports_custom_sites(self) -> bool:
        return True

    def upload_structured_data(self, rows, table_name: str = "data"):
        raise UnsupportedCapabilityError(
            "proprietary-structured-data",
            f"{self.system_name} does not accept designer data uploads",
        )

    def monetization_policy(self) -> dict:
        raise UnsupportedCapabilityError(
            "monetization",
            f"{self.system_name} has no monetization support",
        )

    def ui_customization(self) -> dict:
        raise UnsupportedCapabilityError(
            "custom-ui",
            f"{self.system_name} offers no UI customization",
        )

    def deployment_options(self) -> list:
        raise UnsupportedCapabilityError(
            "deployment",
            f"{self.system_name} offers no deployment assistance",
        )
