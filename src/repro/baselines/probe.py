"""Live capability probes that regenerate Table I.

``probe_platform`` *exercises* a platform — attempts a structured-data
upload, a site-restricted search, monetization/UI/deployment introspection
— and records what actually worked. ``build_table_one`` assembles the
printed matrix from each platform's :class:`CapabilityProfile` and
cross-checks every claim against the observed behaviour, so the benchmark
cannot drift from the implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.capability import TABLE_I_ROWS
from repro.errors import UnsupportedCapabilityError

__all__ = ["ProbeOutcome", "SymphonyProbeAdapter", "probe_platform",
           "build_table_one", "format_table"]

_SAMPLE_ROWS = [
    {"title": "Halo Odyssey", "price": "49.99"},
    {"title": "Braid Arena", "price": "19.99"},
]

_SAMPLE_SITES = ("gamespot.com", "ign.com")


@dataclass(frozen=True)
class ProbeOutcome:
    """What actually worked when we exercised a platform."""

    system: str
    custom_sites_worked: bool
    upload_worked: bool
    monetization: dict | None     # None = unsupported
    ui: dict | None
    deployment: list | None


class SymphonyProbeAdapter:
    """Adapts the Symphony facade to the baseline probe protocol.

    Symphony's upload call needs a designer account; baselines don't have
    accounts at all, which is itself part of the story (they aren't
    designer platforms).
    """

    system_name = "Symphony"

    def __init__(self, symphony, account=None) -> None:
        self._symphony = symphony
        self._account = account or symphony.register_designer(
            "probe-designer"
        )
        self._probe_serial = 0

    def search_api_name(self) -> str:
        return self._symphony.search_api_name()

    def probe_custom_sites(self) -> bool:
        source = self._symphony.add_web_source(
            "probe restricted", "web", sites=_SAMPLE_SITES
        )
        return tuple(source.sites) == _SAMPLE_SITES

    def upload_structured_data(self, rows, table_name: str = "data"):
        self._probe_serial += 1
        report = self._symphony.upload_structured_data(
            self._account, rows, f"{table_name}_{self._probe_serial}"
        )
        return report.inserted

    def monetization_policy(self) -> dict:
        return self._symphony.monetization_policy()

    def ui_customization(self) -> dict:
        return self._symphony.ui_customization()

    def deployment_options(self) -> list:
        return self._symphony.deployment_options()

    def capability_profile(self):
        return self._symphony.capability_profile()


def _probe_custom_sites(platform) -> bool:
    """Try to build a site-restricted search on the platform."""
    if hasattr(platform, "probe_custom_sites"):
        return platform.probe_custom_sites()
    for factory_name in ("create_searchroll", "create_swicki",
                         "create_engine"):
        factory = getattr(platform, factory_name, None)
        if factory is not None:
            custom = factory("probe", _SAMPLE_SITES)
            response = custom.search("halo")
            sites = {r.site for r in getattr(response, "results", response)}
            return sites <= set(_SAMPLE_SITES)
    if hasattr(platform, "api_search"):  # BOSS: restriction via the API
        response = platform.api_search("halo", sites=_SAMPLE_SITES)
        return {r.site for r in response.results} <= set(_SAMPLE_SITES)
    if hasattr(platform, "create_custom_search"):
        try:
            platform.create_custom_search("probe", _SAMPLE_SITES)
            return True
        except UnsupportedCapabilityError:
            return False
    return False


def probe_platform(platform) -> ProbeOutcome:
    """Exercise one platform and record observed capabilities."""
    custom_sites = _probe_custom_sites(platform)

    try:
        inserted = platform.upload_structured_data(list(_SAMPLE_ROWS))
        upload_worked = bool(inserted)
    except UnsupportedCapabilityError:
        upload_worked = False

    try:
        monetization = platform.monetization_policy()
    except UnsupportedCapabilityError:
        monetization = None

    try:
        ui = platform.ui_customization()
    except UnsupportedCapabilityError:
        ui = None

    try:
        deployment = platform.deployment_options()
    except UnsupportedCapabilityError:
        deployment = None

    system = getattr(platform, "system_name", type(platform).__name__)
    return ProbeOutcome(
        system=system,
        custom_sites_worked=custom_sites,
        upload_worked=upload_worked,
        monetization=monetization,
        ui=ui,
        deployment=deployment,
    )


def _check_consistency(profile, outcome: ProbeOutcome) -> list[str]:
    """Claims in the printed profile must match observed behaviour."""
    problems = []
    claims_sites = profile.custom_sites.lower() != "no"
    if claims_sites != outcome.custom_sites_worked:
        problems.append(
            f"{profile.system}: custom-sites claim "
            f"{profile.custom_sites!r} vs observed "
            f"{outcome.custom_sites_worked}"
        )
    claims_upload = ("supports" in
                     profile.proprietary_structured_data.lower())
    if claims_upload != outcome.upload_worked:
        problems.append(
            f"{profile.system}: structured-data claim "
            f"{profile.proprietary_structured_data!r} vs observed "
            f"{outcome.upload_worked}"
        )
    claims_monetization = profile.monetization.lower() != "no"
    if claims_monetization != (outcome.monetization is not None):
        problems.append(
            f"{profile.system}: monetization claim "
            f"{profile.monetization!r} vs observed "
            f"{outcome.monetization}"
        )
    claims_ui = profile.custom_ui.lower() != "no"
    if claims_ui != (outcome.ui is not None):
        problems.append(
            f"{profile.system}: custom-ui claim {profile.custom_ui!r} "
            f"vs observed {outcome.ui}"
        )
    return problems


def build_table_one(platforms) -> dict:
    """Probe each platform and assemble the verified Table I.

    Returns ``{"columns": [system...], "rows": {row: [cell...]},
    "outcomes": [...], "problems": [...]}``; ``problems`` non-empty means
    an implementation drifted from its printed claim.
    """
    profiles = []
    outcomes = []
    problems = []
    for platform in platforms:
        profile = platform.capability_profile()
        outcome = probe_platform(platform)
        problems.extend(_check_consistency(profile, outcome))
        profiles.append(profile)
        outcomes.append(outcome)
    rows = {}
    for i, row_name in enumerate(TABLE_I_ROWS):
        rows[row_name] = [profile.cells()[i] for profile in profiles]
    return {
        "columns": [profile.system for profile in profiles],
        "rows": rows,
        "outcomes": outcomes,
        "problems": problems,
    }


def format_table(table: dict, cell_width: int = 20) -> str:
    """Render the Table I dict as aligned text."""
    columns = table["columns"]
    header_label = "Capability"
    label_width = max(len(header_label),
                      *(len(name) for name in table["rows"]))
    lines = []

    def clip(text: str) -> str:
        text = str(text)
        return (text[: cell_width - 1] + "…") if len(text) > cell_width \
            else text

    header = " | ".join(
        [header_label.ljust(label_width)]
        + [clip(c).ljust(cell_width) for c in columns]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row_name, cells in table["rows"].items():
        lines.append(" | ".join(
            [row_name.ljust(label_width)]
            + [clip(cell).ljust(cell_width) for cell in cells]
        ))
    return "\n".join(lines)
