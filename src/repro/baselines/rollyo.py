"""Rollyo baseline: "searchrolls" — site restriction with basic styling.

Table I: Yahoo search API; custom sites supported; no proprietary data; the
user may show their own ads; styling limited to colors/fonts; deployment
limited to a search box on 3rd-party sites.
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlatform, CustomSearchEngine
from repro.core.capability import CapabilityProfile
from repro.errors import NotFoundError

__all__ = ["RollyoPlatform"]


class RollyoPlatform(BaselinePlatform):
    """Rollyo: site-restricted \"searchrolls\" with basic styling."""

    system_name = "Rollyo"
    api_name = "Yahoo (local substrate)"

    _MAX_SITES = 25  # Rollyo capped searchrolls at 25 sites

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._searchrolls: dict[str, CustomSearchEngine] = {}

    def create_searchroll(self, name: str,
                          sites) -> CustomSearchEngine:
        sites = tuple(sites)[: self._MAX_SITES]
        roll = CustomSearchEngine(name=name, engine=self.engine,
                                  sites=sites)
        self._searchrolls[name] = roll
        return roll

    def searchroll(self, name: str) -> CustomSearchEngine:
        try:
            return self._searchrolls[name]
        except KeyError:
            raise NotFoundError(f"no searchroll {name!r}") from None

    def search_box_snippet(self, roll_name: str) -> str:
        """The only deployment aid: a search box pointing at Rollyo."""
        roll = self.searchroll(roll_name)
        return (
            f'<form action="https://rollyo.example/search" method="get">\n'
            f'  <input type="hidden" name="roll" value="{roll.name}"/>\n'
            f'  <input type="text" name="q"/>\n'
            f'  <button type="submit">Search {roll.name}</button>\n'
            f"</form>"
        )

    # -- probe protocol ------------------------------------------------------------

    def monetization_policy(self) -> dict:
        return {
            "ads_mandatory": False,
            "revenue_share": 0.0,
            "own_ads_allowed": True,  # "Show your own ads"
        }

    def ui_customization(self) -> dict:
        return {
            "mode": "basic-styling",
            "coding_required": False,
            "properties": ["color", "font-family", "font-size",
                           "background"],
        }

    def deployment_options(self) -> list:
        return ["search-box-embed"]

    def capability_profile(self) -> CapabilityProfile:
        return CapabilityProfile(
            system=self.system_name,
            search_api="Yahoo",
            custom_sites="Supported",
            proprietary_structured_data="No",
            monetization="Show your own ads",
            custom_ui="Basic styling (e.g., colors, fonts)",
            deployment="Only allows search box on 3rd-party sites",
        )
