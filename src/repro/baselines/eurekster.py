"""Eurekster baseline: "swickis" — community custom search.

Table I: Yahoo search API; custom sites supported; no proprietary data;
ads mandatory for for-profit entities; basic styling; search box on
3rd-party sites only. Eurekster's distinguishing feature was community
click feedback re-ranking results, which we also implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import BaselinePlatform, CustomSearchEngine
from repro.core.capability import CapabilityProfile
from repro.errors import NotFoundError

__all__ = ["Swicki", "EureksterPlatform"]


@dataclass
class Swicki:
    """A community search engine with click-boost re-ranking."""

    custom: CustomSearchEngine
    for_profit: bool = False
    click_boosts: dict = field(default_factory=dict)  # url -> clicks

    @property
    def name(self) -> str:
        return self.custom.name

    def record_community_click(self, url: str) -> None:
        self.click_boosts[url] = self.click_boosts.get(url, 0) + 1

    def search(self, query_text: str, count: int = 10):
        """Search, then re-rank by community click feedback."""
        response = self.custom.search(query_text, count=count * 2)
        reranked = sorted(
            response.results,
            key=lambda r: (-self.click_boosts.get(r.url, 0), -r.score,
                           r.url),
        )
        return reranked[:count]


class EureksterPlatform(BaselinePlatform):
    """Eurekster: community custom search (\"swickis\")."""

    system_name = "Eurekster"
    api_name = "Yahoo (local substrate)"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._swickis: dict[str, Swicki] = {}

    def create_swicki(self, name: str, sites,
                      for_profit: bool = False) -> Swicki:
        swicki = Swicki(
            custom=CustomSearchEngine(
                name=name, engine=self.engine, sites=tuple(sites)
            ),
            for_profit=for_profit,
        )
        self._swickis[name] = swicki
        return swicki

    def swicki(self, name: str) -> Swicki:
        try:
            return self._swickis[name]
        except KeyError:
            raise NotFoundError(f"no swicki {name!r}") from None

    def ads_required_for(self, swicki_name: str) -> bool:
        return self.swicki(swicki_name).for_profit

    def search_box_snippet(self, swicki_name: str) -> str:
        swicki = self.swicki(swicki_name)
        return (
            f'<form action="https://eurekster.example/s/{swicki.name}" '
            f'method="get">\n'
            f'  <input type="text" name="q"/>\n'
            f"  <button>Search</button>\n"
            f"</form>"
        )

    # -- probe protocol ------------------------------------------------------------

    def monetization_policy(self) -> dict:
        return {
            "ads_mandatory": "for-profit-only",
            "revenue_share": 0.0,
            "own_ads_allowed": False,
        }

    def ui_customization(self) -> dict:
        return {
            "mode": "basic-styling",
            "coding_required": False,
            "properties": ["color", "font-family", "font-size"],
        }

    def deployment_options(self) -> list:
        return ["search-box-embed"]

    def capability_profile(self) -> CapabilityProfile:
        return CapabilityProfile(
            system=self.system_name,
            search_api="Yahoo",
            custom_sites="Supported",
            proprietary_structured_data="No",
            monetization="Ads mandatory for for-profit entities.",
            custom_ui="Basic styling (e.g., colors, fonts)",
            deployment="Only allows search box on 3rd-party sites",
        )
