"""Google Custom Search baseline: tweak the default engine behaviour.

The paper's §III: such systems "restrict the search to some domains,
automatically add terms to an input query, or reorder search results to
give preference to some URLs" — all three behaviours are implemented here.
Table I: Google API; custom sites supported; no proprietary data; ads
mandatory for for-profit; basic styling; deployment to 3rd-party sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import BaselinePlatform, CustomSearchEngine
from repro.core.capability import CapabilityProfile
from repro.errors import NotFoundError

__all__ = ["CustomEngine", "GoogleCustomSearchPlatform"]


@dataclass
class CustomEngine:
    """One user-configured custom search engine."""

    custom: CustomSearchEngine
    preferred_urls: tuple = ()
    for_profit: bool = False
    styling: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.custom.name

    def search(self, query_text: str, count: int = 10):
        """Search with augmentation, then float preferred URLs upward."""
        response = self.custom.search(query_text, count=count * 2)
        preferred = set(self.preferred_urls)

        def sort_key(result):
            return (0 if result.url in preferred else 1,
                    -result.score, result.url)

        return sorted(response.results, key=sort_key)[:count]


class GoogleCustomSearchPlatform(BaselinePlatform):
    """Google Custom Search: behaviour tweaks on the general engine."""

    system_name = "Google Custom"
    api_name = "Google (local substrate)"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._engines: dict[str, CustomEngine] = {}

    def create_engine(self, name: str, sites=(),
                      augment_terms=(), preferred_urls=(),
                      for_profit: bool = False) -> CustomEngine:
        custom_engine = CustomEngine(
            custom=CustomSearchEngine(
                name=name, engine=self.engine,
                sites=tuple(sites),
                augment_terms=tuple(augment_terms),
            ),
            preferred_urls=tuple(preferred_urls),
            for_profit=for_profit,
        )
        self._engines[name] = custom_engine
        return custom_engine

    def custom_engine(self, name: str) -> CustomEngine:
        try:
            return self._engines[name]
        except KeyError:
            raise NotFoundError(f"no custom engine {name!r}") from None

    def embed_snippet(self, name: str) -> str:
        engine = self.custom_engine(name)
        return (
            f'<script src="https://cse.google.example/cse.js?cx='
            f"{engine.name}\"></script>\n"
            f'<div class="gcse-search"></div>'
        )

    # -- probe protocol ------------------------------------------------------------

    def monetization_policy(self) -> dict:
        return {
            "ads_mandatory": "for-profit-only",
            "revenue_share": 0.0,
            "own_ads_allowed": False,
        }

    def ui_customization(self) -> dict:
        return {
            "mode": "basic-styling",
            "coding_required": False,
            "properties": ["color", "font-family", "font-size"],
        }

    def deployment_options(self) -> list:
        return ["third-party-embed"]

    def capability_profile(self) -> CapabilityProfile:
        return CapabilityProfile(
            system=self.system_name,
            search_api="Google",
            custom_sites="Supported",
            proprietary_structured_data="No",
            monetization="Ads mandatory for for-profit entities.",
            custom_ui="Basic styling (e.g., colors, fonts)",
            deployment="3rd-party sites",
        )
