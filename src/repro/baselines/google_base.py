"""Google Base baseline: upload data *to improve the engine's results*.

The paper distinguishes its goal from GoogleBase's: "we are not looking
for users to provide us with data to improve our search results". Google
Base accepts structured uploads (RSS, txt, xml) but the data only surfaces
inside Google's own search products — no custom sites, no UI, no
monetization, no deployment.
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlatform
from repro.core.capability import CapabilityProfile
from repro.errors import IngestError, UnsupportedCapabilityError
from repro.ingest.readers import parse_delimited, parse_xml_records
from repro.ingest.rss import parse_rss
from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument
from repro.searchengine.engine import SearchOptions
from repro.searchengine.index import InvertedIndex
from repro.searchengine.query import QueryEvaluator, extract_terms, \
    parse_query
from repro.searchengine.ranking import BM25Scorer

__all__ = ["GoogleBasePlatform"]


class GoogleBasePlatform(BaselinePlatform):
    """Google Base: structured uploads surfacing in Google results."""

    system_name = "Google Base"
    api_name = "Google (local substrate)"
    # Base items are structured records: attribute (fielded) querying is
    # the one query-language capability this platform has over the rest.
    fielded_queries = True

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._index = InvertedIndex(Analyzer())
        self._item_count = 0

    # -- uploads (the one thing Google Base does) -----------------------------------

    def upload_structured_data(self, rows, table_name: str = "items"):
        """Accept parsed rows into the Base item index."""
        inserted = 0
        for row in rows:
            self._item_count += 1
            doc_id = f"base:{table_name}:{self._item_count}"
            self._index.add(FieldedDocument(
                doc_id=doc_id,
                fields={k: "" if v is None else str(v)
                        for k, v in row.items()},
                payload=dict(row),
            ))
            inserted += 1
        return inserted

    def upload_feed(self, data: bytes, fmt: str,
                    table_name: str = "items") -> int:
        """Upload via the supported feed formats (RSS, txt, xml)."""
        if fmt == "rss":
            rows = [item.to_row() for item in parse_rss(data)]
        elif fmt == "txt":
            rows = parse_delimited(data, delimiter="\t")
        elif fmt == "xml":
            rows = parse_xml_records(data)
        else:
            raise IngestError(
                f"Google Base accepts rss/txt/xml, not {fmt!r}"
            )
        return self.upload_structured_data(rows, table_name)

    # -- surfacing inside Google's own results ------------------------------------------

    def search(self, query_text: str, count: int = 10) -> dict:
        """Google's result page: web results + 'Base items' onebox."""
        web = self.engine.search(
            "web", query_text, SearchOptions(count=count)
        )
        node = parse_query(query_text)
        fields = self._index.text_fields()
        base_items = []
        if fields:
            evaluator = QueryEvaluator(self._index, fields)
            candidates = evaluator.candidates(node)
            terms = extract_terms(node, self._index.analyzer)
            scorer = BM25Scorer(self._index, fields)
            ranked = sorted(
                ((doc_id, scorer.score(doc_id, terms))
                 for doc_id in candidates),
                key=lambda pair: (-pair[1], pair[0]),
            )
            base_items = [
                self._index.document(doc_id).payload
                for doc_id, __ in ranked[:3]
            ]
        return {"web_results": web.results, "base_items": base_items}

    # -- probe protocol ------------------------------------------------------------------

    def supports_custom_sites(self) -> bool:
        return False

    def create_custom_search(self, *args, **kwargs):
        raise UnsupportedCapabilityError(
            "custom-sites",
            "Google Base does not build custom search engines",
        )

    def capability_profile(self) -> CapabilityProfile:
        return CapabilityProfile(
            system=self.system_name,
            search_api="Google",
            custom_sites="No",
            proprietary_structured_data=(
                "Supports various uploads (RSS, txt, xml)"
            ),
            monetization="No",
            custom_ui="No",
            deployment="Data to surface on Google's search products",
        )
