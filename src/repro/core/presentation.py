"""Presentation: themes, templates, stylesheets, and the HTML renderer.

§II-A Presentation: "further customization of the application's look-and-
feel is supported via templates, wizard-style assistance from Symphony, or
through style properties on individual elements (e.g., color, font-size).
For more web-savvy users, greater control is possible via style-sheets."
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field

from repro.core.application import ElementKind
from repro.errors import NotFoundError, RenderError

__all__ = ["Theme", "ThemeRegistry", "StyleSheet", "HtmlRenderer",
           "PresentationWizard"]


@dataclass(frozen=True)
class Theme:
    """A named bundle of default styles per rendering role."""

    name: str
    styles: dict = field(default_factory=dict)  # role -> {css prop: value}

    def style_for(self, role: str) -> dict:
        return dict(self.styles.get(role, {}))


_BUILTIN_THEMES = {
    "clean": Theme("clean", {
        "app": {"font-family": "Segoe UI, sans-serif", "color": "#222"},
        "slot": {"margin": "12px 0"},
        "result": {"padding": "8px", "border-bottom": "1px solid #eee"},
        "heading": {"font-size": "18px", "font-weight": "bold"},
        "supplemental": {"margin-left": "24px", "font-size": "12px",
                         "color": "#555"},
        "ad": {"background": "#fdf6e3", "padding": "6px"},
    }),
    "midnight": Theme("midnight", {
        "app": {"font-family": "Segoe UI, sans-serif",
                "background": "#101418", "color": "#e0e6ed"},
        "slot": {"margin": "12px 0"},
        "result": {"padding": "8px",
                   "border-bottom": "1px solid #2a3642"},
        "heading": {"font-size": "18px", "color": "#7fd1ff"},
        "supplemental": {"margin-left": "24px", "font-size": "12px",
                         "color": "#9fb2c4"},
        "ad": {"background": "#1d2733", "padding": "6px"},
    }),
    "storefront": Theme("storefront", {
        "app": {"font-family": "Verdana, sans-serif", "color": "#333"},
        "slot": {"margin": "16px 0"},
        "result": {"padding": "10px", "border": "1px solid #ddd",
                   "border-radius": "4px", "margin-bottom": "8px"},
        "heading": {"font-size": "20px", "color": "#b12704"},
        "supplemental": {"margin-left": "20px", "font-size": "12px"},
        "ad": {"background": "#eef7ee", "padding": "6px"},
    }),
}


class ThemeRegistry:
    """Built-in plus designer-registered themes."""

    def __init__(self) -> None:
        self._themes = dict(_BUILTIN_THEMES)

    def get(self, name: str) -> Theme:
        try:
            return self._themes[name]
        except KeyError:
            raise NotFoundError(
                f"no theme {name!r}; available: {sorted(self._themes)}"
            ) from None

    def register(self, theme: Theme) -> None:
        self._themes[theme.name] = theme

    def names(self) -> list[str]:
        return sorted(self._themes)


@dataclass
class StyleSheet:
    """Designer-supplied CSS rules, for the web-savvy path."""

    rules: dict = field(default_factory=dict)  # selector -> {prop: value}

    def add_rule(self, selector: str, **properties) -> None:
        rule = self.rules.setdefault(selector, {})
        rule.update(
            {prop.replace("_", "-"): value
             for prop, value in properties.items()}
        )

    def to_css(self) -> str:
        blocks = []
        for selector in sorted(self.rules):
            body = "; ".join(
                f"{prop}: {value}"
                for prop, value in sorted(self.rules[selector].items())
            )
            blocks.append(f"{selector} {{ {body} }}")
        return "\n".join(blocks)


def _inline_style(style: dict) -> str:
    if not style:
        return ""
    body = "; ".join(f"{prop}: {value}"
                     for prop, value in sorted(style.items()))
    return f' style="{html.escape(body, quote=True)}"'


class HtmlRenderer:
    """Renders an executed application into the HTML fragment the embed
    JavaScript injects into the host page (§II-C)."""

    def __init__(self, themes: ThemeRegistry | None = None) -> None:
        self.themes = themes or ThemeRegistry()

    # -- element level ----------------------------------------------------------

    def render_element(self, element, item) -> str:
        value = item.get(element.bind_field)
        style = _inline_style(element.style)
        css = (f' class="{html.escape(element.css_class, quote=True)}"'
               if element.css_class else "")
        if element.kind == ElementKind.TEXT:
            return f"<span{css}{style}>{html.escape(value)}</span>"
        if element.kind == ElementKind.IMAGE:
            if not value:
                return ""
            return (f'<img{css}{style} src="{html.escape(value, quote=True)}"'
                    f' alt="{html.escape(item.get("title"), quote=True)}"/>')
        if element.kind == ElementKind.HYPERLINK:
            href = item.get(element.href_field) if element.href_field \
                else item.url
            if not href:
                return f"<span{css}{style}>{html.escape(value)}</span>"
            return (f'<a{css}{style} href="{html.escape(href, quote=True)}">'
                    f"{html.escape(value)}</a>")
        raise RenderError(f"unknown element kind: {element.kind!r}")

    # -- application level ---------------------------------------------------------

    def render_app(self, app, views, ad_items=(),
                   stylesheet: StyleSheet | None = None) -> str:
        """Render primary result views (plus ads) per the app's layout.

        ``views`` is a list of ``PrimaryResultView`` from the runtime; each
        carries the primary item and its per-child supplemental results.
        """
        theme = self.themes.get(app.theme)
        parts = [f'<div class="symphony-app" data-app="'
                 f'{html.escape(app.app_id, quote=True)}"'
                 f"{_inline_style(theme.style_for('app'))}>"]
        if stylesheet is not None and stylesheet.rules:
            parts.append(f"<style>{stylesheet.to_css()}</style>")
        for slot in app.slots:
            binding = app.binding(slot.binding_id)
            if binding.role.value == "ads":
                parts.append(self._render_ads(slot, theme, ad_items))
            else:
                parts.append(
                    self._render_primary_slot(app, slot, theme, views)
                )
        parts.append("</div>")
        return "".join(parts)

    def _render_primary_slot(self, app, slot, theme, views) -> str:
        style = dict(theme.style_for("slot"))
        style.update(slot.style)
        parts = [f'<div class="symphony-slot"{_inline_style(style)}>']
        if slot.heading:
            parts.append(
                f"<h2{_inline_style(theme.style_for('heading'))}>"
                f"{html.escape(slot.heading)}</h2>"
            )
        for view in views:
            if view.slot_binding_id != slot.binding_id:
                continue
            parts.append(self._render_result(app, slot, theme, view))
        parts.append("</div>")
        return "".join(parts)

    def _render_result(self, app, slot, theme, view) -> str:
        parts = [f'<div class="symphony-result"'
                 f"{_inline_style(theme.style_for('result'))}>"]
        for element in slot.result_layout.elements:
            parts.append(self.render_element(element, view.item))
        for child in slot.children:
            child_result = view.supplemental.get(child.binding_id)
            parts.append(
                self._render_supplemental(child, theme, child_result)
            )
        parts.append("</div>")
        return "".join(parts)

    def _render_supplemental(self, slot, theme, result) -> str:
        parts = [f'<div class="symphony-supplemental"'
                 f"{_inline_style(theme.style_for('supplemental'))}>"]
        if slot.heading:
            parts.append(f"<h3>{html.escape(slot.heading)}</h3>")
        if result is None or not result.items:
            parts.append('<span class="symphony-empty">'
                         "No supplemental results</span>")
        else:
            for item in result.items:
                parts.append('<div class="symphony-subresult">')
                if slot.result_layout.elements:
                    for element in slot.result_layout.elements:
                        parts.append(self.render_element(element, item))
                else:
                    # Default supplemental rendering: linked title.
                    title = html.escape(item.title)
                    if item.url:
                        parts.append(
                            f'<a href="{html.escape(item.url, quote=True)}">'
                            f"{title}</a>"
                        )
                    else:
                        parts.append(f"<span>{title}</span>")
                parts.append("</div>")
        parts.append("</div>")
        return "".join(parts)

    def _render_ads(self, slot, theme, ad_items) -> str:
        parts = [f'<div class="symphony-ads"'
                 f"{_inline_style(theme.style_for('ad'))}>"]
        if slot.heading:
            parts.append(f"<h3>{html.escape(slot.heading)}</h3>")
        for item in ad_items:
            parts.append(
                '<div class="symphony-ad" data-ad="'
                f'{html.escape(item.get("ad_id"), quote=True)}">'
                f'<a href="{html.escape(item.url, quote=True)}">'
                f"{html.escape(item.title)}</a>"
                f"<span> {html.escape(item.snippet)}</span>"
                "</div>"
            )
        if not ad_items:
            parts.append('<span class="symphony-empty">No ads</span>')
        parts.append("</div>")
        return "".join(parts)


class PresentationWizard:
    """Wizard-style assistance: proposes a theme + layout tweaks from a
    couple of plain-language answers (the no-code path to look-and-feel)."""

    _TONE_THEMES = {
        "professional": "clean",
        "playful": "storefront",
        "dark": "midnight",
    }

    def __init__(self, themes: ThemeRegistry | None = None) -> None:
        self.themes = themes or ThemeRegistry()

    def recommend(self, tone: str = "professional",
                  accent_color: str | None = None) -> dict:
        theme_name = self._TONE_THEMES.get(tone.lower(), "clean")
        recommendation = {
            "theme": theme_name,
            "element_styles": {},
        }
        if accent_color:
            recommendation["element_styles"]["heading"] = {
                "color": accent_color
            }
        return recommendation
