"""Data sources: the uniform contract every content provider implements.

"The various proprietary, 3rd-party and built-in data sources can be
integrated flexibly" (§II-A Data Integration). Each adapter turns its
backend — a tenant table, a search vertical, a SOAP/REST service, the ad
marketplace — into the same ``search(SourceQuery) -> SourceResult`` shape,
which is what lets the designer drag any of them onto an application.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError, DuplicateError, NotFoundError
from repro.searchengine.analysis import Analyzer
from repro.searchengine.documents import FieldedDocument
from repro.searchengine.engine import SearchOptions
from repro.searchengine.index import InvertedIndex
from repro.searchengine.query import (
    OrNode,
    QueryEvaluator,
    TermNode,
    extract_terms,
    parse_query,
)
from repro.searchengine.ranking import BM25Parameters, BM25Scorer

__all__ = [
    "SourceKind",
    "SourceQuery",
    "SourceItem",
    "SourceResult",
    "DataSource",
    "ProprietaryTableSource",
    "WebSearchSource",
    "ServiceSource",
    "AdSource",
    "CustomerProfileSource",
    "SourceRegistry",
]


class SourceKind(str, Enum):
    """The categories of content source the palette can show."""

    PROPRIETARY = "proprietary"
    WEB = "web"
    IMAGE = "image"
    VIDEO = "video"
    NEWS = "news"
    SERVICE = "service"
    ADS = "ads"
    CUSTOMER = "customer"
    FEDERATED = "federated"


@dataclass(frozen=True)
class SourceQuery:
    """What the runtime asks a source."""

    text: str
    count: int = 10
    offset: int = 0
    context: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SourceItem:
    """One result item in source-neutral shape."""

    item_id: str
    title: str
    url: str = ""
    snippet: str = ""
    score: float = 0.0
    fields: dict = field(default_factory=dict)

    def get(self, name: str, default: str = "") -> str:
        """Field lookup across explicit fields and the common properties."""
        if name in self.fields:
            value = self.fields[name]
            return "" if value is None else str(value)
        common = {"title": self.title, "url": self.url,
                  "snippet": self.snippet}
        return common.get(name, default)


@dataclass(frozen=True)
class SourceResult:
    source_id: str
    items: tuple
    total_matches: int
    elapsed_ms: float = 0.0
    #: The provider served partial results (e.g. cluster shard loss or
    #: a deadline overrun inside the scatter-gather).
    degraded: bool = False
    #: Provider-specific annotations; governed tables flag contract
    #: staleness here (``{"stale": True, "staleness_ms": ...}``) so
    #: applications can tell users the data behind an answer is old.
    metadata: dict = field(default_factory=dict)

    @staticmethod
    def empty(source_id: str) -> "SourceResult":
        return SourceResult(source_id, (), 0, 0.0)


class DataSource(ABC):
    """The contract: identity, bindable fields, and search."""

    def __init__(self, source_id: str, name: str, kind: SourceKind) -> None:
        self.source_id = source_id
        self.name = name
        self.kind = kind

    @abstractmethod
    def fields(self) -> list[str]:
        """Field names a designer can bind layout elements to."""

    @abstractmethod
    def search(self, query: SourceQuery) -> SourceResult:
        """Execute ``query`` and return ranked items."""

    def describe(self) -> dict:
        return {
            "source_id": self.source_id,
            "name": self.name,
            "kind": self.kind.value,
            "fields": self.fields(),
        }

    def export_config(self) -> dict:
        """Serializable construction parameters (see core.persistence)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support export"
        )


class ProprietaryTableSource(DataSource):
    """Searchable proprietary data: a tenant table + a private index.

    ``search_fields`` are the fields queries run against ("search by
    title, producer, and description" in §II-B); all schema fields remain
    available for layout binding. The index rebuilds lazily whenever the
    table's contents change.
    """

    def __init__(self, source_id: str, name: str, table,
                 search_fields: tuple) -> None:
        super().__init__(source_id, name, SourceKind.PROPRIETARY)
        self._table = table
        for field_name in search_fields:
            if not table.schema.has_field(field_name):
                raise ConfigurationError(
                    f"search field {field_name!r} is not in table "
                    f"{table.name!r}"
                )
        self.search_fields = tuple(search_fields)
        self._index: InvertedIndex | None = None
        self._index_fingerprint: tuple | None = None
        #: Zero-arg callable returning contract metadata for this
        #: table ({} when ungoverned); set by the platform when
        #: contracts are enabled so stale feeds are flagged on every
        #: result served from them.
        self.contract_status = None

    def fields(self) -> list[str]:
        return self._table.schema.field_names()

    @property
    def table(self):
        return self._table

    def _fingerprint(self) -> tuple:
        return (
            len(self._table),
            sum(r.version for r in self._table.all_records()),
        )

    def _ensure_index(self) -> InvertedIndex:
        fingerprint = self._fingerprint()
        if self._index is None or self._index_fingerprint != fingerprint:
            index = InvertedIndex(Analyzer())
            for record in self._table.all_records():
                index.add(FieldedDocument(
                    doc_id=record.record_id,
                    fields={
                        name: "" if value is None else str(value)
                        for name, value in record.values.items()
                    },
                    payload=record,
                ))
            self._index = index
            self._index_fingerprint = fingerprint
        return self._index

    def export_config(self) -> dict:
        return {
            "type": "proprietary",
            "source_id": self.source_id,
            "name": self.name,
            "tenant_id": getattr(self, "tenant_id", ""),
            "table_name": self._table.name,
            "search_fields": list(self.search_fields),
        }

    def structured_search(self, structured_query) -> SourceResult:
        """Richer querying of structured data (§IV future work item 2).

        Accepts a :class:`repro.core.structured.StructuredQuery`
        combining text relevance, typed predicates, ordering, paging.
        """
        from repro.core.structured import execute_structured
        return execute_structured(self, structured_query)

    def search(self, query: SourceQuery) -> SourceResult:
        index = self._ensure_index()
        search_fields = tuple(
            query.context.get("search_fields") or self.search_fields
        )
        node = parse_query(query.text)
        evaluator = QueryEvaluator(index, list(search_fields))
        candidates = evaluator.candidates(node)
        terms = extract_terms(node, index.analyzer)
        if not candidates and len(terms) > 1:
            # Strict AND found nothing; relax to OR so a storefront search
            # for "halo odyssey deluxe" still surfaces "Halo Odyssey".
            relaxed = OrNode(tuple(TermNode(t) for t in terms))
            candidates = evaluator.candidates(relaxed)
        params = BM25Parameters(
            field_boosts={name: 2.0 if name == search_fields[0] else 1.0
                          for name in search_fields}
        )
        scorer = BM25Scorer(index, list(search_fields), params)
        scored = sorted(
            ((doc_id, scorer.score(doc_id, terms)) for doc_id in candidates),
            key=lambda pair: (-pair[1], pair[0]),
        )
        window = scored[query.offset:query.offset + query.count]
        items = []
        for doc_id, score in window:
            record = index.document(doc_id).payload
            url = next(
                (str(record.values[name])
                 for name in ("url", "detail_url", "link", "homepage")
                 if record.values.get(name)),
                "",
            )
            items.append(SourceItem(
                item_id=doc_id,
                title=str(record.values.get(self.fields()[0], doc_id)),
                url=url,
                snippet="",
                score=round(score, 6),
                fields=dict(record.values),
            ))
        metadata = (self.contract_status()
                    if self.contract_status is not None else {})
        return SourceResult(self.source_id, tuple(items), len(scored),
                            metadata=metadata or {})


class WebSearchSource(DataSource):
    """A search-engine vertical with per-source configuration (§II-A)."""

    _KIND_BY_VERTICAL = {
        "web": SourceKind.WEB,
        "image": SourceKind.IMAGE,
        "video": SourceKind.VIDEO,
        "news": SourceKind.NEWS,
    }

    def __init__(self, source_id: str, name: str, engine,
                 vertical: str = "web", sites: tuple = (),
                 augment_terms: tuple = (),
                 freshness_days: int | None = None) -> None:
        kind = self._KIND_BY_VERTICAL.get(vertical)
        if kind is None:
            raise ConfigurationError(f"unknown vertical {vertical!r}")
        super().__init__(source_id, name, kind)
        self._engine = engine
        self.vertical = vertical
        self.sites = tuple(sites)
        self.augment_terms = tuple(augment_terms)
        self.freshness_days = freshness_days

    def fields(self) -> list[str]:
        return ["title", "url", "snippet", "site"]

    def export_config(self) -> dict:
        return {
            "type": "web",
            "source_id": self.source_id,
            "name": self.name,
            "vertical": self.vertical,
            "sites": list(self.sites),
            "augment_terms": list(self.augment_terms),
            "freshness_days": self.freshness_days,
        }

    def search(self, query: SourceQuery) -> SourceResult:
        options = SearchOptions(
            count=query.count,
            offset=query.offset,
            sites=self.sites,
            augment_terms=self.augment_terms,
            freshness_days=self.freshness_days,
        )
        engine_kwargs = {}
        deadline = query.context.get("deadline")
        if deadline is not None and getattr(self._engine,
                                            "accepts_deadline", False):
            engine_kwargs["deadline"] = deadline
        response = self._engine.search(
            self.vertical, query.text, options,
            app_id=query.context.get("app_id"),
            session_id=query.context.get("session_id"),
            **engine_kwargs,
        )
        items = tuple(
            SourceItem(
                item_id=result.url,
                title=result.title,
                url=result.url,
                snippet=result.snippet,
                score=result.score,
                fields={"site": result.site, **result.fields},
            )
            for result in response.results
        )
        return SourceResult(
            self.source_id, items, response.total_matches,
            response.elapsed_ms,
            degraded=getattr(response, "degraded", False),
        )


class ServiceSource(DataSource):
    """Dynamic data through a SOAP or REST service on the bus.

    ``operation`` is the bus operation (``"GET /prices/{sku}"`` or a SOAP
    operation name); the query text is passed as ``query_param``. Dict
    responses become one item; a list (or a dict with a single list value
    such as GetReviews' ``reviews``) becomes one item per element.
    """

    def __init__(self, source_id: str, name: str, bus, service_name: str,
                 operation: str, query_param: str,
                 item_fields: tuple = (), title_field: str = "",
                 extra_params: dict | None = None) -> None:
        super().__init__(source_id, name, SourceKind.SERVICE)
        self._bus = bus
        self.service_name = service_name
        self.operation = operation
        self.query_param = query_param
        self.item_fields = tuple(item_fields)
        self.title_field = title_field
        self.extra_params = dict(extra_params or {})

    def fields(self) -> list[str]:
        return list(self.item_fields) if self.item_fields else ["value"]

    def export_config(self) -> dict:
        return {
            "type": "service",
            "source_id": self.source_id,
            "name": self.name,
            "service_name": self.service_name,
            "operation": self.operation,
            "query_param": self.query_param,
            "item_fields": list(self.item_fields),
            "title_field": self.title_field,
            "extra_params": dict(self.extra_params),
        }

    def _build_operation(self, text: str) -> tuple[str, dict]:
        params = dict(self.extra_params)
        placeholder = "{" + self.query_param + "}"
        if placeholder in self.operation:
            return self.operation.replace(placeholder, text), params
        params[self.query_param] = text
        return self.operation, params

    def search(self, query: SourceQuery) -> SourceResult:
        operation, params = self._build_operation(query.text)
        response = self._bus.invoke(
            self.service_name, operation, params,
            deadline=query.context.get("deadline"),
        )
        rows = self._rows_from_response(response)
        items = []
        for i, row in enumerate(rows[:query.count]):
            title = str(row.get(self.title_field, "")) if self.title_field \
                else str(next(iter(row.values()), ""))
            items.append(SourceItem(
                item_id=f"{self.source_id}:{i}",
                title=title,
                url=str(row.get("url", "")),
                snippet=str(row.get("excerpt", row.get("description", ""))),
                score=float(len(rows) - i),
                fields=dict(row),
            ))
        return SourceResult(self.source_id, tuple(items), len(rows))

    @staticmethod
    def _rows_from_response(response) -> list[dict]:
        if isinstance(response, list):
            return [row if isinstance(row, dict) else {"value": row}
                    for row in response]
        if isinstance(response, dict):
            list_values = [v for v in response.values()
                           if isinstance(v, list)]
            if len(list_values) == 1 and all(
                isinstance(row, dict) for row in list_values[0]
            ):
                return list(list_values[0])
            return [response]
        return [{"value": response}]


class AdSource(DataSource):
    """Ads as a content source, configured like any other (§II-A)."""

    def __init__(self, source_id: str, name: str, ad_service,
                 max_ads: int = 2) -> None:
        super().__init__(source_id, name, SourceKind.ADS)
        self._ads = ad_service
        self.max_ads = max_ads

    def fields(self) -> list[str]:
        return ["headline", "url", "body", "ad_id", "price_per_click"]

    def export_config(self) -> dict:
        return {
            "type": "ads",
            "source_id": self.source_id,
            "name": self.name,
            "max_ads": self.max_ads,
        }

    def search(self, query: SourceQuery) -> SourceResult:
        selected = self._ads.select_ads(
            query.text,
            app_id=query.context.get("app_id", ""),
            count=min(query.count, self.max_ads),
            now_ms=int(query.context.get("now_ms", 0)),
            deadline=query.context.get("deadline"),
        )
        items = tuple(
            SourceItem(
                item_id=ad.ad_id,
                title=ad.headline,
                url=ad.url,
                snippet=ad.body,
                score=float(len(selected) - i),
                fields={
                    "headline": ad.headline, "body": ad.body,
                    "ad_id": ad.ad_id,
                    "price_per_click": ad.price_per_click,
                    "is_ad": True,
                },
            )
            for i, ad in enumerate(selected)
        )
        return SourceResult(self.source_id, items, len(items))


class CustomerProfileSource(DataSource):
    """Customer data that *alters the query* rather than adding results.

    §II-C: "customer data could also be included to alter the query to,
    say, prefer some types of games over others." Profiles map a customer
    id to preference terms; the runtime calls :meth:`rewrite` on the
    primary query when this source is bound to the application.
    """

    def __init__(self, source_id: str, name: str) -> None:
        super().__init__(source_id, name, SourceKind.CUSTOMER)
        self._profiles: dict[str, tuple] = {}

    def fields(self) -> list[str]:
        return ["customer_id", "preference_terms"]

    def export_config(self) -> dict:
        return {
            "type": "customer",
            "source_id": self.source_id,
            "name": self.name,
            "profiles": {cid: list(terms)
                         for cid, terms in self._profiles.items()},
        }

    def set_profile(self, customer_id: str, preference_terms) -> None:
        self._profiles[customer_id] = tuple(preference_terms)

    def profile(self, customer_id: str) -> tuple:
        return self._profiles.get(customer_id, ())

    def rewrite(self, query_text: str, customer_id: str | None) -> str:
        """Append preference terms as optional (OR'd) boosts."""
        if not customer_id:
            return query_text
        terms = self.profile(customer_id)
        if not terms:
            return query_text
        preference = " OR ".join(terms)
        return f"({query_text}) OR ({query_text} AND ({preference}))"

    def search(self, query: SourceQuery) -> SourceResult:
        # Customer data is not a display source; searching it yields the
        # matching profile (useful for designer previews and tests).
        customer_id = query.text.strip()
        terms = self.profile(customer_id)
        if not terms:
            return SourceResult.empty(self.source_id)
        item = SourceItem(
            item_id=customer_id,
            title=customer_id,
            fields={"customer_id": customer_id,
                    "preference_terms": ", ".join(terms)},
        )
        return SourceResult(self.source_id, (item,), 1)


class SourceRegistry:
    """All data sources known to one platform instance, by id."""

    def __init__(self) -> None:
        self._sources: dict[str, DataSource] = {}

    def add(self, source: DataSource) -> DataSource:
        if source.source_id in self._sources:
            raise DuplicateError(
                f"source id already registered: {source.source_id}"
            )
        self._sources[source.source_id] = source
        return source

    def get(self, source_id: str) -> DataSource:
        try:
            return self._sources[source_id]
        except KeyError:
            raise NotFoundError(
                f"no data source {source_id!r}"
            ) from None

    def remove(self, source_id: str) -> None:
        if source_id not in self._sources:
            raise NotFoundError(f"no data source {source_id!r}")
        del self._sources[source_id]

    def ids(self) -> list[str]:
        return sorted(self._sources)

    def by_kind(self, kind: SourceKind) -> list[DataSource]:
        return [s for s in self._sources.values() if s.kind == kind]
