"""Richer querying of structured data (future work item 2, §IV).

A :class:`StructuredQuery` combines free-text relevance search with typed
field predicates, ordering, and paging over a proprietary source — the
kind of faceted storefront query ("in-stock RPGs under $30, cheapest
first") that plain keyword search can't express.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

from repro.core.datasources import SourceItem, SourceQuery, SourceResult
from repro.errors import ValidationError

__all__ = ["FieldPredicate", "StructuredQuery", "execute_structured"]

_OPERATORS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


@dataclass(frozen=True)
class FieldPredicate:
    """One typed predicate: ``price < 30``, ``producer contains 'studio'``."""

    field: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in _OPERATORS and self.op != "contains":
            raise ValidationError(
                f"unknown predicate operator {self.op!r}; expected one "
                f"of {sorted(_OPERATORS)} or 'contains'"
            )

    def matches(self, record_values: dict) -> bool:
        actual = record_values.get(self.field)
        if actual is None:
            return False
        if self.op == "contains":
            return str(self.value).lower() in str(actual).lower()
        try:
            return _OPERATORS[self.op](actual, self._coerced(actual))
        except TypeError:
            return False

    def _coerced(self, actual):
        """Coerce the predicate value toward the stored value's type."""
        if isinstance(actual, bool):
            return bool(self.value)
        if isinstance(actual, (int, float)) \
                and not isinstance(self.value, (int, float)):
            try:
                return float(self.value)
            except (TypeError, ValueError):
                return self.value
        return self.value


@dataclass(frozen=True)
class StructuredQuery:
    """Free text (optional) + predicates + ordering + paging."""

    text: str = ""
    predicates: tuple = ()
    order_by: str = ""
    descending: bool = False
    limit: int = 10
    offset: int = 0

    def where(self, field_name: str, op: str,
              value) -> "StructuredQuery":
        """Return a copy with one more predicate (builder style)."""
        return StructuredQuery(
            text=self.text,
            predicates=self.predicates + (
                FieldPredicate(field_name, op, value),
            ),
            order_by=self.order_by,
            descending=self.descending,
            limit=self.limit,
            offset=self.offset,
        )


def execute_structured(source, query: StructuredQuery) -> SourceResult:
    """Run a :class:`StructuredQuery` against a proprietary source.

    With ``text``, candidates come from the relevance search (preserving
    its ranking unless ``order_by`` overrides it); without, the whole
    table is scanned. Predicates filter; ordering and paging apply last.
    """
    if query.limit <= 0:
        raise ValidationError("structured query limit must be positive")
    table = source.table
    if query.text:
        relevance = source.search(SourceQuery(query.text,
                                              count=len(table) or 1))
        candidates = [(item, item.fields) for item in relevance.items]
    else:
        candidates = []
        for record in table.all_records():
            item = SourceItem(
                item_id=record.record_id,
                title=str(record.values.get(
                    table.schema.field_names()[0], record.record_id
                )),
                fields=dict(record.values),
            )
            candidates.append((item, record.values))

    filtered = [
        item for item, values in candidates
        if all(predicate.matches(values)
               for predicate in query.predicates)
    ]

    if query.order_by:
        if not table.schema.has_field(query.order_by):
            raise ValidationError(
                f"cannot order by unknown field {query.order_by!r}"
            )

        def sort_key(item):
            value = item.fields.get(query.order_by)
            # None sorts last regardless of direction.
            return (value is None,
                    value if value is not None else 0)

        filtered.sort(key=sort_key, reverse=query.descending)

    window = filtered[query.offset:query.offset + query.limit]
    return SourceResult(
        source_id=source.source_id,
        items=tuple(window),
        total_matches=len(filtered),
    )
