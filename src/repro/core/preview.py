"""Designer live preview.

The WYSIWYG tool in Fig. 1 shows results while the designer is still
arranging the canvas. :func:`preview_session` compiles the in-progress
design session into a throwaway application, executes one sample query
through a private runtime (never touching the hosted registry, logs, or
cache), and returns the rendered HTML with the pipeline trace and any
design-time warnings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runtime import (
    ApplicationRegistry,
    QueryRequest,
    SymphonyRuntime,
)
from repro.errors import ConfigurationError

__all__ = ["PreviewResult", "preview_session"]


@dataclass(frozen=True)
class PreviewResult:
    html: str
    trace: object
    issues: tuple      # design issues at preview time
    query_text: str

    @property
    def ok(self) -> bool:
        return not any(i.severity == "error" for i in self.issues)


def preview_session(session, registry, renderer, clock,
                    query_text: str) -> PreviewResult:
    """Render a live preview of ``session`` for ``query_text``.

    Raises :class:`ConfigurationError` only for designs that cannot even
    compile; softer problems come back as ``issues``.
    """
    issues = tuple(session.validate())
    if any(i.severity == "error" for i in issues):
        raise ConfigurationError(
            "cannot preview: "
            + "; ".join(i.message for i in issues
                        if i.severity == "error")
        )
    app = session.build()
    apps = ApplicationRegistry()
    apps.register(app)
    runtime = SymphonyRuntime(
        registry=registry,
        apps=apps,
        renderer=renderer,
        clock=clock,
        log=None,             # previews must not pollute usage logs
        cache_enabled=False,  # designers want live data while tweaking
    )
    response = runtime.handle_query(QueryRequest(
        app_id=app.app_id,
        query_text=query_text,
        session_id="designer-preview",
    ))
    return PreviewResult(
        html=response.html,
        trace=response.trace,
        issues=issues,
        query_text=query_text,
    )
