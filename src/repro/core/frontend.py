"""The hosted HTTP surface: what the embed JavaScript actually calls.

:class:`HostingFrontend` plays the web tier in front of the runtime: it
resolves the request path through the router, validates the embed key,
executes the query, and wraps the outcome in an HTTP-shaped response —
including the error statuses a real deployment needs (404 unknown app,
403 bad embed key, 429 rate limited, 400 bad query).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runtime import QueryRequest
from repro.errors import (
    NotFoundError,
    PublicationError,
    QueryError,
    QuotaExceededError,
)

__all__ = ["HttpResponse", "HostingFrontend"]


@dataclass(frozen=True)
class HttpResponse:
    status: int
    body: str
    content_type: str = "text/html; charset=utf-8"

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class HostingFrontend:
    """Request handler for ``GET /apps/{id}/query?q=...&key=...``."""

    def __init__(self, router, runtime) -> None:
        self._router = router
        self._runtime = runtime

    def handle(self, path: str, params: dict) -> HttpResponse:
        """Serve one embed request; never raises, always an HTTP shape."""
        query_text = (params.get("q") or "").strip()
        if not query_text:
            return HttpResponse(400, "missing query parameter 'q'",
                                "text/plain")
        try:
            app_id = self._router.resolve(
                path, params.get("key", "")
            )
        except PublicationError as exc:
            return HttpResponse(403, str(exc), "text/plain")
        except NotFoundError as exc:
            return HttpResponse(404, str(exc), "text/plain")
        try:
            page = int(params.get("page", 0))
        except (TypeError, ValueError):
            return HttpResponse(400, "page must be an integer",
                                "text/plain")
        try:
            response = self._runtime.handle_query(QueryRequest(
                app_id=app_id,
                query_text=query_text,
                session_id=params.get("session", ""),
                customer_id=params.get("customer", ""),
                page=page,
            ))
        except QuotaExceededError as exc:
            return HttpResponse(429, str(exc), "text/plain")
        except QueryError as exc:
            return HttpResponse(400, f"bad query: {exc}", "text/plain")
        return HttpResponse(200, response.html)
