"""Platform state export/import.

Symphony is a hosted cloud service — designers expect their tenants,
uploaded tables, configured sources, and hosted applications to survive a
platform restart. This module serializes that state to one JSON document
and restores it onto a freshly constructed platform.

What round-trips: tenants (with tables and next-serial counters), source
configurations, hosted application definitions, customer profiles, and
the ad marketplace (advertisers, campaigns, and the revenue ledger, so
designer earnings survive a restart).
What intentionally does not: the synthetic web and its *initial* search
index (reconstructed deterministically from the seed), service
*registrations* on the bus (code, not data — re-register the same
services before importing), access tokens (security material is
re-minted), and blobs (raw upload archives are replayable from the
sources of truth).

Post-seed index mutations are a different story: a clustered deployment
with ``repro.durability`` enabled logs every add/remove to a per-shard
write-ahead log and snapshots shards into checkpoints, so documents
ingested after the initial build survive a *replica* loss via
checkpoint-restore + WAL replay. That machinery protects replicas
within a running cluster; this module's export/import remains the path
for moving platform state across deployments.
"""

from __future__ import annotations

import json

from repro.core.application import ApplicationDefinition
from repro.core.datasources import (
    AdSource,
    CustomerProfileSource,
    ProprietaryTableSource,
    ServiceSource,
    WebSearchSource,
)
from repro.errors import ConfigurationError
from repro.storage.records import RecordTable
from repro.storage.tenant import Tenant

__all__ = ["export_platform", "import_platform",
           "save_platform", "load_platform"]

_FORMAT_VERSION = 1


def export_platform(symphony) -> dict:
    """Serialize restorable platform state to a plain dict."""
    tenants = []
    for tenant_id in symphony.catalog.tenant_ids():
        tenant = symphony.catalog.tenant(tenant_id)
        tenants.append({
            "tenant_id": tenant.tenant_id,
            "display_name": tenant.display_name,
            "tables": {
                name: json.loads(tenant.table(name).to_json())
                for name in tenant.table_names()
            },
        })
    sources = []
    for source_id in symphony.sources.ids():
        source = symphony.sources.get(source_id)
        try:
            sources.append(source.export_config())
        except NotImplementedError:
            # Unknown custom adapters are the caller's responsibility.
            continue
    apps = [symphony.apps.get(app_id).to_dict()
            for app_id in symphony.apps.ids()]
    return {
        "version": _FORMAT_VERSION,
        "tenants": tenants,
        "sources": sources,
        "applications": apps,
        "ads": symphony.ads.export_state(),
    }


def _restore_source(symphony, config: dict):
    kind = config["type"]
    if kind == "proprietary":
        tenant = symphony.catalog.tenant(config["tenant_id"])
        source = ProprietaryTableSource(
            source_id=config["source_id"],
            name=config["name"],
            table=tenant.table(config["table_name"]),
            search_fields=tuple(config["search_fields"]),
        )
        source.tenant_id = config["tenant_id"]
        return source
    if kind == "web":
        return WebSearchSource(
            source_id=config["source_id"],
            name=config["name"],
            engine=symphony.engine,
            vertical=config["vertical"],
            sites=tuple(config["sites"]),
            augment_terms=tuple(config["augment_terms"]),
            freshness_days=config["freshness_days"],
        )
    if kind == "service":
        return ServiceSource(
            source_id=config["source_id"],
            name=config["name"],
            bus=symphony.bus,
            service_name=config["service_name"],
            operation=config["operation"],
            query_param=config["query_param"],
            item_fields=tuple(config["item_fields"]),
            title_field=config["title_field"],
            extra_params=dict(config["extra_params"]),
        )
    if kind == "ads":
        return AdSource(
            source_id=config["source_id"],
            name=config["name"],
            ad_service=symphony.ads,
            max_ads=config["max_ads"],
        )
    if kind == "customer":
        source = CustomerProfileSource(
            source_id=config["source_id"],
            name=config["name"],
        )
        for customer_id, terms in config["profiles"].items():
            source.set_profile(customer_id, terms)
        return source
    raise ConfigurationError(f"unknown source type in export: {kind!r}")


def import_platform(symphony, data: dict) -> dict:
    """Restore exported state onto ``symphony``.

    The target platform should be freshly constructed over the same web
    spec and have the same bus services registered. Returns a summary of
    what was restored.
    """
    if data.get("version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported export version: {data.get('version')!r}"
        )
    for tenant_data in data["tenants"]:
        tenant = Tenant(tenant_data["tenant_id"],
                        tenant_data["display_name"])
        for table_json in tenant_data["tables"].values():
            tenant.restore_table(
                RecordTable.from_json(json.dumps(table_json))
            )
        symphony.catalog.register_tenant(tenant)
    for config in data["sources"]:
        symphony.sources.add(_restore_source(symphony, config))
    for app_data in data["applications"]:
        app = ApplicationDefinition.from_dict(app_data)
        symphony.apps.register(app)
        symphony.router.mount(app)
    if "ads" in data:
        symphony.ads.restore_state(data["ads"])
    return {
        "tenants": len(data["tenants"]),
        "sources": len(data["sources"]),
        "applications": len(data["applications"]),
    }


def save_platform(symphony, path) -> None:
    """Export to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(export_platform(symphony), handle, indent=2)


def load_platform(symphony, path) -> dict:
    """Import from a JSON file written by :func:`save_platform`."""
    with open(path, encoding="utf-8") as handle:
        return import_platform(symphony, json.load(handle))
