"""The design surface: Fig. 1 as an API.

"The left bar shows various data sources that application designers can
drag-n-drop onto an application... This drag-n-drop process is also used to
configure how individual results should be laid out."

:class:`Designer` is the palette + canvas; a :class:`DesignSession` is one
application being built. Every gesture of the WYSIWYG tool has a method:
dragging a source onto the app (primary), dragging a source onto a result
layout (supplemental), creating text/image/hyperlink elements from source
fields, styling, templates, and the wizard. ``build()`` compiles and
validates the declarative :class:`ApplicationDefinition`; ``describe_
canvas()`` renders the canvas the way Fig. 1 shows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.application import (
    ApplicationDefinition,
    ElementKind,
    LayoutElement,
    ResultLayout,
    SourceBinding,
    SourceRole,
    SourceSlot,
)
from repro.core.datasources import SourceKind
from repro.core.presentation import PresentationWizard, ThemeRegistry
from repro.errors import ConfigurationError, ValidationError
from repro.util import IdGenerator

__all__ = ["DesignIssue", "SlotHandle", "DesignSession", "Designer"]


@dataclass(frozen=True)
class DesignIssue:
    """A validation finding surfaced in the design surface."""

    severity: str   # "error" | "warning"
    message: str
    where: str = ""


@dataclass
class SlotHandle:
    """A designer-side handle to one dragged-on source slot."""

    binding_id: str
    source_id: str
    role: SourceRole
    heading: str = ""
    max_results: int = 5
    search_fields: tuple = ()
    drive_fields: tuple = ()
    query_suffix: str = ""
    query_strategy: str = ""
    elements: list = field(default_factory=list)
    children: list = field(default_factory=list)   # child SlotHandles
    style: dict = field(default_factory=dict)


class DesignSession:
    """One application under construction on the canvas."""

    def __init__(self, app_id: str, name: str, owner_tenant: str,
                 registry, themes: ThemeRegistry,
                 ids: IdGenerator) -> None:
        self._registry = registry
        self._themes = themes
        self._ids = ids
        self.app_id = app_id
        self.name = name
        self.owner_tenant = owner_tenant
        self.description = ""
        self.theme = "clean"
        self.settings: dict = {}
        self._slots: list[SlotHandle] = []
        self._customer_source_id: str | None = None
        self._element_styles: dict[str, dict] = {}

    # -- palette -----------------------------------------------------------------

    def palette(self) -> list[dict]:
        """The left bar of Fig. 1: every available data source."""
        return [
            self._registry.get(source_id).describe()
            for source_id in self._registry.ids()
        ]

    # -- drag-and-drop gestures -------------------------------------------------------

    def drag_source_onto_app(self, source_id: str, heading: str = "",
                             max_results: int = 5,
                             search_fields=()) -> SlotHandle:
        """Drop a source onto the application canvas as primary content.

        Ad sources dropped on the app become the application's ad slot
        ("allowing ads to be displayed and configured just like any other
        content source").
        """
        source = self._registry.get(source_id)
        role = (SourceRole.ADS if source.kind == SourceKind.ADS
                else SourceRole.PRIMARY)
        for field_name in search_fields:
            if field_name not in source.fields():
                raise ConfigurationError(
                    f"source {source_id!r} has no field {field_name!r} "
                    "to search by"
                )
        handle = SlotHandle(
            binding_id=self._ids.next_id("binding"),
            source_id=source_id,
            role=role,
            heading=heading or source.name,
            max_results=max_results,
            search_fields=tuple(search_fields),
        )
        self._slots.append(handle)
        return handle

    def drag_source_onto_result_layout(self, parent: SlotHandle,
                                       source_id: str,
                                       drive_fields,
                                       heading: str = "",
                                       max_results: int = 3,
                                       query_suffix: str = "",
                                       query_strategy: str = "") \
            -> SlotHandle:
        """Drop a source onto a result layout as supplemental content.

        ``drive_fields`` selects "which fields from the first data source
        to use when querying that secondary data" (§II-A);
        ``query_strategy`` optionally picks a query-generator phrasing
        (keyword/fielded/entity) for the derived query.
        """
        self._registry.get(source_id)  # existence check
        parent_source = self._registry.get(parent.source_id)
        for field_name in drive_fields:
            if field_name not in parent_source.fields():
                raise ConfigurationError(
                    f"drive field {field_name!r} is not a field of the "
                    f"primary source {parent.source_id!r}"
                )
        if not drive_fields:
            raise ValidationError(
                "supplemental content needs at least one drive field"
            )
        handle = SlotHandle(
            binding_id=self._ids.next_id("binding"),
            source_id=source_id,
            role=SourceRole.SUPPLEMENTAL,
            heading=heading,
            max_results=max_results,
            drive_fields=tuple(drive_fields),
            query_suffix=query_suffix,
            query_strategy=query_strategy,
        )
        parent.children.append(handle)
        return handle

    def attach_customer_source(self, source_id: str) -> None:
        """Bind customer data that rewrites the primary query (§II-C)."""
        source = self._registry.get(source_id)
        if source.kind != SourceKind.CUSTOMER:
            raise ConfigurationError(
                f"{source_id!r} is not a customer-data source"
            )
        self._customer_source_id = source_id

    # -- result layout elements ----------------------------------------------------

    def _check_field(self, slot: SlotHandle, field_name: str) -> None:
        source = self._registry.get(slot.source_id)
        if field_name not in source.fields() \
                and field_name not in ("title", "url", "snippet"):
            raise ConfigurationError(
                f"source {slot.source_id!r} has no field {field_name!r}"
            )

    def add_text(self, slot: SlotHandle, bind_field: str,
                 **style) -> LayoutElement:
        self._check_field(slot, bind_field)
        element = LayoutElement(ElementKind.TEXT, bind_field,
                                style=self._css(style))
        slot.elements.append(element)
        return element

    def add_image(self, slot: SlotHandle, bind_field: str,
                  **style) -> LayoutElement:
        self._check_field(slot, bind_field)
        element = LayoutElement(ElementKind.IMAGE, bind_field,
                                style=self._css(style))
        slot.elements.append(element)
        return element

    def add_hyperlink(self, slot: SlotHandle, text_field: str,
                      href_field: str = "", **style) -> LayoutElement:
        self._check_field(slot, text_field)
        if href_field:
            self._check_field(slot, href_field)
        element = LayoutElement(ElementKind.HYPERLINK, text_field,
                                href_field=href_field,
                                style=self._css(style))
        slot.elements.append(element)
        return element

    @staticmethod
    def _css(style: dict) -> dict:
        return {prop.replace("_", "-"): value
                for prop, value in style.items()}

    def set_slot_style(self, slot: SlotHandle, **style) -> None:
        slot.style.update(self._css(style))

    # -- editing gestures (rearranging the canvas) ------------------------------

    def remove_element(self, slot: SlotHandle,
                       element: LayoutElement) -> None:
        """Drag an element off the result layout."""
        try:
            slot.elements.remove(element)
        except ValueError:
            raise ConfigurationError(
                "element is not part of this result layout"
            ) from None

    def move_element(self, slot: SlotHandle, element: LayoutElement,
                     position: int) -> None:
        """Reorder an element within the result layout."""
        if element not in slot.elements:
            raise ConfigurationError(
                "element is not part of this result layout"
            )
        slot.elements.remove(element)
        position = max(0, min(position, len(slot.elements)))
        slot.elements.insert(position, element)

    def remove_slot(self, handle: SlotHandle) -> None:
        """Drag a source off the application (top-level or nested)."""
        if handle in self._slots:
            self._slots.remove(handle)
            return
        for parent in self._slots:
            if handle in parent.children:
                parent.children.remove(handle)
                return
        raise ConfigurationError("slot is not on this canvas")

    # -- presentation ---------------------------------------------------------------

    def apply_template(self, theme_name: str) -> None:
        self._themes.get(theme_name)  # raises NotFoundError if unknown
        self.theme = theme_name

    def run_wizard(self, tone: str = "professional",
                   accent_color: str | None = None) -> dict:
        recommendation = PresentationWizard(self._themes).recommend(
            tone, accent_color
        )
        self.apply_template(recommendation["theme"])
        return recommendation

    # -- validation & compile ----------------------------------------------------------

    def validate(self) -> list[DesignIssue]:
        issues = []
        primaries = [s for s in self._slots
                     if s.role == SourceRole.PRIMARY]
        if not primaries:
            issues.append(DesignIssue(
                "error", "application has no primary content source"
            ))
        for slot in primaries:
            if not slot.elements:
                issues.append(DesignIssue(
                    "warning",
                    "result layout has no elements; results will render "
                    "empty",
                    where=slot.binding_id,
                ))
            source = self._registry.get(slot.source_id)
            if source.kind == SourceKind.PROPRIETARY \
                    and not slot.search_fields:
                issues.append(DesignIssue(
                    "warning",
                    "no search fields configured; all fields will be "
                    "searched",
                    where=slot.binding_id,
                ))
            for child in slot.children:
                for drive in child.drive_fields:
                    if drive not in source.fields():
                        issues.append(DesignIssue(
                            "error",
                            f"drive field {drive!r} missing from primary "
                            "source",
                            where=child.binding_id,
                        ))
        return issues

    def build(self) -> ApplicationDefinition:
        """Compile the canvas into a validated application definition."""
        errors = [i for i in self.validate() if i.severity == "error"]
        if errors:
            raise ConfigurationError(
                "cannot build application: "
                + "; ".join(i.message for i in errors)
            )
        bindings = []
        slots = []
        for handle in self._slots:
            bindings.append(self._binding_of(handle))
            slots.append(self._slot_of(handle))
            for child in handle.children:
                bindings.append(self._binding_of(child))
        if self._customer_source_id:
            bindings.append(SourceBinding(
                binding_id=self._ids.next_id("binding"),
                source_id=self._customer_source_id,
                role=SourceRole.CUSTOMER,
                max_results=1,
            ))
        app = ApplicationDefinition(
            app_id=self.app_id,
            name=self.name,
            owner_tenant=self.owner_tenant,
            description=self.description,
            theme=self.theme,
            settings=dict(self.settings),
            bindings=tuple(bindings),
            slots=tuple(slots),
        )
        app.validate()
        return app

    @staticmethod
    def _binding_of(handle: SlotHandle) -> SourceBinding:
        return SourceBinding(
            binding_id=handle.binding_id,
            source_id=handle.source_id,
            role=handle.role,
            max_results=handle.max_results,
            search_fields=handle.search_fields,
            drive_fields=handle.drive_fields,
            query_suffix=handle.query_suffix,
            query_strategy=handle.query_strategy,
        )

    def _slot_of(self, handle: SlotHandle) -> SourceSlot:
        return SourceSlot(
            binding_id=handle.binding_id,
            heading=handle.heading,
            result_layout=ResultLayout(tuple(handle.elements)),
            children=tuple(self._slot_of(c) for c in handle.children),
            style=dict(handle.style),
        )

    # -- canvas rendering (Fig. 1) ---------------------------------------------------

    def describe_canvas(self) -> str:
        """A textual rendering of the design surface, Fig. 1 style."""
        lines = [f"=== Symphony Designer: {self.name} "
                 f"(theme: {self.theme}) ==="]
        lines.append("[Palette]")
        for entry in self.palette():
            lines.append(
                f"  - {entry['name']} ({entry['kind']}): "
                f"fields={', '.join(entry['fields'])}"
            )
        lines.append("[Canvas]")
        if not self._slots:
            lines.append("  (empty — drag a data source here)")
        for handle in self._slots:
            lines.extend(self._describe_slot(handle, indent=2))
        if self._customer_source_id:
            lines.append(
                f"  * customer data: {self._customer_source_id} "
                "(rewrites the primary query)"
            )
        return "\n".join(lines)

    def _describe_slot(self, handle: SlotHandle, indent: int) -> list[str]:
        pad = " " * indent
        lines = [
            f"{pad}[{handle.role.value}] {handle.heading or handle.source_id}"
            f" <- {handle.source_id} (max {handle.max_results})"
        ]
        if handle.search_fields:
            lines.append(
                f"{pad}  search by: {', '.join(handle.search_fields)}"
            )
        if handle.drive_fields:
            suffix = f' + "{handle.query_suffix}"' if handle.query_suffix \
                else ""
            lines.append(
                f"{pad}  driven by: {', '.join(handle.drive_fields)}{suffix}"
            )
        for element in handle.elements:
            detail = element.bind_field
            if element.kind == ElementKind.HYPERLINK and element.href_field:
                detail += f" -> {element.href_field}"
            lines.append(f"{pad}  element: {element.kind.value}({detail})")
        for child in handle.children:
            lines.extend(self._describe_slot(child, indent + 4))
        return lines


class Designer:
    """The design tool: opens sessions against the platform's sources."""

    def __init__(self, registry, themes: ThemeRegistry | None = None,
                 ids: IdGenerator | None = None) -> None:
        self._registry = registry
        self._themes = themes or ThemeRegistry()
        self._ids = ids or IdGenerator()

    def new_application(self, name: str,
                        owner_tenant: str) -> DesignSession:
        return DesignSession(
            app_id=self._ids.next_id("app"),
            name=name,
            owner_tenant=owner_tenant,
            registry=self._registry,
            themes=self._themes,
            ids=self._ids,
        )

    def edit_application(self, app) -> DesignSession:
        """Reopen a compiled application on the canvas for editing.

        The session reconstructs every slot handle, element, and
        supplemental child from the definition; rebuilding and rehosting
        under the same app id updates the deployed application in place.
        """
        session = DesignSession(
            app_id=app.app_id,
            name=app.name,
            owner_tenant=app.owner_tenant,
            registry=self._registry,
            themes=self._themes,
            ids=self._ids,
        )
        session.description = app.description
        session.theme = app.theme
        session.settings = dict(app.settings)
        for slot in app.slots:
            session._slots.append(self._handle_from(app, slot))
        for binding in app.bindings_by_role(SourceRole.CUSTOMER):
            session._customer_source_id = binding.source_id
        return session

    def clone_application(self, app, new_name: str,
                          owner_tenant: str = "") -> DesignSession:
        """Like :meth:`edit_application` but as a brand-new app id."""
        session = self.edit_application(app)
        session.app_id = self._ids.next_id("app")
        session.name = new_name
        if owner_tenant:
            session.owner_tenant = owner_tenant
        # Fresh binding ids so clone and original never collide.
        for handle in session._slots:
            self._remint_ids(handle)
        return session

    def _remint_ids(self, handle: SlotHandle) -> None:
        handle.binding_id = self._ids.next_id("binding")
        for child in handle.children:
            self._remint_ids(child)

    def _handle_from(self, app, slot) -> SlotHandle:
        binding = app.binding(slot.binding_id)
        handle = SlotHandle(
            binding_id=binding.binding_id,
            source_id=binding.source_id,
            role=binding.role,
            heading=slot.heading,
            max_results=binding.max_results,
            search_fields=binding.search_fields,
            drive_fields=binding.drive_fields,
            query_suffix=binding.query_suffix,
            query_strategy=binding.query_strategy,
            elements=list(slot.result_layout.elements),
            style=dict(slot.style),
        )
        handle.children = [self._handle_from(app, child)
                           for child in slot.children]
        return handle
