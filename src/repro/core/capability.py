"""Capability profile: the vocabulary of the paper's Table I.

Each platform (Symphony itself and the five baselines) answers the same
six questions — search API, custom sites, proprietary structured data,
monetization, custom UI, deployment. Benchmarks regenerate Table I by
*probing* the live implementations (attempting uploads, site-restricted
searches, monetization configuration...) rather than by printing a
hard-coded matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CapabilityProfile", "TABLE_I_ROWS"]

TABLE_I_ROWS = (
    "Search API",
    "Custom Sites",
    "Proprietary, Structured Data",
    "Monetization",
    "Custom UI",
    "Deployment of Search Applications",
)


@dataclass(frozen=True)
class CapabilityProfile:
    """One column of Table I."""

    system: str
    search_api: str
    custom_sites: str
    proprietary_structured_data: str
    monetization: str
    custom_ui: str
    deployment: str

    def cells(self) -> tuple:
        """Cells in TABLE_I_ROWS order."""
        return (
            self.search_api,
            self.custom_sites,
            self.proprietary_structured_data,
            self.monetization,
            self.custom_ui,
            self.deployment,
        )

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            **dict(zip(TABLE_I_ROWS, self.cells())),
        }
