"""Capability profile: the vocabulary of the paper's Table I.

Each platform (Symphony itself and the five baselines) answers the same
six questions — search API, custom sites, proprietary structured data,
monetization, custom UI, deployment. Benchmarks regenerate Table I by
*probing* the live implementations (attempting uploads, site-restricted
searches, monetization configuration...) rather than by printing a
hard-coded matrix.

:class:`BackendDescriptor` is the machine-readable slice of the same
vocabulary: what the federation layer (:mod:`repro.federation`) needs to
know to route, rewrite, and budget a query for one search backend. Each
baseline derives its descriptor from its own
:class:`CapabilityProfile` (one source of truth), so Table I and the
federation ``BackendRegistry`` can never disagree about, say, which
search API a platform answers with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CapabilityProfile", "BackendDescriptor", "TABLE_I_ROWS"]

TABLE_I_ROWS = (
    "Search API",
    "Custom Sites",
    "Proprietary, Structured Data",
    "Monetization",
    "Custom UI",
    "Deployment of Search Applications",
)


@dataclass(frozen=True)
class CapabilityProfile:
    """One column of Table I."""

    system: str
    search_api: str
    custom_sites: str
    proprietary_structured_data: str
    monetization: str
    custom_ui: str
    deployment: str

    def cells(self) -> tuple:
        """Cells in TABLE_I_ROWS order."""
        return (
            self.search_api,
            self.custom_sites,
            self.proprietary_structured_data,
            self.monetization,
            self.custom_ui,
            self.deployment,
        )

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            **dict(zip(TABLE_I_ROWS, self.cells())),
        }


@dataclass(frozen=True)
class BackendDescriptor:
    """Machine-readable capabilities of one federated search backend.

    The query-facing subset of the Table I vocabulary: which verticals a
    backend serves, whether it honours site restriction, whether its
    query language accepts fielded (``field:value``) predicates, and what
    a query there costs.  ``generation_keys`` names the data dependencies
    (see :mod:`repro.gateway.generations`) a cached result computed over
    this backend must be stamped with.
    """

    backend_id: str
    system: str
    search_api: str
    verticals: tuple = ("web",)
    supports_sites: bool = True
    #: ``field:value`` predicates accepted by the backend's query
    #: language (the fielded query-generator strategy needs this).
    supports_fielded: bool = False
    #: Entity-level querying: the backend indexes a dedicated entity
    #: field the entity-expanded strategy can anchor on.
    supports_entity: bool = False
    #: Relative per-query cost (local substrate = 1.0; metered external
    #: APIs cost more). The query-generator lab charges this per call.
    cost_per_query: float = 1.0
    generation_keys: tuple = ()
    notes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "backend_id": self.backend_id,
            "system": self.system,
            "search_api": self.search_api,
            "verticals": list(self.verticals),
            "supports_sites": self.supports_sites,
            "supports_fielded": self.supports_fielded,
            "supports_entity": self.supports_entity,
            "cost_per_query": self.cost_per_query,
            "generation_keys": list(self.generation_keys),
            "notes": dict(self.notes),
        }
