"""The application definition: what the designer builds, what the runtime
executes.

§II-C: "The fields that should be used as arguments in these queries are
specified by the application designer in the configuration file for the
application." This module is that configuration file's object model — a
fully declarative, JSON-round-trippable description of source bindings,
primary/supplemental roles, drive-field mappings, the result layout tree,
and presentation settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError, ValidationError

__all__ = [
    "SourceRole",
    "ElementKind",
    "LayoutElement",
    "ResultLayout",
    "SourceSlot",
    "SourceBinding",
    "ApplicationDefinition",
]


class SourceRole(str, Enum):
    """How a bound source participates in query execution."""

    PRIMARY = "primary"
    SUPPLEMENTAL = "supplemental"
    ADS = "ads"
    CUSTOMER = "customer"


class ElementKind(str, Enum):
    """The HTML element kinds the designer palette offers."""

    TEXT = "text"
    IMAGE = "image"
    HYPERLINK = "hyperlink"


@dataclass(frozen=True)
class LayoutElement:
    """One HTML element in a result layout, bound to a source field.

    * TEXT — renders the bound field's value;
    * IMAGE — the bound field supplies ``src``;
    * HYPERLINK — the bound field supplies the anchor text and
      ``href_field`` supplies the target (defaults to the item URL).
    """

    kind: ElementKind
    bind_field: str
    href_field: str = ""
    style: dict = field(default_factory=dict)
    css_class: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "bind_field": self.bind_field,
            "href_field": self.href_field,
            "style": dict(self.style),
            "css_class": self.css_class,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LayoutElement":
        return cls(
            kind=ElementKind(data["kind"]),
            bind_field=data["bind_field"],
            href_field=data.get("href_field", ""),
            style=dict(data.get("style", {})),
            css_class=data.get("css_class", ""),
        )


@dataclass(frozen=True)
class ResultLayout:
    """How one result item renders: an ordered list of elements."""

    elements: tuple = ()

    def to_dict(self) -> dict:
        return {"elements": [e.to_dict() for e in self.elements]}

    @classmethod
    def from_dict(cls, data: dict) -> "ResultLayout":
        return cls(tuple(
            LayoutElement.from_dict(e) for e in data.get("elements", ())
        ))


@dataclass(frozen=True)
class SourceSlot:
    """A region of the page fed by one source binding.

    ``children`` are supplemental slots rendered *inside each result* of
    this slot — the paper's "dragging additional data sources onto the
    current result layout".
    """

    binding_id: str
    heading: str = ""
    result_layout: ResultLayout = field(default_factory=ResultLayout)
    children: tuple = ()
    style: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "binding_id": self.binding_id,
            "heading": self.heading,
            "result_layout": self.result_layout.to_dict(),
            "children": [c.to_dict() for c in self.children],
            "style": dict(self.style),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SourceSlot":
        return cls(
            binding_id=data["binding_id"],
            heading=data.get("heading", ""),
            result_layout=ResultLayout.from_dict(
                data.get("result_layout", {})
            ),
            children=tuple(
                cls.from_dict(c) for c in data.get("children", ())
            ),
            style=dict(data.get("style", {})),
        )

    def walk(self):
        """Yield this slot and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class SourceBinding:
    """One data source attached to the application.

    * PRIMARY bindings receive the end-user query; ``search_fields``
      optionally narrows which proprietary fields are searched.
    * SUPPLEMENTAL bindings are driven by ``drive_fields`` of the parent
      slot's items, joined and suffixed with ``query_suffix``.
    """

    binding_id: str
    source_id: str
    role: SourceRole
    max_results: int = 5
    search_fields: tuple = ()
    drive_fields: tuple = ()
    query_suffix: str = ""
    #: Query-generator strategy applied when deriving this binding's
    #: query ("" = verbatim; see repro.federation.querygen).
    query_strategy: str = ""

    def __post_init__(self):
        if self.max_results <= 0:
            raise ValidationError("max_results must be positive")
        if self.role == SourceRole.SUPPLEMENTAL and not self.drive_fields:
            raise ValidationError(
                f"supplemental binding {self.binding_id!r} needs "
                "drive_fields"
            )

    def to_dict(self) -> dict:
        return {
            "binding_id": self.binding_id,
            "source_id": self.source_id,
            "role": self.role.value,
            "max_results": self.max_results,
            "search_fields": list(self.search_fields),
            "drive_fields": list(self.drive_fields),
            "query_suffix": self.query_suffix,
            "query_strategy": self.query_strategy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SourceBinding":
        return cls(
            binding_id=data["binding_id"],
            source_id=data["source_id"],
            role=SourceRole(data["role"]),
            max_results=data.get("max_results", 5),
            search_fields=tuple(data.get("search_fields", ())),
            drive_fields=tuple(data.get("drive_fields", ())),
            query_suffix=data.get("query_suffix", ""),
            query_strategy=data.get("query_strategy", ""),
        )


@dataclass(frozen=True)
class ApplicationDefinition:
    """The complete declarative application."""

    app_id: str
    name: str
    owner_tenant: str
    bindings: tuple = ()       # SourceBinding
    slots: tuple = ()          # top-level SourceSlot (primary + ads)
    theme: str = "clean"
    description: str = ""
    settings: dict = field(default_factory=dict)

    # -- lookups ---------------------------------------------------------------

    def binding(self, binding_id: str) -> SourceBinding:
        for candidate in self.bindings:
            if candidate.binding_id == binding_id:
                return candidate
        raise ConfigurationError(
            f"app {self.app_id!r} has no binding {binding_id!r}"
        )

    def bindings_by_role(self, role: SourceRole) -> list[SourceBinding]:
        return [b for b in self.bindings if b.role == role]

    def all_slots(self):
        for slot in self.slots:
            yield from slot.walk()

    def validate(self) -> None:
        """Structural validation; raises :class:`ConfigurationError`."""
        binding_ids = [b.binding_id for b in self.bindings]
        if len(binding_ids) != len(set(binding_ids)):
            raise ConfigurationError("duplicate binding ids")
        for slot in self.all_slots():
            self.binding(slot.binding_id)  # raises if missing
        primaries = self.bindings_by_role(SourceRole.PRIMARY)
        if not primaries:
            raise ConfigurationError(
                f"app {self.app_id!r} has no primary content source"
            )
        top_level_ids = {slot.binding_id for slot in self.slots}
        for binding in primaries:
            if binding.binding_id not in top_level_ids:
                raise ConfigurationError(
                    f"primary binding {binding.binding_id!r} has no "
                    "top-level slot"
                )
        for slot in self.slots:
            for child in slot.children:
                child_binding = self.binding(child.binding_id)
                if child_binding.role != SourceRole.SUPPLEMENTAL:
                    raise ConfigurationError(
                        f"nested slot {child.binding_id!r} must bind a "
                        "supplemental source"
                    )

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "app_id": self.app_id,
            "name": self.name,
            "owner_tenant": self.owner_tenant,
            "description": self.description,
            "theme": self.theme,
            "settings": dict(self.settings),
            "bindings": [b.to_dict() for b in self.bindings],
            "slots": [s.to_dict() for s in self.slots],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ApplicationDefinition":
        return cls(
            app_id=data["app_id"],
            name=data["name"],
            owner_tenant=data["owner_tenant"],
            description=data.get("description", ""),
            theme=data.get("theme", "clean"),
            settings=dict(data.get("settings", {})),
            bindings=tuple(
                SourceBinding.from_dict(b) for b in data.get("bindings", ())
            ),
            slots=tuple(
                SourceSlot.from_dict(s) for s in data.get("slots", ())
            ),
        )
