"""Query execution: Fig. 2 as code.

A customer query arrives from the embedded JavaScript shim, is processed by
the primary content source(s) (optionally rewritten using customer data),
fans out to supplemental sources driven by fields of each primary result,
merges with ads, renders to HTML per the configured layout, and returns to
the shim for injection into the host page. Every stage is timed into a
:class:`PipelineTrace`, supplemental failures are isolated into warnings,
and a per-(source, query) cache with TTL flattens repeat-query cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace

from repro.core.application import SourceRole
from repro.core.datasources import (
    CustomerProfileSource,
    SourceQuery,
    SourceResult,
)
from repro.core.presentation import HtmlRenderer
from repro.errors import (
    DeadlineExceededError,
    NotFoundError,
    ReproError,
)
# ResultCache, CircuitBreaker, and RateLimiter grew up in this module;
# they now live with the serving tier but keep their historical import
# path (``repro.core.runtime.ResultCache`` etc.) through this re-export.
from repro.gateway.primitives import (
    CircuitBreaker,
    RateLimiter,
    ResultCache,
)
from repro.resilience import Deadline, Retrier
from repro.searchengine.logs import QueryEvent
from repro.slo import NULL_SLO
from repro.telemetry import Telemetry, render_span_tree
from repro.util import SimClock

__all__ = [
    "QueryRequest",
    "StageTiming",
    "PipelineTrace",
    "PrimaryResultView",
    "ApplicationResponse",
    "ResultCache",
    "CircuitBreaker",
    "RateLimiter",
    "ApplicationRegistry",
    "SymphonyRuntime",
]


@dataclass(frozen=True)
class QueryRequest:
    """What the JS shim forwards to Symphony."""

    app_id: str
    query_text: str
    session_id: str = ""
    customer_id: str = ""
    page: int = 0
    #: Per-request deadline budget in simulated ms; 0 means "use the
    #: runtime's configured default" (or no deadline at all when the
    #: resilience layer is off).
    deadline_ms: float = 0.0


@dataclass(frozen=True)
class StageTiming:
    name: str
    elapsed_ms: float
    detail: str = ""


class PipelineTrace:
    """Per-stage timings and warnings for one executed query.

    With telemetry enabled this is a thin view over the query's span
    tree: ``span`` is the root :class:`~repro.telemetry.trace.Span`
    and ``describe(tree=True)`` renders the full hierarchy (stages,
    per-source calls, shard and replica attempts). Without telemetry
    it is exactly the flat stage list it always was.
    """

    __slots__ = ("stages", "warnings", "span", "cache_hits",
                 "cache_misses", "degraded", "sources_ok",
                 "sources_failed")

    def __init__(self, span=None) -> None:
        self.stages: list = []
        self.warnings: list = []
        self.span = span
        self.cache_hits = 0
        self.cache_misses = 0
        # True when this query served partial results: a source failed
        # or was skipped (circuit open, deadline expired), or a source
        # itself reported degraded results (cluster shard loss).
        self.degraded = False
        # Source-call outcomes: answered (live or cached) vs skipped or
        # failed. Their ratio is the query's result *completeness*,
        # which the SLO layer judges alongside latency and degradation.
        self.sources_ok = 0
        self.sources_failed = 0

    def completeness(self) -> float:
        """Answered fraction of attempted source calls (1.0 when none)."""
        attempted = self.sources_ok + self.sources_failed
        return self.sources_ok / attempted if attempted else 1.0

    def add_stage(self, name: str, elapsed_ms: float,
                  detail: str = "") -> None:
        self.stages.append(StageTiming(name, round(elapsed_ms, 3), detail))

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def stage(self, name: str) -> StageTiming:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise NotFoundError(f"no stage {name!r} in trace")

    def total_ms(self) -> float:
        return round(sum(s.elapsed_ms for s in self.stages), 3)

    def describe(self, tree: bool = False) -> str:
        if tree and self.span is not None:
            spans = self.span.tracer.trace_spans(self.span.trace_id)
            lines = ["Pipeline trace (span tree):"]
            lines.extend(
                f"  {line}"
                for line in render_span_tree(spans).splitlines()
            )
            for warning in self.warnings:
                lines.append(f"  warning: {warning}")
            return "\n".join(lines)
        lines = ["Pipeline trace:"]
        for stage in self.stages:
            detail = f"  ({stage.detail})" if stage.detail else ""
            lines.append(
                f"  {stage.name:<22} {stage.elapsed_ms:>9.3f} ms{detail}"
            )
        lines.append(f"  {'TOTAL':<22} {self.total_ms():>9.3f} ms")
        if self.degraded:
            lines.append("  DEGRADED: partial results")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PrimaryResultView:
    """One primary item plus its per-binding supplemental results."""

    slot_binding_id: str
    item: object                      # SourceItem
    supplemental: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ApplicationResponse:
    """What goes back to the embedded JavaScript."""

    app_id: str
    query_text: str
    html: str
    views: tuple
    ads: tuple
    trace: PipelineTrace
    #: Mirrors ``trace.degraded`` — partial results were served.
    degraded: bool = False


class ApplicationRegistry:
    """Hosted applications by id (the paper's Hosting capability).

    Re-registering an id updates the deployed application in place and
    appends the previous definition to its version history, so a
    designer can inspect (or restore) earlier revisions.
    """

    def __init__(self) -> None:
        self._apps: dict[str, object] = {}
        self._history: dict[str, list] = {}

    def register(self, app) -> None:
        app.validate()
        previous = self._apps.get(app.app_id)
        if previous is not None and previous != app:
            self._history.setdefault(app.app_id, []).append(previous)
        self._apps[app.app_id] = app

    def get(self, app_id: str):
        try:
            return self._apps[app_id]
        except KeyError:
            raise NotFoundError(
                f"no application hosted under id {app_id!r}"
            ) from None

    def version(self, app_id: str) -> int:
        """1-based revision number of the current definition."""
        self.get(app_id)
        return len(self._history.get(app_id, ())) + 1

    def history(self, app_id: str) -> list:
        """Previous definitions, oldest first (excludes the current)."""
        self.get(app_id)
        return list(self._history.get(app_id, ()))

    def rollback(self, app_id: str):
        """Restore the previous revision; returns the now-current app."""
        revisions = self._history.get(app_id)
        if not revisions:
            raise NotFoundError(
                f"application {app_id!r} has no previous revision"
            )
        previous = revisions.pop()
        self._apps[app_id] = previous
        return previous

    def unregister(self, app_id: str) -> None:
        if app_id not in self._apps:
            raise NotFoundError(f"no application {app_id!r}")
        del self._apps[app_id]
        self._history.pop(app_id, None)

    def ids(self) -> list[str]:
        return sorted(self._apps)


class SymphonyRuntime:
    """Executes hosted applications (Fig. 2)."""

    _SHIM_FORWARD_MS = 8.0    # browser -> Symphony
    _RESPOND_MS = 6.0         # Symphony -> browser inject
    _DISPATCH_MS = 2.0        # runtime overhead per live source call

    def __init__(self, registry, apps: ApplicationRegistry,
                 renderer: HtmlRenderer | None = None,
                 clock: SimClock | None = None,
                 log=None,
                 cache: ResultCache | None = None,
                 cache_enabled: bool = True,
                 supplemental_mode: str = "per_result",
                 rate_limiter: "RateLimiter | None" = None,
                 circuit_breaker: "CircuitBreaker | None" = None,
                 community_feedback=None,
                 telemetry: Telemetry | None = None,
                 resilience=None,
                 slo=None) -> None:
        if supplemental_mode not in ("per_result", "batched"):
            raise ValueError(
                f"unknown supplemental mode {supplemental_mode!r}"
            )
        self._registry = registry
        self._apps = apps
        self._renderer = renderer or HtmlRenderer()
        self.clock = clock or SimClock()
        self._log = log
        self.telemetry = telemetry or Telemetry.disabled()
        self._tracer = self.telemetry.tracer
        self._metrics = self.telemetry.metrics
        # Opt-in SLO judgment (see repro.slo): every finished query is
        # reported to the engine; the null object keeps this one
        # attribute read on the unjudged path.
        self._slo = slo or NULL_SLO
        self.cache = cache or ResultCache()
        self.cache_enabled = cache_enabled
        if self.telemetry.enabled:
            self.telemetry.bind_result_cache(self.cache)
        # DESIGN.md §6 ablation: derive one focused query per primary
        # result (the paper's flow) vs one disjunctive query per
        # supplemental binding, fanned back out to the results.
        self.supplemental_mode = supplemental_mode
        self.rate_limiter = rate_limiter
        self.circuit_breaker = circuit_breaker or CircuitBreaker(
            self.clock,
            events=(self.telemetry.events if self.telemetry.enabled
                    else None),
        )
        # Social search (future work item 3): when attached, community
        # votes re-rank each application's primary results.
        self.community_feedback = community_feedback
        # Resilience (opt-in): per-query deadlines plus deterministic
        # retries around every live source call.
        self.resilience = resilience
        self._retrier: Retrier | None = None
        if resilience is not None:
            self._retrier = Retrier(
                self.clock, resilience.retry,
                events=(self.telemetry.events if self.telemetry.enabled
                        else None),
                metrics=(self._metrics if self.telemetry.enabled
                         else None),
            )

    # -- entry point ----------------------------------------------------------

    def handle_query(self, request: QueryRequest) -> ApplicationResponse:
        slo = self._slo
        queue_wait_ms = 0.0
        started_ms = 0
        trace_id = ""
        if slo.enabled:
            # On the gateway path the query span nests under the
            # gateway span, whose queue wait happened *before* it
            # opened — fold it into the tenant-visible latency.
            parent = self._tracer.current()
            if parent is not None \
                    and getattr(parent, "name", "") == "gateway":
                queue_wait_ms = float(
                    parent.attrs.get("queue_wait_ms", 0.0))
            started_ms = self.clock.now_ms
        try:
            with self._tracer.span("query") as root:
                if root:
                    root.set("app_id", request.app_id)
                    root.set("query", request.query_text)
                    trace_id = root.trace_id
                response = self._handle_query_traced(request,
                                                     root or None)
        except ReproError:
            # The query path raised (quota, unknown app, ...): still an
            # observed outcome for the tenant's availability budget.
            if slo.enabled:
                slo.observe(
                    tenant=request.app_id,
                    latency_ms=(self.clock.now_ms - started_ms
                                + queue_wait_ms),
                    degraded=True, errored=True, completeness=0.0,
                    trace_id=trace_id, start_ms=started_ms,
                    end_ms=self.clock.now_ms,
                )
            raise
        if slo.enabled:
            slo.observe(
                tenant=request.app_id,
                latency_ms=(self.clock.now_ms - started_ms
                            + queue_wait_ms),
                degraded=response.degraded,
                errored=False,
                completeness=response.trace.completeness(),
                trace_id=trace_id,
                start_ms=started_ms,
                end_ms=self.clock.now_ms,
            )
        if self._metrics.enabled:
            self._metrics.counter("queries_total").inc()
            for stage in response.trace.stages:
                self._metrics.histogram(
                    "stage_ms", stage=stage.name
                ).observe(stage.elapsed_ms)
            self._metrics.histogram("query_total_ms").observe(
                response.trace.total_ms()
            )
            if response.trace.warnings:
                self._metrics.counter("query_warnings_total").inc(
                    len(response.trace.warnings)
                )
            if response.degraded:
                self._metrics.counter(
                    "degraded_responses_total"
                ).inc()
        return response

    def _make_deadline(self, request: QueryRequest) -> Deadline | None:
        """The per-query budget: request override, else configured
        default, else none (deadlines are opt-in)."""
        budget = request.deadline_ms
        if not budget and self.resilience is not None:
            budget = self.resilience.deadline_ms
        if not budget or budget <= 0:
            return None
        return Deadline(self.clock, budget)

    def _note_deadline(self, trace, deadline, detail: str) -> None:
        """Surface a deadline-driven degradation exactly once per event
        source: warning + degraded flag always, telemetry event and
        counter only for the first note of this query."""
        trace.degraded = True
        trace.warnings.append(
            f"deadline exceeded "
            f"(overshoot {deadline.overshoot_ms():.0f}ms): {detail}"
        )
        if not deadline.reported:
            deadline.reported = True
            self.telemetry.events.emit(
                "deadline.exceeded",
                budget_ms=deadline.budget_ms,
                overshoot_ms=deadline.overshoot_ms(),
            )
            self._metrics.counter("deadline_exceeded_total").inc()

    def _handle_query_traced(self, request: QueryRequest,
                             root) -> ApplicationResponse:
        trace = PipelineTrace(span=root)
        app = self._apps.get(request.app_id)
        if self.rate_limiter is not None:
            self.rate_limiter.check(app.app_id)
        deadline = self._make_deadline(request)
        if root and deadline is not None:
            root.set("deadline_budget_ms", deadline.budget_ms)

        # Stage: JS shim forwards the query to Symphony.
        with self._tracer.span("stage:receive"):
            self.clock.advance(self._SHIM_FORWARD_MS)
        trace.add_stage("receive", self._SHIM_FORWARD_MS,
                        f"query {request.query_text!r} from "
                        f"app {app.app_id}")

        query_text = self._rewrite_with_customer_data(
            app, request, trace
        )

        views, ads = self._execute_sources(app, request, query_text,
                                           trace, deadline)

        # Stage: merge + format to HTML.
        start_ms = self.clock.now_ms
        with self._tracer.span("stage:merge+render") as sp:
            html = self._renderer.render_app(app, views, ads)
            self.clock.advance(1.0 + 0.02 * len(html) / 100.0)
            if sp:
                sp.set("views", len(views))
                sp.set("ads", len(ads))
                sp.set("bytes", len(html))
        trace.add_stage(
            "merge+render", self.clock.now_ms - start_ms,
            f"{len(views)} primary views, {len(ads)} ads, "
            f"{len(html)} bytes",
        )

        # Stage: respond to the shim, which injects into the page.
        with self._tracer.span("stage:respond"):
            self.clock.advance(self._RESPOND_MS)
        trace.add_stage("respond", self._RESPOND_MS, "HTML to JS shim")

        if self._log is not None:
            self._log.log_query(QueryEvent(
                timestamp_ms=self.clock.now_ms,
                query=request.query_text,
                vertical="app",
                app_id=app.app_id,
                session_id=request.session_id or None,
                result_urls=tuple(
                    view.item.url for view in views if view.item.url
                ),
            ))
        if (deadline is not None and deadline.expired
                and not deadline.reported):
            # The budget ran out after the last source call (e.g. during
            # render) — still surface the overrun in the metadata.
            self._note_deadline(trace, deadline, "query overran budget")
        if root and trace.degraded:
            root.set("degraded", True)
        return ApplicationResponse(
            app_id=app.app_id,
            query_text=request.query_text,
            html=html,
            views=tuple(views),
            ads=tuple(ads),
            trace=trace,
            degraded=trace.degraded,
        )

    # -- stages -----------------------------------------------------------------

    def _rewrite_with_customer_data(self, app, request,
                                    trace) -> str:
        query_text = request.query_text
        customer_bindings = app.bindings_by_role(SourceRole.CUSTOMER)
        if not customer_bindings:
            return query_text
        start = self.clock.now_ms
        with self._tracer.span("stage:customer-rewrite") as sp:
            for binding in customer_bindings:
                source = self._registry.get(binding.source_id)
                if isinstance(source, CustomerProfileSource):
                    query_text = source.rewrite(
                        query_text, request.customer_id or None
                    )
            self.clock.advance(0.5)
            if sp:
                sp.set("rewritten", query_text != request.query_text)
        trace.add_stage(
            "customer-rewrite", self.clock.now_ms - start,
            (f"rewritten to {query_text!r}"
             if query_text != request.query_text else "no profile match"),
        )
        return query_text

    def _execute_sources(self, app, request, query_text, trace,
                         deadline=None):
        views: list[PrimaryResultView] = []
        ads: tuple = ()
        context = {
            "app_id": app.app_id,
            "session_id": request.session_id,
            "now_ms": self.clock.now_ms,
        }
        if deadline is not None:
            # Sources pick this up from the query context and propagate
            # it into scatter-gather / bus / auction calls.
            context["deadline"] = deadline

        # Stage: primary content sources.
        primary_start = self.clock.now_ms
        primary_count = 0
        page = max(0, request.page)
        with self._tracer.span("stage:primary") as stage_span:
            for slot in app.slots:
                binding = app.binding(slot.binding_id)
                if binding.role == SourceRole.PRIMARY:
                    result = self._query_source(
                        binding, query_text, context, trace,
                        search_fields=binding.search_fields,
                        offset=page * binding.max_results,
                    )
                    items = list(result.items)
                    if self.community_feedback is not None:
                        items = self.community_feedback.rerank(
                            app.app_id, items
                        )
                    primary_count += len(items)
                    for item in items:
                        views.append(PrimaryResultView(
                            slot_binding_id=slot.binding_id,
                            item=item,
                            supplemental={},
                        ))
            if stage_span:
                stage_span.set("items", primary_count)
        trace.add_stage(
            "primary", self.clock.now_ms - primary_start,
            f"{primary_count} items",
        )

        # Stage: supplemental fan-out, driven by primary-result fields.
        supplemental_start = self.clock.now_ms
        if self.supplemental_mode == "batched":
            with self._tracer.span("stage:supplemental") as stage_span:
                views, supplemental_queries = self._supplemental_batched(
                    app, views, context, trace
                )
                if stage_span:
                    stage_span.set("mode", "batched")
                    stage_span.set("queries", supplemental_queries)
            trace.add_stage(
                "supplemental", self.clock.now_ms - supplemental_start,
                f"{supplemental_queries} batched queries",
            )
            return self._finish_sources(app, request, views, trace,
                                        deadline)
        supplemental_queries = 0
        enriched: list[PrimaryResultView] = []
        with self._tracer.span("stage:supplemental") as stage_span:
            for view_index, view in enumerate(views):
                if deadline is not None and deadline.expired:
                    # Out of budget: ship the remaining primary results
                    # unenriched instead of fanning out further.
                    self._note_deadline(
                        trace, deadline,
                        f"supplemental fan-out stopped, "
                        f"{len(views) - view_index} views unenriched",
                    )
                    enriched.extend(views[view_index:])
                    break
                slot = self._slot_by_binding(app, view.slot_binding_id)
                supplemental: dict[str, SourceResult] = {}
                for child in slot.children:
                    child_binding = app.binding(child.binding_id)
                    derived = self._derive_query(child_binding, view.item)
                    if not derived:
                        trace.warnings.append(
                            f"binding {child.binding_id}: drive fields "
                            f"{child_binding.drive_fields} empty on item "
                            f"{view.item.item_id!r}"
                        )
                        supplemental[child.binding_id] = \
                            SourceResult.empty(child_binding.source_id)
                        continue
                    supplemental_queries += 1
                    result = self._query_source(
                        child_binding, derived, context, trace,
                    )
                    if not result.items and child_binding.query_suffix:
                        # Focused query too narrow: retry on drive
                        # values only.
                        relaxed = self._derive_query(
                            child_binding, view.item, with_suffix=False
                        )
                        supplemental_queries += 1
                        result = self._query_source(
                            child_binding, relaxed, context, trace,
                        )
                    supplemental[child.binding_id] = result
                enriched.append(PrimaryResultView(
                    slot_binding_id=view.slot_binding_id,
                    item=view.item,
                    supplemental=supplemental,
                ))
            if stage_span:
                stage_span.set("mode", "per_result")
                stage_span.set("queries", supplemental_queries)
        views = enriched
        trace.add_stage(
            "supplemental", self.clock.now_ms - supplemental_start,
            f"{supplemental_queries} focused queries",
        )
        return self._finish_sources(app, request, views, trace, deadline)

    def _finish_sources(self, app, request, views, trace, deadline=None):
        """The ads stage (only when the designer opted in — monetization
        is voluntary, per Table I)."""
        context = {
            "app_id": app.app_id,
            "session_id": request.session_id,
            "now_ms": self.clock.now_ms,
        }
        if deadline is not None:
            context["deadline"] = deadline
        ads_start = self.clock.now_ms
        ad_bindings = app.bindings_by_role(SourceRole.ADS)
        ad_items: list = []
        if ad_bindings:
            if deadline is not None and deadline.expired:
                # Ads are best-effort: an overrun query ships its
                # organic results without waiting on monetization.
                self._note_deadline(trace, deadline, "ads stage skipped")
                return views, ()
            with self._tracer.span("stage:ads") as stage_span:
                for binding in ad_bindings:
                    result = self._query_source(
                        binding, request.query_text, context, trace,
                        cacheable=False,
                    )
                    ad_items.extend(result.items)
                if stage_span:
                    stage_span.set("ads", len(ad_items))
            trace.add_stage(
                "ads", self.clock.now_ms - ads_start,
                f"{len(ad_items)} ads",
            )
        return views, tuple(ad_items)

    def _supplemental_batched(self, app, views, context, trace):
        """One disjunctive query per supplemental binding.

        Saves queries when many primary results share a supplemental
        source, at the cost of a fan-back-out assignment step that can
        misattribute results — exactly the trade-off the ablation
        measures.
        """
        derived_by_view: dict[int, dict[str, str]] = {}
        batch: dict[str, list[tuple[int, str]]] = {}
        for i, view in enumerate(views):
            slot = self._slot_by_binding(app, view.slot_binding_id)
            derived_by_view[i] = {}
            for child in slot.children:
                child_binding = app.binding(child.binding_id)
                derived = self._derive_query(child_binding, view.item,
                                             with_suffix=False)
                if not derived:
                    continue
                derived_by_view[i][child.binding_id] = derived
                batch.setdefault(child.binding_id, []).append(
                    (i, derived)
                )

        deadline = context.get("deadline")
        queries_issued = 0
        results_by_binding: dict[str, object] = {}
        for binding_id, pairs in batch.items():
            if deadline is not None and deadline.expired:
                # Remaining bindings fan back out as empty results.
                self._note_deadline(
                    trace, deadline,
                    f"batched supplemental stopped, "
                    f"{len(batch) - len(results_by_binding)} bindings "
                    f"unqueried",
                )
                break
            child_binding = app.binding(binding_id)
            unique_terms = list(dict.fromkeys(q for __, q in pairs))
            disjunction = " OR ".join(f"({q})" for q in unique_terms)
            if child_binding.query_suffix:
                disjunction = (f"({disjunction}) "
                               f"{child_binding.query_suffix}")
            big_binding_count = child_binding.max_results * max(
                1, len(unique_terms)
            )
            request_binding = dataclass_replace(
                child_binding, max_results=big_binding_count
            )
            queries_issued += 1
            results_by_binding[binding_id] = self._query_source(
                request_binding, disjunction, context, trace,
            )

        enriched = []
        for i, view in enumerate(views):
            supplemental: dict[str, SourceResult] = {}
            for binding_id, derived in derived_by_view[i].items():
                child_binding = app.binding(binding_id)
                pooled = results_by_binding.get(binding_id)
                assigned = self._assign_batched(
                    pooled, derived, child_binding.max_results
                ) if pooled is not None else ()
                supplemental[binding_id] = SourceResult(
                    source_id=child_binding.source_id,
                    items=tuple(assigned),
                    total_matches=len(assigned),
                )
            enriched.append(PrimaryResultView(
                slot_binding_id=view.slot_binding_id,
                item=view.item,
                supplemental=supplemental,
            ))
        return enriched, queries_issued

    @staticmethod
    def _assign_batched(pooled, derived_query: str, max_results: int):
        """Fan pooled results back out to the view they belong to.

        A pooled item belongs to a view when the view's drive value
        (the quoted phrase of its derived query) appears in the item's
        title, snippet, or field values.
        """
        needle = derived_query.replace('"', "").strip().lower()
        assigned = []
        for item in pooled.items:
            haystack = " ".join(
                [item.title, item.snippet]
                + [str(v) for v in item.fields.values()]
            ).lower()
            if needle in haystack:
                assigned.append(item)
                if len(assigned) >= max_results:
                    break
        return assigned

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _slot_by_binding(app, binding_id: str):
        for slot in app.all_slots():
            if slot.binding_id == binding_id:
                return slot
        raise NotFoundError(f"no slot for binding {binding_id!r}")

    @staticmethod
    def _derive_query(binding, item, with_suffix: bool = True) -> str:
        """Build the supplemental query from the configured drive fields."""
        parts = []
        raw_values = []
        for field_name in binding.drive_fields:
            value = item.get(field_name)
            if value:
                raw_values.append(value)
                parts.append(f'"{value}"' if " " in value else value)
        if not parts:
            return ""
        if binding.query_strategy:
            # Lazy import: bindings without a strategy (the default)
            # never pay for loading the federation lab.
            from repro.federation.querygen import get_generator
            suffix_terms = tuple(binding.query_suffix.split()) \
                if with_suffix and binding.query_suffix else ()
            return get_generator(binding.query_strategy).generate(
                " ".join(raw_values),
                context={"entity": raw_values[0],
                         "context_terms": suffix_terms},
            )
        query = " ".join(parts)
        if with_suffix and binding.query_suffix:
            query = f"{query} {binding.query_suffix}"
        return query

    def _query_source(self, binding, query_text, context, trace,
                      search_fields=(), cacheable: bool = True,
                      offset: int = 0):
        source = self._registry.get(binding.source_id)
        query_context = dict(context)
        if search_fields:
            query_context["search_fields"] = list(search_fields)
        cache_key = (binding.source_id, query_text, binding.max_results,
                     offset)
        if self.cache_enabled and cacheable:
            cached = self.cache.get(cache_key, self.clock.now_ms)
            if cached is not None:
                trace.record_cache(True)
                trace.sources_ok += 1
                return cached
            trace.record_cache(False)
        deadline = context.get("deadline")
        with self._tracer.span("source") as span:
            if span:
                span.set("source_id", binding.source_id)
                span.set("query", query_text)
            if deadline is not None and deadline.expired:
                if span:
                    span.set("skipped", "deadline")
                self._note_deadline(
                    trace, deadline,
                    f"source {binding.source_id} skipped",
                )
                trace.sources_failed += 1
                return SourceResult.empty(binding.source_id)
            if self.circuit_breaker.is_open(binding.source_id):
                if span:
                    span.set("skipped", "circuit_open")
                trace.degraded = True
                trace.warnings.append(
                    f"source {binding.source_id} skipped: circuit open "
                    "after repeated failures"
                )
                trace.sources_failed += 1
                return SourceResult.empty(binding.source_id)
            self.clock.advance(self._DISPATCH_MS)
            source_query = SourceQuery(
                text=query_text,
                count=binding.max_results,
                offset=offset,
                context=query_context,
            )
            try:
                if self._retrier is not None:
                    result = self._retrier.call(
                        lambda: source.search(source_query),
                        key=(binding.source_id, query_text),
                        deadline=deadline,
                        on_error=self._attempt_failed(binding.source_id),
                    )
                else:
                    result = source.search(source_query)
            except ReproError as exc:
                # Error isolation: a failing source must not take down
                # the app.
                if self._retrier is None:
                    # With a retrier, the per-attempt hook already
                    # recorded the breaker failures.
                    self._attempt_failed(binding.source_id)(exc, 1)
                trace.degraded = True
                if (isinstance(exc, DeadlineExceededError)
                        and deadline is not None):
                    self._note_deadline(
                        trace, deadline,
                        f"source {binding.source_id} abandoned "
                        f"mid-flight",
                    )
                else:
                    trace.warnings.append(
                        f"source {binding.source_id} failed: {exc}"
                    )
                if span:
                    span.set("error", str(exc))
                self._metrics.counter("source_failures_total").inc()
                trace.sources_failed += 1
                return SourceResult.empty(binding.source_id)
            self.circuit_breaker.record_success(binding.source_id)
            trace.sources_ok += 1
            if result.degraded:
                trace.degraded = True
                trace.warnings.append(
                    f"source {binding.source_id} returned degraded "
                    f"(partial) results"
                )
            if span:
                span.set("items", len(result.items))
        if self.cache_enabled and cacheable and not result.degraded:
            # Partial results must not satisfy repeat queries for a
            # whole TTL after the incident clears.
            self.cache.put(cache_key, result, self.clock.now_ms)
        return result

    def _attempt_failed(self, source_id: str):
        """Per-attempt failure hook: feed the circuit breaker, except
        for deadline expiry — running out of *our* budget says nothing
        about the provider's health."""
        def hook(exc, attempt):
            if not isinstance(exc, DeadlineExceededError):
                self.circuit_breaker.record_failure(source_id)
        return hook
