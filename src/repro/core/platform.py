"""The Symphony facade: everything §II describes, behind one object.

:class:`Symphony` wires the substrates together — synthetic web, search
engine, tenant storage, ingestion, service bus, ads — and exposes the
designer-facing workflow: register, upload proprietary data, create data
sources, design an application, host it, publish it, execute queries, and
pull monetization reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.capability import CapabilityProfile
from repro.errors import ConfigurationError, ContractViolationError
from repro.core.datasources import (
    AdSource,
    CustomerProfileSource,
    ProprietaryTableSource,
    ServiceSource,
    SourceRegistry,
    WebSearchSource,
)
from repro.core.designer import Designer, DesignSession
from repro.core.distribution import (
    HostingRouter,
    Publisher,
    SocialPlatform,
)
from repro.core.monetization import (
    InteractionRecorder,
    ReferralReport,
    TrafficSummary,
)
from repro.core.presentation import HtmlRenderer, ThemeRegistry
from repro.core.runtime import (
    ApplicationRegistry,
    ApplicationResponse,
    QueryRequest,
    SymphonyRuntime,
)
from repro.gateway.generations import GenerationRegistry, table_key
from repro.ingest.crawler import Crawler, CrawlPolicy
from repro.ingest.pipeline import DatasetIngestor, IngestReport
from repro.ingest.refresh import RefreshScheduler
from repro.ingest.rss import FeedPublisher
from repro.ingest.transports import FtpServer, HttpUploadChannel
from repro.searchengine.engine import build_engine
from repro.services.ads import AdService
from repro.services.bus import ServiceBus
from repro.simweb.generator import WebGenerator, WebSpec
from repro.sitesuggest import SiteCooccurrenceGraph, SiteSuggest
from repro.storage.tenant import StorageCatalog, Tenant
from repro.storage.tokens import Scope
from repro.telemetry import Telemetry
from repro.util import IdGenerator, SimClock

__all__ = ["DesignerAccount", "Symphony"]


@dataclass(frozen=True)
class DesignerAccount:
    """A registered application designer: identity + private space."""

    designer_id: str
    display_name: str
    tenant: Tenant
    token: str


class Symphony:
    """The platform. One instance is one deployment.

    Constructing a Symphony builds (or accepts) a synthetic web, indexes it
    into the search-engine substrate, and stands up storage, services,
    ads, designer tooling, runtime, distribution, and monetization.
    """

    def __init__(self, web=None, web_spec: WebSpec | None = None,
                 clock: SimClock | None = None,
                 cache_enabled: bool = True,
                 use_authority: bool = True,
                 cluster=None,
                 telemetry: Telemetry | bool | None = None,
                 resilience=None,
                 gateway=None,
                 controlplane=None,
                 slo=None,
                 durability=None,
                 contracts=None) -> None:
        self.clock = clock or SimClock()
        # Opt-in observability: pass an existing Telemetry or True to
        # build one on the platform clock; None/False disables it with
        # the allocation-free null instruments.
        if telemetry is True:
            telemetry = Telemetry(clock=self.clock)
        # The SLO judgment layer consumes spans/metrics/events, so
        # enabling it implies telemetry even when not asked for.
        if slo is True:
            from repro.slo import SLOConfig
            slo = SLOConfig()
        # Contracts emit drift/violation/staleness events and drive a
        # freshness budget, so they imply telemetry too.
        if (slo is not None or contracts) \
                and not (telemetry and telemetry.enabled):
            telemetry = Telemetry(clock=self.clock)
        self.telemetry = telemetry or Telemetry.disabled()
        # Opt-in resilience: pass a ResilienceConfig or True for the
        # defaults — per-query deadlines, deterministic retries, and
        # (with a cluster) hedged replica reads.
        if resilience is True:
            from repro.resilience import ResilienceConfig
            resilience = ResilienceConfig()
        self.resilience = resilience or None
        # Opt-in SLO layer: error budgets, multi-window burn-rate
        # alerting, tail-sampled flight recorder, per-query explain.
        if slo is not None:
            from repro.slo import SLOEngine
            self.slo = SLOEngine(self.telemetry, config=slo)
        else:
            from repro.slo import NULL_SLO
            self.slo = NULL_SLO
        # Opt-in data contracts: governed ingest with typed validation,
        # drift detection, quarantine, and freshness SLAs. Pass True
        # for the defaults or a ContractsConfig to tune them.
        from repro.contracts import NULL_CONTRACTS
        self.contracts = NULL_CONTRACTS
        if contracts:
            from repro.contracts import ContractManager, ContractsConfig
            self.contracts = ContractManager(
                self.clock,
                telemetry=self.telemetry,
                config=(contracts
                        if isinstance(contracts, ContractsConfig)
                        else None),
            )
            if self.slo.enabled:
                self.contracts.attach_slo(self.slo)
        self.web = web if web is not None else WebGenerator(
            web_spec or WebSpec()
        ).build()
        if cluster is not None:
            # Opt-in horizontal scaling: the same search contract served
            # by a sharded, replicated cluster (see repro.cluster).
            # Accepts a ClusterConfig or a plain shard count.
            from repro.cluster import ClusterConfig, \
                build_clustered_engine
            if isinstance(cluster, int):
                cluster = ClusterConfig(num_shards=cluster)
            self.engine = build_clustered_engine(
                self.web, config=cluster, clock=self.clock,
                use_authority=use_authority,
                telemetry=self.telemetry,
                hedge=(self.resilience.hedge
                       if self.resilience is not None else None),
            )
        else:
            self.engine = build_engine(
                self.web, clock=self.clock, use_authority=use_authority
            )
        self.ids = IdGenerator()
        self.catalog = StorageCatalog(ids=self.ids)
        self.bus = ServiceBus(clock=self.clock)
        self.ads = AdService(ids=self.ids)
        if self.telemetry.enabled:
            self.ads.attach_telemetry(self.telemetry)
        self.bus.register(self.ads)
        self.themes = ThemeRegistry()
        self.sources = SourceRegistry()
        self.apps = ApplicationRegistry()
        self.renderer = HtmlRenderer(self.themes)
        self.runtime = SymphonyRuntime(
            registry=self.sources,
            apps=self.apps,
            renderer=self.renderer,
            clock=self.clock,
            log=self.engine.log,
            cache_enabled=cache_enabled,
            telemetry=self.telemetry,
            resilience=self.resilience,
            slo=self.slo,
        )
        self.publisher = Publisher()
        self.publisher.register_platform(SocialPlatform("facebook"))
        self.router = HostingRouter()
        self.recorder = InteractionRecorder(
            self.engine.log, self.clock, ad_service=self.ads
        )
        self.http_uploads = HttpUploadChannel(clock=self.clock)
        self.ftp = FtpServer(clock=self.clock)
        self.feeds = FeedPublisher(self.web)
        from repro.core.frontend import HostingFrontend
        self.frontend = HostingFrontend(self.router, self.runtime)
        # Data generations: ingest/refresh bump a table's generation,
        # which (a) kills matching runtime result-cache entries now and
        # (b) invalidates gateway query-cache entries on their next read.
        self.generations = GenerationRegistry(
            events=(self.telemetry.events if self.telemetry.enabled
                    else None),
        )
        self.generations.subscribe(self._on_generation_bump)
        # The platform-owned refresh calendar: feeds registered here
        # bump generations on change, emit refresh events, and keep
        # contracted tables' freshness SLAs judged every pass.
        self.refresh = RefreshScheduler(
            self.clock,
            generations=self.generations,
            telemetry=(self.telemetry if self.telemetry.enabled
                       else None),
            contracts=(self.contracts if self.contracts.enabled
                       else None),
        )
        # Opt-in serving gateway: pass a GatewayConfig or True for the
        # defaults — admission control, weighted fair queueing, request
        # coalescing, and a generation-stamped response cache.
        if gateway is True:
            from repro.gateway import GatewayConfig
            gateway = GatewayConfig()
        self.gateway = None
        if gateway is not None:
            from repro.gateway import Gateway
            self.gateway = Gateway(
                runtime=self.runtime,
                apps=self.apps,
                sources=self.sources,
                clock=self.clock,
                generations=self.generations,
                telemetry=self.telemetry,
                config=gateway,
                default_deadline_ms=(
                    self.resilience.deadline_ms
                    if self.resilience is not None else 0.0
                ),
                contracts=(self.contracts if self.contracts.enabled
                           else None),
            )
        # Opt-in control plane: online resharding and telemetry-driven
        # autoscaling over a clustered engine. Pass True for default
        # policy or an AutoscalerPolicy to tune the thresholds.
        self.controlplane = None
        self.autoscaler = None
        if controlplane:
            if cluster is None:
                raise ConfigurationError(
                    "controlplane requires a clustered engine; "
                    "construct Symphony(cluster=..., controlplane=True)"
                )
            from repro.controlplane import (
                Autoscaler,
                AutoscalerPolicy,
                ShardLifecycleManager,
            )
            policy = (controlplane
                      if isinstance(controlplane, AutoscalerPolicy)
                      else None)
            self.controlplane = ShardLifecycleManager(
                self.engine,
                generations=self.generations,
                telemetry=self.telemetry,
            )
            self.autoscaler = Autoscaler(
                self.engine, self.controlplane,
                telemetry=self.telemetry, policy=policy,
                slo=(self.slo if self.slo.enabled else None),
            )
        # Opt-in durability: per-shard write-ahead log, checkpoints, and
        # crash/recovery for the clustered engine. Pass True for the
        # defaults or a DurabilityConfig to pick WAL storage/cadence.
        from repro.durability import NULL_DURABILITY
        self.durability = NULL_DURABILITY
        if durability:
            if cluster is None:
                raise ConfigurationError(
                    "durability requires a clustered engine; "
                    "construct Symphony(cluster=..., durability=True)"
                )
            from repro.durability import (
                DurabilityConfig,
                DurabilityManager,
            )
            config = (durability
                      if isinstance(durability, DurabilityConfig)
                      else None)
            self.durability = DurabilityManager(
                self.engine, config=config, clock=self.clock,
                telemetry=self.telemetry,
            )
        # Opt-in federation: built lazily by enable_federation().
        self.federation = None
        self._designers: dict[str, DesignerAccount] = {}

    def _on_generation_bump(self, key: str, generation: int) -> None:
        """Stale-cache fix: when a backend's data changes, drop the
        runtime's per-source cache entries for every source over it —
        tenant tables on re-ingest, federated sources when any backend
        they touch moves (corpus, topology, or a federated table)."""
        for source_id in self.sources.ids():
            source = self.sources.get(source_id)
            generation_keys = getattr(source, "generation_keys", None)
            if callable(generation_keys):
                if key in generation_keys():
                    self.runtime.cache.invalidate_source(source_id)
                continue
            if not key.startswith("tenant:"):
                continue
            table = getattr(source, "table", None)
            tenant_id = getattr(source, "tenant_id", None)
            if table is None or tenant_id is None:
                continue
            if table_key(tenant_id, table.name) == key:
                self.runtime.cache.invalidate_source(source_id)

    # -- federation (ROADMAP item 4) --------------------------------------------

    def enable_federation(self, policy=None):
        """Build the federation layer: a backend registry seeded with
        this platform's own engine (backend id ``"local"``) plus a
        scatter-gather executor sharing the platform clock, telemetry,
        and resilience retry policy. Idempotent; returns the executor.
        """
        if self.federation is None:
            from repro.federation import (
                BackendRegistry,
                EngineBackend,
                FederationExecutor,
                FederationPolicy,
                QueryGeneratorLab,
            )
            if policy is None:
                policy = (
                    FederationPolicy(retry=self.resilience.retry)
                    if self.resilience is not None else FederationPolicy()
                )
            registry = BackendRegistry()
            registry.add(EngineBackend("local", self.engine))
            self.federation = FederationExecutor(
                registry,
                clock=self.clock,
                telemetry=self.telemetry,
                policy=policy,
                lab=QueryGeneratorLab(),
            )
        return self.federation

    def add_federated_source(self, name: str, backend_ids=(),
                             fusion: str = "",
                             query_strategy: str = ""):
        """Register a federated meta-search as a drag-onto-app source."""
        from repro.federation import FederatedSearchSource
        executor = self.enable_federation()
        source = FederatedSearchSource(
            source_id=self.ids.next_id("source"),
            name=name,
            executor=executor,
            backend_ids=tuple(backend_ids),
            fusion=fusion,
            query_strategy=query_strategy,
        )
        return self.sources.add(source)

    # -- accounts ------------------------------------------------------------

    def register_designer(self, display_name: str) -> DesignerAccount:
        tenant = self.catalog.create_tenant(display_name)
        token = self.catalog.authority.mint(
            tenant.tenant_id, scopes=(Scope.ADMIN,)
        )
        account = DesignerAccount(
            designer_id=self.ids.next_id("designer"),
            display_name=display_name,
            tenant=tenant,
            token=token.value,
        )
        self._designers[account.designer_id] = account
        return account

    def designer_account(self, designer_id: str) -> DesignerAccount:
        return self._designers[designer_id]

    # -- proprietary data (§II-A Proprietary Data) ------------------------------

    def _authorized_tenant(self, account: DesignerAccount) -> Tenant:
        return self.catalog.open(
            account.token, account.tenant.tenant_id, Scope.WRITE
        )

    def _ingestor(self, tenant: Tenant) -> DatasetIngestor:
        return DatasetIngestor(
            tenant,
            telemetry=self.telemetry if self.telemetry.enabled else None,
            generations=self.generations,
            contracts=(self.contracts if self.contracts.enabled
                       else None),
        )

    def upload_http(self, account: DesignerAccount, filename: str,
                    data: bytes, table_name: str,
                    content_type: str = "text/plain",
                    **ingest_options) -> IngestReport:
        tenant = self._authorized_tenant(account)
        payload = self.http_uploads.post_file(filename, data, content_type)
        return self._ingestor(tenant).ingest(
            payload, table_name, **ingest_options
        )

    def upload_ftp(self, account: DesignerAccount, path: str,
                   table_name: str, content_type: str = "text/plain",
                   **ingest_options) -> IngestReport:
        tenant = self._authorized_tenant(account)
        payload = self.ftp.retrieve(path, content_type)
        return self._ingestor(tenant).ingest(
            payload, table_name, **ingest_options
        )

    def ingest_rss_feed(self, account: DesignerAccount, domain: str,
                        table_name: str, **ingest_options) -> IngestReport:
        tenant = self._authorized_tenant(account)
        payload = self.http_uploads.post_file(
            f"{domain}.rss", self.feeds.feed_xml(domain),
            "application/rss+xml",
        )
        return self._ingestor(tenant).ingest(
            payload, table_name, **ingest_options
        )

    def crawl_into(self, account: DesignerAccount, seeds, table_name: str,
                   policy: CrawlPolicy | None = None) -> IngestReport:
        tenant = self._authorized_tenant(account)
        result = Crawler(self.web, clock=self.clock).crawl(seeds, policy)
        return self._ingestor(tenant).ingest_rows(
            result.rows(), table_name
        )

    # -- data contracts (repro.contracts) -----------------------------------------

    def register_contract(self, account: DesignerAccount, contract):
        """Declare the :class:`~repro.contracts.DataContract` governing
        one of this designer's tables; every later load is enforced
        against it. Requires ``Symphony(contracts=...)``.

        Re-declaring over an existing table may *add* columns (the
        table's schema evolves additively on the next load) but not
        retype ones already stored — that fails here, upfront, rather
        than mid-batch against the storage layer.
        """
        tenant = self._authorized_tenant(account)
        if self.contracts.enabled and tenant.has_table(contract.table):
            stored = tenant.table(contract.table).schema
            for spec in contract.schema().fields:
                if stored.has_field(spec.name) \
                        and stored.spec(spec.name).type is not spec.type:
                    raise ConfigurationError(
                        f"contract v{contract.version} retypes column "
                        f"{spec.name!r} of existing table "
                        f"{contract.table!r} "
                        f"({stored.spec(spec.name).type.value} -> "
                        f"{spec.type.value}); schema evolution is "
                        f"additive only"
                    )
        return self.contracts.register(tenant.tenant_id, contract)

    def contract_report(self, tenant_id: str | None = None) -> str:
        """Human-readable contract status (violations, drift,
        quarantine depth, freshness), optionally for one tenant."""
        return self.contracts.report(tenant_id)

    def contract_status(self, tenant_id: str | None = None) -> dict:
        """Structured contract status, optionally for one tenant."""
        return self.contracts.status(tenant_id)

    def replay_quarantine(self, account: DesignerAccount,
                          table_name: str) -> IngestReport | None:
        """Re-ingest a table's quarantined rows under its *current*
        contract (typically after the designer updated it).

        The quarantine is drained first, then rows flow through the
        normal enforced ingest path — rows that still violate land
        back in quarantine exactly once, making replay idempotent.
        Returns ``None`` when the quarantine was empty.
        """
        tenant = self._authorized_tenant(account)
        entries = self.contracts.drain_quarantine(
            tenant.tenant_id, table_name)
        if not entries:
            return None
        rows = [dict(entry.row) for entry in entries]
        try:
            report = self._ingestor(tenant).ingest_rows(
                rows, table_name)
        except ContractViolationError:
            # A reject-policy contract failed the whole batch: put the
            # drained rows back so nothing is lost.
            now = self.clock.now_ms
            for entry in entries:
                self.contracts.quarantine.add(
                    tenant.tenant_id, table_name, entry.row,
                    entry.violations, now, source="replay",
                )
            raise
        if self.telemetry.enabled:
            self.telemetry.events.emit(
                "contract.replay", tenant=tenant.tenant_id,
                table=table_name, replayed=len(rows),
                loaded=report.inserted + report.updated,
                requarantined=report.quarantined,
            )
        return report

    # -- data sources (§II-A Built-in Services / Data Integration) ----------------

    def add_proprietary_source(self, account: DesignerAccount,
                               table_name: str, search_fields,
                               name: str = "") -> ProprietaryTableSource:
        tenant = self.catalog.open(
            account.token, account.tenant.tenant_id, Scope.READ
        )
        source = ProprietaryTableSource(
            source_id=self.ids.next_id("source"),
            name=name or f"{account.display_name}'s {table_name}",
            table=tenant.table(table_name),
            search_fields=tuple(search_fields),
        )
        source.tenant_id = tenant.tenant_id  # for export/import
        if self.contracts.enabled:
            source.contract_status = (
                lambda tid=tenant.tenant_id, tbl=table_name:
                self.contracts.source_status(tid, tbl)
            )
        return self.sources.add(source)

    def add_web_source(self, name: str, vertical: str = "web",
                       sites=(), augment_terms=(),
                       freshness_days: int | None = None
                       ) -> WebSearchSource:
        source = WebSearchSource(
            source_id=self.ids.next_id("source"),
            name=name,
            engine=self.engine,
            vertical=vertical,
            sites=tuple(sites),
            augment_terms=tuple(augment_terms),
            freshness_days=freshness_days,
        )
        return self.sources.add(source)

    def add_service_source(self, name: str, service_name: str,
                           operation: str, query_param: str,
                           item_fields=(), title_field: str = "",
                           extra_params: dict | None = None
                           ) -> ServiceSource:
        source = ServiceSource(
            source_id=self.ids.next_id("source"),
            name=name,
            bus=self.bus,
            service_name=service_name,
            operation=operation,
            query_param=query_param,
            item_fields=tuple(item_fields),
            title_field=title_field,
            extra_params=extra_params,
        )
        return self.sources.add(source)

    def add_ad_source(self, name: str = "Ads",
                      max_ads: int = 2) -> AdSource:
        source = AdSource(
            source_id=self.ids.next_id("source"),
            name=name,
            ad_service=self.ads,
            max_ads=max_ads,
        )
        return self.sources.add(source)

    def add_customer_source(self, name: str = "Customer data"
                            ) -> CustomerProfileSource:
        source = CustomerProfileSource(
            source_id=self.ids.next_id("source"),
            name=name,
        )
        return self.sources.add(source)

    # -- design & hosting ------------------------------------------------------------

    def designer(self) -> Designer:
        return Designer(self.sources, self.themes, self.ids)

    def preview(self, session, query_text: str):
        """Live WYSIWYG preview of an unhosted design session."""
        from repro.core.preview import preview_session
        return preview_session(
            session, self.sources, self.renderer, self.clock,
            query_text,
        )

    def host(self, session_or_app) -> str:
        """Build (if needed) and host an application; returns its id."""
        app = (session_or_app.build()
               if isinstance(session_or_app, DesignSession)
               else session_or_app)
        self.apps.register(app)
        self.router.mount(app)
        return app.app_id

    def publish_embed(self, app_id: str, page_url: str):
        app = self.apps.get(app_id)
        snippet = self.publisher.embed_on_site(app, page_url)
        self.router.mount(app, embed_key=snippet.embed_key)
        return snippet

    def publish_social(self, app_id: str, platform_name: str = "facebook"):
        app = self.apps.get(app_id)
        return self.publisher.publish_to_platform(app, platform_name)

    # -- execution (§II-C) ----------------------------------------------------------

    def query(self, app_id: str, query_text: str, session_id: str = "",
              customer_id: str = "", page: int = 0,
              deadline_ms: float = 0.0) -> ApplicationResponse:
        return self.runtime.handle_query(QueryRequest(
            app_id=app_id,
            query_text=query_text,
            session_id=session_id,
            customer_id=customer_id,
            page=page,
            deadline_ms=deadline_ms,
        ))

    def query_via_gateway(self, app_id: str, query_text: str,
                          session_id: str = "", customer_id: str = "",
                          page: int = 0,
                          deadline_ms: float = 0.0
                          ) -> ApplicationResponse:
        """Serve a query through the multi-tenant gateway (admission,
        fair queueing, coalescing, generation-stamped caching).

        Requires ``Symphony(gateway=...)``; raises
        :class:`~repro.errors.AdmissionRejectedError` when the request
        is shed at the front door.
        """
        if self.gateway is None:
            raise ConfigurationError(
                "gateway not enabled; construct "
                "Symphony(gateway=True) or pass a GatewayConfig"
            )
        return self.gateway.query(QueryRequest(
            app_id=app_id,
            query_text=query_text,
            session_id=session_id,
            customer_id=customer_id,
            page=page,
            deadline_ms=deadline_ms,
        ))

    # -- observability (repro.telemetry) ----------------------------------------------

    def telemetry_report(self) -> str:
        """Human-readable span/event/metric report for this deployment."""
        return self.telemetry.report()

    def export_telemetry(self, path) -> int:
        """Write collected telemetry as JSONL; returns the line count."""
        return self.telemetry.export_jsonl(path)

    def slo_report(self) -> str:
        """Error budgets, burn alerts, and flight-recorder state."""
        return self.slo.report()

    def explain_query(self, query_id: str):
        """Latency attribution for one query id (see ``repro.slo``);
        returns ``None`` when no spans were retained for it."""
        return self.slo.explain(query_id)

    # -- monetization (§II-A Monetization) --------------------------------------------

    def record_click(self, app_id: str, query: str, url: str,
                     session_id: str = "", ad_id: str = "") -> dict:
        return self.recorder.record_click(
            app_id, query, url, session_id=session_id, ad_id=ad_id
        )

    def traffic_summary(self, app_id: str) -> TrafficSummary:
        return self.recorder.summarize(app_id)

    def referral_report(self, app_id: str,
                        rate_per_click: float = 0.05) -> ReferralReport:
        return ReferralReport(
            self.traffic_summary(app_id), rate_per_click
        )

    def designer_ad_earnings(self, app_id: str) -> float:
        return self.ads.designer_earnings(app_id)

    def enable_social_search(self, vote_weight: float = 0.5):
        """Attach community voting to the runtime (§IV future work 3).

        Returns the :class:`~repro.analytics.social.CommunityFeedback`
        store; use :meth:`vote` to record end-user feedback.
        """
        from repro.analytics.social import CommunityFeedback
        feedback = CommunityFeedback(vote_weight=vote_weight)
        self.runtime.community_feedback = feedback
        return feedback

    def vote(self, app_id: str, url: str, up: bool = True):
        """Record a community vote on a result URL of an application."""
        feedback = self.runtime.community_feedback
        if feedback is None:
            feedback = self.enable_social_search()
        if up:
            return feedback.vote_up(app_id, url)
        return feedback.vote_down(app_id, url)

    def recommend_supplemental(self, account: DesignerAccount,
                               table_name: str, probe_field: str,
                               count: int = 5, probe_suffix: str = ""
                               ) -> list:
        """Recommend supplemental sites for a table (§IV future work 1)."""
        from repro.analytics.recommend import SupplementalRecommender
        tenant = self.catalog.open(
            account.token, account.tenant.tenant_id, Scope.READ
        )
        recommender = SupplementalRecommender(self.engine)
        return recommender.recommend(
            tenant.table(table_name), probe_field, count=count,
            probe_suffix=probe_suffix,
        )

    def autocomplete(self, prefix: str, app_id: str | None = None,
                     count: int = 5) -> list:
        """Query completions mined from the (per-app) query log.

        The completion index is rebuilt lazily whenever new queries have
        been logged since the last call.
        """
        from repro.searchengine.autocomplete import AutocompleteIndex
        cache_key = (app_id, len(self.engine.log.queries))
        cached = getattr(self, "_autocomplete_cache", None)
        if cached is None or cached[0] != cache_key:
            index = AutocompleteIndex.from_query_log(
                self.engine.log, app_id=app_id
            )
            self._autocomplete_cache = (cache_key, index)
        return self._autocomplete_cache[1].complete(prefix, count)

    # -- Site Suggest (§II-A Built-in Services) ------------------------------------------

    def site_suggest(self, seeds, count: int = 5,
                     method: str = "random_walk",
                     blend_links: bool = True) -> list:
        graph = SiteCooccurrenceGraph.from_query_log(self.engine.log)
        if blend_links:
            graph.blend_link_graph(self.web.domain_link_graph())
        return SiteSuggest(graph).suggest(seeds, count=count, method=method)

    # -- Table I capability probes -------------------------------------------------------

    def search_api_name(self) -> str:
        return "Bing (local substrate)"

    def supports_custom_sites(self) -> bool:
        return True

    def upload_structured_data(self, account: DesignerAccount,
                               rows: list[dict],
                               table_name: str) -> IngestReport:
        """Structured-data probe: Symphony supports various uploads."""
        tenant = self._authorized_tenant(account)
        return self._ingestor(tenant).ingest_rows(rows, table_name)

    def monetization_policy(self) -> dict:
        return {
            "ads_mandatory": False,
            "revenue_share": self.ads.designer_share,
            "own_ads_allowed": True,
        }

    def ui_customization(self) -> dict:
        return {
            "mode": "drag-n-drop",
            "coding_required": False,
            "templates": self.themes.names(),
            "stylesheets": True,
        }

    def deployment_options(self) -> list[str]:
        return ["hosted", "third-party-embed", "facebook"]

    def capability_profile(self) -> CapabilityProfile:
        return CapabilityProfile(
            system="Symphony",
            search_api=self.search_api_name(),
            custom_sites="Supported",
            proprietary_structured_data=(
                "Supports various uploads (HTTP or FTP, RSS, workbook, "
                "txt, xml)"
            ),
            monetization="Ads voluntary (revenue-sharing)",
            custom_ui="Drag'n'drop",
            deployment=(
                "Hosted at server, published to 3rd-party sites, or "
                "Facebook"
            ),
        )
