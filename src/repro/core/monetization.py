"""Monetization: interaction recording, summaries, and referral reports.

§II-A: "Symphony has built-in support for the application designer to be
able to record customer interactions with the application and obtain
various summaries... a summary of an application's click traffic can be
downloaded by the application designer to serve as the basis for charging
or auditing referral compensation."
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from urllib.parse import urlparse

from repro.searchengine.logs import ClickEvent, QueryLog

__all__ = ["TrafficSummary", "InteractionRecorder", "ReferralReport"]

_DAY_MS = 86_400_000


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate view of one application's usage."""

    app_id: str
    query_count: int
    click_count: int
    ad_click_count: int
    clicks_by_site: dict
    clicks_by_day: dict
    top_queries: tuple

    @property
    def click_through_rate(self) -> float:
        if self.query_count == 0:
            return 0.0
        return self.click_count / self.query_count


class InteractionRecorder:
    """Records customer interactions against hosted applications.

    Clicks on integrated ads are forwarded to the ad service so "the
    application designers will automatically be credited by that service
    for any ad-click revenue".
    """

    def __init__(self, log: QueryLog, clock, ad_service=None) -> None:
        self._log = log
        self._clock = clock
        self._ads = ad_service

    def record_click(self, app_id: str, query: str, url: str,
                     session_id: str = "", ad_id: str = "") -> dict:
        is_ad = bool(ad_id)
        self._log.log_click(ClickEvent(
            timestamp_ms=self._clock.now_ms,
            query=query,
            url=url,
            app_id=app_id,
            session_id=session_id or None,
            is_ad=is_ad,
        ))
        credited = {}
        if is_ad and self._ads is not None:
            credited = self._ads.record_click(
                ad_id, now_ms=self._clock.now_ms
            )
        return {"logged": True, **credited}

    # -- summaries ------------------------------------------------------------

    def summarize(self, app_id: str, top_n_queries: int = 10,
                  epoch_ms: int = 0) -> TrafficSummary:
        queries = self._log.queries_for_app(app_id)
        clicks = self._log.clicks_for_app(app_id)
        clicks_by_site: dict[str, int] = {}
        clicks_by_day: dict[int, int] = {}
        ad_clicks = 0
        for click in clicks:
            if click.is_ad:
                ad_clicks += 1
            site = urlparse(click.url).netloc or click.url
            clicks_by_site[site] = clicks_by_site.get(site, 0) + 1
            day = (click.timestamp_ms - epoch_ms) // _DAY_MS
            clicks_by_day[day] = clicks_by_day.get(day, 0) + 1
        query_counts: dict[str, int] = {}
        for event in queries:
            key = event.query.strip().lower()
            query_counts[key] = query_counts.get(key, 0) + 1
        top_queries = tuple(sorted(
            query_counts.items(), key=lambda pair: (-pair[1], pair[0])
        )[:top_n_queries])
        return TrafficSummary(
            app_id=app_id,
            query_count=len(queries),
            click_count=len(clicks),
            ad_click_count=ad_clicks,
            clicks_by_site=clicks_by_site,
            clicks_by_day=clicks_by_day,
            top_queries=top_queries,
        )

    def ad_earnings(self, app_id: str) -> float:
        if self._ads is None:
            return 0.0
        return self._ads.designer_earnings(app_id)


class ReferralReport:
    """Downloadable click-traffic report for referral auditing."""

    def __init__(self, summary: TrafficSummary,
                 rate_per_click: float = 0.05) -> None:
        self.summary = summary
        self.rate_per_click = rate_per_click

    def rows(self) -> list[dict]:
        out = []
        for site, count in sorted(
            self.summary.clicks_by_site.items(),
            key=lambda pair: (-pair[1], pair[0]),
        ):
            out.append({
                "site": site,
                "clicks": count,
                "owed": round(count * self.rate_per_click, 2),
            })
        return out

    def total_owed(self) -> float:
        return round(sum(row["owed"] for row in self.rows()), 2)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=("site", "clicks", "owed")
        )
        writer.writeheader()
        for row in self.rows():
            writer.writerow(row)
        return buffer.getvalue()
