"""Symphony core: the paper's primary contribution.

Subpackages mirror §II of the paper:

* :mod:`datasources` — the uniform content-source contract plus adapters
  for proprietary tables, the four search verticals, SOAP/REST services,
  ads, and customer data (Data Integration);
* :mod:`application` — the declarative application definition the runtime
  executes (the "configuration file for the application");
* :mod:`designer` — the no-code design surface as an API (Fig. 1);
* :mod:`presentation` — layout → HTML rendering, styles, templates;
* :mod:`runtime` — query execution (Fig. 2);
* :mod:`distribution` — embed snippets, social publishing, hosting;
* :mod:`monetization` — click logging, summaries, ad revenue crediting;
* :mod:`platform` — the :class:`~repro.core.platform.Symphony` facade.
"""

from repro.core.platform import DesignerAccount, Symphony

__all__ = ["DesignerAccount", "Symphony"]
