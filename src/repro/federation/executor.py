"""Federation executor: scatter-gather with budgets and partial fusion.

The executor fans one query across selected backends, phrasing it per
backend through a query-generator strategy, bounding each call with a
slice of the query's :class:`~repro.resilience.Deadline`, and retrying
transient failures under the resilience layer's deterministic
:class:`~repro.resilience.Retrier`. A backend that fails or runs out of
budget is recorded in the ``degraded`` set and fusion proceeds over the
survivors — a federated query degrades, it does not throw.

Telemetry: one ``federation`` span per query with a ``backend:<id>``
child span per fan-out leg, plus ``federation_*`` counters/histograms.
All of it rides the session's :class:`~repro.telemetry.Telemetry`
bundle, so the disabled default costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.federation.fusion import DEFAULT_RRF_K, fuse
from repro.federation.querygen import QueryGeneratorLab, get_generator
from repro.resilience.deadline import Deadline
from repro.resilience.retry import Retrier, RetryPolicy
from repro.telemetry import Telemetry

__all__ = [
    "FederationPolicy",
    "BackendOutcome",
    "FederationResult",
    "FederationExecutor",
]


@dataclass(frozen=True)
class FederationPolicy:
    """Knobs for one executor (overridable per query)."""

    fusion: str = "rrf"
    rrf_k: int = DEFAULT_RRF_K
    #: Results requested from each backend before fusion.
    per_backend_count: int = 10
    query_strategy: str = "keyword"
    #: Fraction of the remaining query deadline one backend call may
    #: consume; the rest stays banked for the backends after it.
    per_backend_budget_frac: float = 0.5
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=2,
    ))


@dataclass(frozen=True)
class BackendOutcome:
    """What one fan-out leg did."""

    backend_id: str
    query: str              # the strategy-rewritten query actually sent
    ok: bool
    item_count: int = 0
    cost: float = 0.0
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "backend_id": self.backend_id,
            "query": self.query,
            "ok": self.ok,
            "item_count": self.item_count,
            "cost": self.cost,
            "error": self.error,
        }


@dataclass(frozen=True)
class FederationResult:
    """Fused ranking plus the per-backend audit trail."""

    text: str
    items: tuple            # FusedItem, best first
    outcomes: tuple         # BackendOutcome per selected backend
    degraded: tuple         # backend ids that failed or ran out of budget
    fusion: str
    strategy: str
    total_cost: float
    total_matches: int

    @property
    def ok_backends(self) -> tuple:
        return tuple(o.backend_id for o in self.outcomes if o.ok)


class FederationExecutor:
    """Scatter-gather across a :class:`BackendRegistry` with fusion."""

    def __init__(self, registry, clock=None, telemetry=None,
                 policy: FederationPolicy | None = None,
                 lab: QueryGeneratorLab | None = None) -> None:
        self.registry = registry
        self.clock = clock
        self.policy = policy or FederationPolicy()
        self.telemetry = telemetry or Telemetry.disabled()
        self.lab = lab
        self._retrier = (
            Retrier(
                clock, self.policy.retry,
                events=(self.telemetry.events
                        if self.telemetry.enabled else None),
                metrics=(self.telemetry.metrics
                         if self.telemetry.enabled else None),
            )
            if clock is not None else None
        )

    def search(self, text: str, backend_ids=None, count: int = 10,
               deadline=None, context: dict | None = None,
               strategy: str = "", fusion: str = "") -> FederationResult:
        """Fan ``text`` out, fuse what survives, never raise per-backend."""
        policy = self.policy
        strategy = strategy or policy.query_strategy
        fusion = fusion or policy.fusion
        generator = get_generator(strategy)
        backends = self.registry.backends(backend_ids)
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics

        lists_by_backend: dict = {}
        outcomes = []
        degraded = []
        total_cost = 0.0
        with tracer.span("federation") as span:
            if span:
                span.set("strategy", strategy)
                span.set("fusion", fusion)
                span.set("backends", len(backends))
            for backend in backends:
                outcome = self._query_backend(
                    backend, text, generator, deadline, context,
                    policy, tracer, lists_by_backend,
                )
                outcomes.append(outcome)
                total_cost += outcome.cost
                if not outcome.ok:
                    degraded.append(backend.backend_id)
            fused = fuse(lists_by_backend, method=fusion,
                         rrf_k=policy.rrf_k)
            if span:
                span.set("degraded", len(degraded))
                span.set("fused", len(fused))

        if self.telemetry.enabled:
            metrics.counter("federation_queries_total").inc()
            metrics.histogram("federation_fanout").observe(len(backends))
            metrics.histogram("federation_fused_results").observe(
                len(fused)
            )
            metrics.histogram("federation_cost").observe(total_cost)
            if degraded:
                metrics.counter("federation_degraded_total").inc()

        return FederationResult(
            text=text,
            items=tuple(fused[:count]),
            outcomes=tuple(outcomes),
            degraded=tuple(degraded),
            fusion=fusion,
            strategy=strategy,
            total_cost=round(total_cost, 6),
            total_matches=len(fused),
        )

    def _query_backend(self, backend, text, generator, deadline,
                       context, policy, tracer,
                       lists_by_backend) -> BackendOutcome:
        backend_id = backend.backend_id
        descriptor = backend.descriptor
        rewritten = generator.generate(text, descriptor, context)
        with tracer.span(f"backend:{backend_id}") as span:
            if span:
                span.set("query", rewritten)
                span.set("cost", descriptor.cost_per_query)
            if deadline is not None and deadline.expired:
                if span:
                    span.set("skipped", "deadline")
                self._count_error(backend_id, "deadline")
                return BackendOutcome(backend_id, rewritten, ok=False,
                                      error="deadline exhausted")
            child = self._child_deadline(deadline, policy)
            fn = lambda: backend.search(
                text=rewritten, count=policy.per_backend_count,
                deadline=child, context=context,
            )
            try:
                if self._retrier is not None:
                    items = self._retrier.call(fn, key=backend_id,
                                               deadline=child)
                else:
                    items = fn()
            except Exception as exc:  # degrade, never escape
                if span:
                    span.status = "error"
                    span.set("error", str(exc))
                self._count_error(backend_id, type(exc).__name__)
                if self.telemetry.enabled:
                    self.telemetry.events.emit(
                        "federation.backend_failed",
                        backend=backend_id, error=str(exc),
                    )
                return BackendOutcome(
                    backend_id, rewritten, ok=False,
                    cost=descriptor.cost_per_query, error=str(exc),
                )
            if self.lab is not None:
                self.lab.charge(generator.name,
                                descriptor.cost_per_query)
            if span:
                span.set("items", len(items))
            lists_by_backend[backend_id] = items
            return BackendOutcome(
                backend_id, rewritten, ok=True, item_count=len(items),
                cost=descriptor.cost_per_query,
            )

    def _child_deadline(self, deadline, policy):
        """Slice the query budget so one slow backend cannot eat it all."""
        if deadline is None:
            return None
        remaining = deadline.remaining_ms()
        if remaining <= 0:
            return deadline
        budget = max(1.0, remaining * policy.per_backend_budget_frac)
        return Deadline(deadline.clock, budget)

    def _count_error(self, backend_id: str, kind: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "federation_backend_errors_total", backend=backend_id,
            ).inc()
