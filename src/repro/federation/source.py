"""FederatedSearchSource: federation as a drag-onto-canvas data source.

Wraps a :class:`~repro.federation.executor.FederationExecutor` in the
core ``DataSource`` contract so the designer can bind a federated
meta-search to an application exactly like any single-engine vertical.
The runtime's deadline rides in through ``query.context`` and the
``degraded`` flag propagates partial fusion to the response trace.

``generation_keys`` is what the gateway's query cache calls to stamp a
cached federated response with the corpus generation of *every* backend
the query touched — re-ingest on any one of them invalidates mid-TTL.
"""

from __future__ import annotations

from repro.core.datasources import (
    DataSource,
    SourceItem,
    SourceKind,
    SourceQuery,
    SourceResult,
)

__all__ = ["FederatedSearchSource"]


class FederatedSearchSource(DataSource):
    """A meta-search over a subset of the executor's backend registry."""

    def __init__(self, source_id: str, name: str, executor,
                 backend_ids: tuple = (), fusion: str = "",
                 query_strategy: str = "") -> None:
        super().__init__(source_id, name, SourceKind.FEDERATED)
        self._executor = executor
        # () federates over every registered backend, resolved per query
        # so late registrations are picked up.
        self.backend_ids = tuple(backend_ids)
        self.fusion = fusion
        self.query_strategy = query_strategy

    @property
    def executor(self):
        return self._executor

    def fields(self) -> list[str]:
        return ["title", "url", "snippet", "site", "backends",
                "fused_score"]

    def describe(self) -> dict:
        described = super().describe()
        described["backends"] = list(
            self.backend_ids or self._executor.registry.ids()
        )
        described["fusion"] = self.fusion \
            or self._executor.policy.fusion
        return described

    def generation_keys(self) -> tuple:
        """Union of generation keys across every backend this source
        can touch (the gateway stamps cached entries with these)."""
        ids = self.backend_ids or None
        return self._executor.registry.generation_keys(ids)

    def search(self, query: SourceQuery) -> SourceResult:
        result = self._executor.search(
            query.text,
            backend_ids=self.backend_ids or None,
            count=query.offset + query.count,
            deadline=query.context.get("deadline"),
            context=query.context,
            strategy=self.query_strategy
            or query.context.get("query_strategy", ""),
            fusion=self.fusion,
        )
        window = result.items[query.offset:query.offset + query.count]
        items = tuple(
            SourceItem(
                item_id=fused.url,
                title=fused.title,
                url=fused.url,
                snippet=fused.snippet,
                score=fused.fused_score,
                fields={
                    "site": fused.site,
                    "backends": ",".join(fused.backends),
                    "fused_score": fused.fused_score,
                    **fused.fields,
                },
            )
            for fused in window
        )
        return SourceResult(
            self.source_id, items, result.total_matches,
            degraded=bool(result.degraded),
        )
