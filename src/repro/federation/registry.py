"""Backend registry: capability-described search backends for federation.

A federation *backend* is anything that answers a text query with a
ranked list — the local (possibly clustered) engine, one of the five
Table I baseline platforms via its own search facade, a per-vertical
index, or any core :class:`~repro.core.datasources.DataSource`. Each
backend carries a :class:`~repro.core.capability.BackendDescriptor`
(baselines derive theirs from their Table I profile, one source of
truth) so the executor can route by vertical, pick a query-generator
phrasing the backend's language accepts, budget its cost, and stamp
cached results with every generation key the backend depends on.
"""

from __future__ import annotations

from repro.core.capability import BackendDescriptor
from repro.core.datasources import SourceQuery
from repro.errors import ConfigurationError, DuplicateError, NotFoundError
from repro.federation.fusion import FederatedItem, normalize_item
from repro.gateway.generations import CORPUS_KEY, TOPOLOGY_KEY, table_key
from repro.searchengine.engine import SearchOptions

__all__ = [
    "Backend",
    "EngineBackend",
    "SourceBackend",
    "baseline_backend",
    "BackendRegistry",
]


class Backend:
    """One federated search backend: a descriptor plus ``search``."""

    def __init__(self, descriptor: BackendDescriptor) -> None:
        self.descriptor = descriptor

    @property
    def backend_id(self) -> str:
        return self.descriptor.backend_id

    def search(self, text: str, count: int = 10, deadline=None,
               context: dict | None = None) -> list:
        """Ranked :class:`FederatedItem` list for ``text``."""
        raise NotImplementedError

    def _normalize(self, raw_results) -> list:
        backend_id = self.backend_id
        return [
            normalize_item(backend_id, raw, rank)
            for rank, raw in enumerate(raw_results, start=1)
        ]


class EngineBackend(Backend):
    """The local search-engine substrate (single-node or clustered)."""

    def __init__(self, backend_id: str, engine, vertical: str = "web",
                 sites: tuple = (), augment_terms: tuple = ()) -> None:
        clustered = bool(getattr(engine, "accepts_deadline", False))
        keys = (CORPUS_KEY, TOPOLOGY_KEY) if clustered else (CORPUS_KEY,)
        super().__init__(BackendDescriptor(
            backend_id=backend_id,
            system="Symphony",
            search_api="local engine"
                       + (" (clustered)" if clustered else ""),
            verticals=(vertical,),
            supports_sites=True,
            # The local query language takes field:value predicates and
            # indexes the entity field on every corpus document.
            supports_fielded=True,
            supports_entity=True,
            cost_per_query=1.0,
            generation_keys=keys,
        ))
        self._engine = engine
        self._clustered = clustered
        self.vertical = vertical
        self.sites = tuple(sites)
        self.augment_terms = tuple(augment_terms)

    def search(self, text: str, count: int = 10, deadline=None,
               context: dict | None = None) -> list:
        options = SearchOptions(count=count, sites=self.sites,
                                augment_terms=self.augment_terms)
        kwargs = {}
        if deadline is not None and self._clustered:
            kwargs["deadline"] = deadline
        response = self._engine.search(self.vertical, text, options,
                                       **kwargs)
        return self._normalize(response.results)


class SourceBackend(Backend):
    """Any core :class:`DataSource` exposed as a federation backend.

    Generation keys are inferred where the source shape gives them away
    (a proprietary table depends on its own ``table_key``; an engine
    vertical on the corpus) and can be overridden explicitly.
    """

    def __init__(self, source, backend_id: str = "",
                 generation_keys: tuple | None = None,
                 cost_per_query: float = 1.0) -> None:
        keys = tuple(generation_keys) if generation_keys is not None \
            else self._infer_keys(source)
        super().__init__(BackendDescriptor(
            backend_id=backend_id or source.source_id,
            system="Symphony",
            search_api=f"source:{source.kind.value}",
            verticals=(source.kind.value,),
            supports_sites=False,
            cost_per_query=cost_per_query,
            generation_keys=keys,
        ))
        self._source = source

    @staticmethod
    def _infer_keys(source) -> tuple:
        table = getattr(source, "table", None)
        if table is not None:
            tenant_id = getattr(source, "tenant_id", "")
            return (table_key(tenant_id, table.name),)
        engine = getattr(source, "_engine", None)
        if engine is not None:
            if getattr(engine, "accepts_deadline", False):
                return (CORPUS_KEY, TOPOLOGY_KEY)
            return (CORPUS_KEY,)
        return ()

    def search(self, text: str, count: int = 10, deadline=None,
               context: dict | None = None) -> list:
        query_context = dict(context or {})
        if deadline is not None:
            query_context["deadline"] = deadline
        result = self._source.search(SourceQuery(
            text=text, count=count, context=query_context,
        ))
        return self._normalize(result.items)


class _BaselineBackend(Backend):
    """A Table I baseline platform behind its own search facade."""

    def __init__(self, descriptor: BackendDescriptor, search_fn) -> None:
        super().__init__(descriptor)
        self._search_fn = search_fn

    def search(self, text: str, count: int = 10, deadline=None,
               context: dict | None = None) -> list:
        # External platforms accept no deadline; the executor's
        # per-backend budget still bounds the call from outside.
        return self._normalize(self._search_fn(text, count))


def baseline_backend(platform, sites: tuple = (),
                     backend_id: str = "") -> Backend:
    """Adapt one :class:`BaselinePlatform` through its public facade.

    Each platform is driven exactly the way its real counterpart was:
    Rollyo through a searchroll, Eurekster through a swicki, Google
    Custom through a created engine, Y! BOSS through the raw API, and
    Google Base through its result page (web results only — Base item
    oneboxes are uploads, not the web ranking).
    """
    descriptor = platform.capability_descriptor()
    if backend_id:
        descriptor = BackendDescriptor(**{
            **descriptor.to_dict(),
            "backend_id": backend_id,
            "verticals": tuple(descriptor.verticals),
            "generation_keys": tuple(descriptor.generation_keys),
        })
    handle = f"federation-{descriptor.backend_id}"
    sites = tuple(sites)

    if hasattr(platform, "create_searchroll"):
        roll = platform.create_searchroll(handle, sites)
        search_fn = lambda text, count: roll.search(text, count).results
    elif hasattr(platform, "create_swicki"):
        swicki = platform.create_swicki(handle, sites)
        search_fn = lambda text, count: _result_list(
            swicki.search(text, count)
        )
    elif hasattr(platform, "create_engine"):
        engine = platform.create_engine(handle, sites=sites)
        search_fn = lambda text, count: _result_list(
            engine.search(text, count)
        )
    elif hasattr(platform, "api_search"):
        search_fn = lambda text, count: platform.api_search(
            text, sites=sites, count=count
        ).results
    elif hasattr(platform, "search"):
        search_fn = lambda text, count: _result_list(
            platform.search(text, count)
        )
    else:
        raise ConfigurationError(
            f"{platform.system_name} exposes no search facade"
        )
    return _BaselineBackend(descriptor, search_fn)


def _result_list(response) -> list:
    """Unwrap the facade's return shape down to a ranked list."""
    if isinstance(response, dict):
        return list(response.get("web_results", ()))
    return list(getattr(response, "results", response))


class BackendRegistry:
    """All federation backends known to one executor, by id."""

    def __init__(self) -> None:
        self._backends: dict[str, Backend] = {}

    def add(self, backend: Backend) -> Backend:
        if backend.backend_id in self._backends:
            raise DuplicateError(
                f"backend id already registered: {backend.backend_id}"
            )
        self._backends[backend.backend_id] = backend
        return backend

    def get(self, backend_id: str) -> Backend:
        try:
            return self._backends[backend_id]
        except KeyError:
            raise NotFoundError(
                f"no federation backend {backend_id!r}"
            ) from None

    def remove(self, backend_id: str) -> None:
        if backend_id not in self._backends:
            raise NotFoundError(f"no federation backend {backend_id!r}")
        del self._backends[backend_id]

    def ids(self) -> list:
        return sorted(self._backends)

    def backends(self, ids=None) -> list:
        """Backends in sorted-id order (the fusion determinism anchor)."""
        if ids is None:
            return [self._backends[i] for i in self.ids()]
        return [self.get(i) for i in sorted(ids)]

    def descriptors(self) -> list:
        return [b.descriptor for b in self.backends()]

    def select(self, vertical: str) -> list:
        return [b for b in self.backends()
                if vertical in b.descriptor.verticals]

    def generation_keys(self, ids=None) -> tuple:
        """Sorted union of generation keys across ``ids`` (default all)."""
        keys = set()
        for backend in self.backends(ids):
            keys.update(backend.descriptor.generation_keys)
        return tuple(sorted(keys))
