"""Query-generator lab: pluggable per-backend query phrasing.

Endrullis et al. (PAPERS.md) measure entity-search query generators and
find that *how* a query is phrased — plain keywords, fielded predicates,
entity-expanded phrases — changes both precision and cost per covered
entity. This module makes that a strategy interface:

* :class:`KeywordGenerator` — analyzed terms, lowest cost, broadest.
* :class:`FieldedGenerator` — ``field:token`` predicates when the
  backend's :class:`~repro.core.capability.BackendDescriptor` advertises
  ``supports_fielded``; quoted-phrase fallback otherwise.
* :class:`EntityExpandedGenerator` — anchor on the entity (the ``entity``
  field where supported, a quoted phrase elsewhere) plus context terms.

The :class:`FederationExecutor` uses a generator to rewrite the query per
backend; :class:`QueryGeneratorLab` keeps per-strategy precision/cost
ledgers so strategies can be compared on a golden query set (the
``repro federation`` CLI and bench X12 both drive it).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.searchengine.analysis import STOPWORDS, tokenize

__all__ = [
    "STRATEGY_NAMES",
    "QueryGenerator",
    "KeywordGenerator",
    "FieldedGenerator",
    "EntityExpandedGenerator",
    "get_generator",
    "StrategyStats",
    "QueryGeneratorLab",
]

STRATEGY_NAMES = ("keyword", "fielded", "entity")


class QueryGenerator(ABC):
    """Rewrites one query for one capability-described backend."""

    name = "generator"

    @abstractmethod
    def generate(self, text: str, descriptor=None,
                 context: dict | None = None) -> str:
        """Return the backend-specific phrasing of ``text``.

        ``descriptor`` is the target backend's ``BackendDescriptor`` (or
        ``None`` for capability-blind rewriting); ``context`` may carry
        an ``entity`` string and ``context_terms`` for expansion.
        """


class KeywordGenerator(QueryGenerator):
    """Plain analyzed keywords — the baseline strategy."""

    name = "keyword"

    def generate(self, text: str, descriptor=None,
                 context: dict | None = None) -> str:
        tokens = tokenize(text)
        return " ".join(tokens) if tokens else text


class FieldedGenerator(QueryGenerator):
    """``field:token`` predicates targeting one document field.

    The engine's query language rejects quoted filter values, so each
    analyzed token becomes its own predicate (``title:halo
    title:odyssey`` ANDs the postings). Backends whose descriptor lacks
    ``supports_fielded`` get a quoted-phrase fallback instead of a query
    their language would reject.
    """

    name = "fielded"

    def __init__(self, field_name: str = "title") -> None:
        self.field_name = field_name

    def generate(self, text: str, descriptor=None,
                 context: dict | None = None) -> str:
        tokens = [t for t in tokenize(text) if t not in STOPWORDS] \
            or tokenize(text)
        if not tokens:
            return text
        if descriptor is not None and not descriptor.supports_fielded:
            return f'"{" ".join(tokens)}"'
        return " ".join(f"{self.field_name}:{token}" for token in tokens)


class EntityExpandedGenerator(QueryGenerator):
    """Entity anchor plus context terms (Endrullis' expanded queries).

    The entity comes from ``context["entity"]`` (falling back to the
    query text); ``context["context_terms"]`` adds discriminating terms.
    Backends advertising ``supports_entity`` get ``entity:token``
    predicates against their entity field; others get the entity as a
    quoted phrase.
    """

    name = "entity"

    def generate(self, text: str, descriptor=None,
                 context: dict | None = None) -> str:
        context = context or {}
        entity = str(context.get("entity") or text)
        extra = tuple(context.get("context_terms", ()))
        entity_tokens = tokenize(entity)
        if not entity_tokens:
            return text
        if descriptor is not None and descriptor.supports_entity:
            anchor = " ".join(f"entity:{token}"
                              for token in entity_tokens)
        elif len(entity_tokens) > 1:
            anchor = f'"{" ".join(entity_tokens)}"'
        else:
            anchor = entity_tokens[0]
        terms = " ".join(t for t in extra if t)
        return f"{anchor} {terms}".strip()


_GENERATORS = {
    "keyword": KeywordGenerator,
    "fielded": FieldedGenerator,
    "entity": EntityExpandedGenerator,
}


def get_generator(name: str) -> QueryGenerator:
    """Instantiate a strategy by name (``keyword``/``fielded``/``entity``)."""
    try:
        return _GENERATORS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown query-generator strategy {name!r}; "
            f"expected one of {STRATEGY_NAMES}"
        ) from None


@dataclass
class StrategyStats:
    """Per-strategy precision/cost ledger."""

    strategy: str
    queries: int = 0
    cost: float = 0.0
    retrieved: int = 0
    relevant_retrieved: int = 0

    @property
    def precision(self) -> float:
        if self.retrieved == 0:
            return 0.0
        return self.relevant_retrieved / self.retrieved

    @property
    def cost_per_relevant(self) -> float:
        """Endrullis' efficiency measure: spend per relevant result."""
        if self.relevant_retrieved == 0:
            return float("inf") if self.cost else 0.0
        return self.cost / self.relevant_retrieved

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "queries": self.queries,
            "cost": round(self.cost, 3),
            "retrieved": self.retrieved,
            "relevant_retrieved": self.relevant_retrieved,
            "precision": round(self.precision, 4),
            "cost_per_relevant": (
                round(self.cost_per_relevant, 3)
                if self.relevant_retrieved or not self.cost
                else float("inf")
            ),
        }


@dataclass
class QueryGeneratorLab:
    """Accounting across strategies: who found what, at what cost."""

    stats: dict = field(default_factory=dict)

    def _stats(self, strategy: str) -> StrategyStats:
        if strategy not in self.stats:
            self.stats[strategy] = StrategyStats(strategy)
        return self.stats[strategy]

    def charge(self, strategy: str, cost: float) -> None:
        """Record one backend call issued under ``strategy``."""
        entry = self._stats(strategy)
        entry.queries += 1
        entry.cost += cost

    def account(self, strategy: str, retrieved_urls,
                relevant_urls) -> None:
        """Credit retrieved results against the relevance judgments."""
        entry = self._stats(strategy)
        retrieved = list(retrieved_urls)
        relevant = set(relevant_urls)
        entry.retrieved += len(retrieved)
        entry.relevant_retrieved += sum(
            1 for url in retrieved if url in relevant
        )

    def report(self) -> list:
        """Per-strategy dicts, best precision first."""
        return [
            self.stats[name].to_dict()
            for name in sorted(
                self.stats,
                key=lambda n: (-self.stats[n].precision, n),
            )
        ]
