"""repro.federation — federated meta-search with rank fusion.

The federation layer answers ROADMAP item 4: one query fanned across
heterogeneous backends — the local (clustered) engine, the Table I
baseline platforms through their own facades, per-vertical indices, any
core data source — with the results normalized into one schema,
URL-deduplicated, and rank-fused (RRF / CombSUM / CombMNZ). Fan-out
runs under the resilience layer's deadlines and retries, degrading to
partial fusion when a backend fails. The query-generator lab
(:mod:`repro.federation.querygen`) phrases the query per backend —
keyword, fielded, entity-expanded — and keeps per-strategy
precision/cost ledgers, after Endrullis et al.'s generator evaluation.
"""

from repro.federation.executor import (
    BackendOutcome,
    FederationExecutor,
    FederationPolicy,
    FederationResult,
)
from repro.federation.fusion import (
    FUSION_METHODS,
    FederatedItem,
    FusedItem,
    comb_mnz,
    comb_sum,
    fuse,
    reciprocal_rank_fusion,
)
from repro.federation.querygen import (
    STRATEGY_NAMES,
    EntityExpandedGenerator,
    FieldedGenerator,
    KeywordGenerator,
    QueryGenerator,
    QueryGeneratorLab,
    StrategyStats,
    get_generator,
)
from repro.federation.registry import (
    Backend,
    BackendRegistry,
    EngineBackend,
    SourceBackend,
    baseline_backend,
)
from repro.federation.source import FederatedSearchSource

__all__ = [
    "FUSION_METHODS",
    "STRATEGY_NAMES",
    "Backend",
    "BackendOutcome",
    "BackendRegistry",
    "EngineBackend",
    "EntityExpandedGenerator",
    "FederatedItem",
    "FederatedSearchSource",
    "FederationExecutor",
    "FederationPolicy",
    "FederationResult",
    "FieldedGenerator",
    "FusedItem",
    "KeywordGenerator",
    "QueryGenerator",
    "QueryGeneratorLab",
    "SourceBackend",
    "StrategyStats",
    "baseline_backend",
    "comb_mnz",
    "comb_sum",
    "fuse",
    "get_generator",
    "reciprocal_rank_fusion",
]
