"""Rank fusion: merge per-backend rankings into one list.

Three classic unsupervised fusion methods over URL-deduplicated,
normalized result lists:

* **RRF** (reciprocal-rank fusion) — ``score(d) = Σ 1/(k + rank_i(d))``
  over every backend list containing ``d``; rank-based, so it needs no
  score calibration across heterogeneous backends and is the default.
* **CombSUM** — sum of per-list min-max-normalized scores.
* **CombMNZ** — CombSUM multiplied by the number of lists containing the
  document, rewarding cross-backend agreement.

All three are deterministic: backends are visited in sorted-id order,
duplicate URLs keep the best-ranked copy (ties broken by backend id),
and the fused ordering breaks score ties by URL. With a single backend
registered, RRF reproduces that backend's ordering exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "FUSION_METHODS",
    "FederatedItem",
    "FusedItem",
    "fuse",
    "reciprocal_rank_fusion",
    "comb_sum",
    "comb_mnz",
]

FUSION_METHODS = ("rrf", "combsum", "combmnz")

#: Standard RRF smoothing constant (Cormack et al.).
DEFAULT_RRF_K = 60


@dataclass(frozen=True)
class FederatedItem:
    """One backend result in the common federation schema."""

    url: str
    title: str
    snippet: str = ""
    site: str = ""
    score: float = 0.0          # backend-native score, uncalibrated
    backend_id: str = ""
    rank: int = 1               # 1-based rank within its backend list
    fields: dict = field(default_factory=dict)


@dataclass(frozen=True)
class FusedItem:
    """One fused result: the best-ranked copy plus fusion metadata."""

    url: str
    title: str
    snippet: str
    site: str
    fused_score: float
    backends: tuple            # backend ids that returned this URL
    best: FederatedItem        # the best-ranked copy kept by dedup
    fields: dict = field(default_factory=dict)


def normalize_item(backend_id: str, raw, rank: int) -> FederatedItem:
    """Coerce one backend-native result into the common schema.

    Accepts the engine's ``SearchResult``, a core ``SourceItem``, a
    plain mapping, or any object exposing ``url``/``title`` attributes.
    """
    if isinstance(raw, dict):
        get = raw.get
        url = str(get("url", "") or get("link", "") or get("id", ""))
        title = str(get("title", "") or get("headline", "") or url)
        return FederatedItem(
            url=url, title=title,
            snippet=str(get("snippet", "") or get("description", "")),
            site=str(get("site", "")),
            score=float(get("score", 0.0) or 0.0),
            backend_id=backend_id, rank=rank,
            fields={k: v for k, v in raw.items()
                    if k not in ("url", "title", "snippet", "site",
                                 "score")},
        )
    url = str(getattr(raw, "url", "") or getattr(raw, "item_id", ""))
    return FederatedItem(
        url=url,
        title=str(getattr(raw, "title", "") or url),
        snippet=str(getattr(raw, "snippet", "")),
        site=str(getattr(raw, "site", "")
                 or getattr(raw, "fields", {}).get("site", "")),
        score=float(getattr(raw, "score", 0.0) or 0.0),
        backend_id=backend_id,
        rank=rank,
        fields=dict(getattr(raw, "fields", {}) or {}),
    )


def _dedup(items) -> list:
    """Within one backend list, keep the best-ranked copy per URL."""
    seen: dict[str, FederatedItem] = {}
    for item in items:
        kept = seen.get(item.url)
        if kept is None or item.rank < kept.rank:
            seen[item.url] = item
    return sorted(seen.values(), key=lambda i: i.rank)


def _minmax(values) -> list:
    """Min-max normalize to [0, 1]; a constant list maps to all-1.0."""
    if not values:
        return []
    low, high = min(values), max(values)
    if high <= low:
        return [1.0] * len(values)
    return [(v - low) / (high - low) for v in values]


def _by_backend(lists_by_backend: dict) -> list:
    """Deduplicated lists in sorted-backend-id order (the determinism
    anchor: fusion must not depend on dict insertion order)."""
    return [(backend_id, _dedup(lists_by_backend[backend_id]))
            for backend_id in sorted(lists_by_backend)]


def reciprocal_rank_fusion(lists_by_backend: dict,
                           k: int = DEFAULT_RRF_K) -> dict:
    """URL -> RRF score over every backend list containing it."""
    scores: dict[str, float] = {}
    for __, items in _by_backend(lists_by_backend):
        for item in items:
            scores[item.url] = scores.get(item.url, 0.0) \
                + 1.0 / (k + item.rank)
    return scores


def comb_sum(lists_by_backend: dict) -> dict:
    """URL -> sum of per-list min-max-normalized scores."""
    scores: dict[str, float] = {}
    for __, items in _by_backend(lists_by_backend):
        normalized = _minmax([item.score for item in items])
        for item, value in zip(items, normalized):
            scores[item.url] = scores.get(item.url, 0.0) + value
    return scores


def comb_mnz(lists_by_backend: dict) -> dict:
    """CombSUM boosted by the number of lists containing the URL."""
    sums = comb_sum(lists_by_backend)
    counts: dict[str, int] = {}
    for __, items in _by_backend(lists_by_backend):
        for item in items:
            counts[item.url] = counts.get(item.url, 0) + 1
    return {url: value * counts[url] for url, value in sums.items()}


def fuse(lists_by_backend: dict, method: str = "rrf",
         rrf_k: int = DEFAULT_RRF_K) -> list:
    """Fuse per-backend :class:`FederatedItem` lists into one ranking.

    Returns :class:`FusedItem` objects ordered by fused score descending
    with URL as the deterministic tie-break. Cross-backend duplicates
    keep the copy with the best (lowest) rank, ties broken by backend id.
    """
    if method == "rrf":
        scores = reciprocal_rank_fusion(lists_by_backend, k=rrf_k)
    elif method == "combsum":
        scores = comb_sum(lists_by_backend)
    elif method == "combmnz":
        scores = comb_mnz(lists_by_backend)
    else:
        raise ConfigurationError(
            f"unknown fusion method {method!r}; "
            f"expected one of {FUSION_METHODS}"
        )

    best_copy: dict[str, FederatedItem] = {}
    backends: dict[str, list] = {}
    for backend_id, items in _by_backend(lists_by_backend):
        for item in items:
            backends.setdefault(item.url, []).append(backend_id)
            kept = best_copy.get(item.url)
            if kept is None or (item.rank, item.backend_id) \
                    < (kept.rank, kept.backend_id):
                best_copy[item.url] = item

    fused = [
        FusedItem(
            url=url,
            title=best_copy[url].title,
            snippet=best_copy[url].snippet,
            site=best_copy[url].site,
            fused_score=round(score, 9),
            backends=tuple(backends[url]),
            best=best_copy[url],
            fields=dict(best_copy[url].fields),
        )
        for url, score in scores.items()
    ]
    fused.sort(key=lambda item: (-item.fused_score, item.url))
    return fused
