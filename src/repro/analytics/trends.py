"""Query trends: daily volumes and rising queries per application.

The Conclusions observe that each application's usage stream is topic-
focused; beyond static profiles (:mod:`aggregation`), designers want to
see *movement*: daily query volume and which queries are accelerating
("rising"). Rising score follows the classic two-window ratio with
additive smoothing, so brand-new queries score high but a single
occurrence can't dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DailyVolume", "RisingQuery", "TrendReport", "compute_trends"]

_DAY_MS = 86_400_000


@dataclass(frozen=True)
class DailyVolume:
    day: int          # days since the epoch passed to compute_trends
    queries: int
    clicks: int


@dataclass(frozen=True)
class RisingQuery:
    query: str
    recent_count: int
    previous_count: int
    score: float      # smoothed recent/previous ratio


@dataclass(frozen=True)
class TrendReport:
    app_id: str
    daily: tuple        # DailyVolume, ascending by day
    rising: tuple       # RisingQuery, descending by score

    def busiest_day(self) -> DailyVolume | None:
        if not self.daily:
            return None
        return max(self.daily, key=lambda d: (d.queries, -d.day))


def compute_trends(log, app_id: str, now_ms: int,
                   window_days: int = 7, epoch_ms: int = 0,
                   smoothing: float = 1.0,
                   top_n: int = 10) -> TrendReport:
    """Build a :class:`TrendReport` from the query/click log.

    ``window_days`` sets both the recent and the previous comparison
    window; queries older than two windows are ignored for the rising
    computation but still count toward daily volumes.
    """
    queries = log.queries_for_app(app_id)
    clicks = log.clicks_for_app(app_id)

    volumes: dict[int, list[int]] = {}
    for event in queries:
        day = (event.timestamp_ms - epoch_ms) // _DAY_MS
        volumes.setdefault(day, [0, 0])[0] += 1
    for click in clicks:
        day = (click.timestamp_ms - epoch_ms) // _DAY_MS
        volumes.setdefault(day, [0, 0])[1] += 1
    daily = tuple(
        DailyVolume(day, counts[0], counts[1])
        for day, counts in sorted(volumes.items())
    )

    window_ms = window_days * _DAY_MS
    recent_start = now_ms - window_ms
    previous_start = now_ms - 2 * window_ms
    recent: dict[str, int] = {}
    previous: dict[str, int] = {}
    for event in queries:
        key = event.query.strip().lower()
        if event.timestamp_ms >= recent_start:
            recent[key] = recent.get(key, 0) + 1
        elif event.timestamp_ms >= previous_start:
            previous[key] = previous.get(key, 0) + 1

    rising = []
    for key, count in recent.items():
        before = previous.get(key, 0)
        score = (count + smoothing) / (before + smoothing)
        rising.append(RisingQuery(
            query=key, recent_count=count, previous_count=before,
            score=round(score, 4),
        ))
    rising.sort(key=lambda r: (-r.score, -r.recent_count, r.query))
    return TrendReport(app_id=app_id, daily=daily,
                       rising=tuple(rising[:top_n]))
