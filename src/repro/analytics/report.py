"""The designer dashboard: one text report per application.

Assembles the monetization summary, usage profile, trends, CTR by
position, and ad earnings into the "various summaries" §II-A promises
the designer can obtain — in a shape ready to print or download.
"""

from __future__ import annotations

from repro.analytics.aggregation import LogAggregator
from repro.analytics.ctr import ctr_by_position
from repro.analytics.trends import compute_trends

__all__ = ["designer_dashboard"]


def designer_dashboard(symphony, app_id: str,
                       window_days: int = 7) -> str:
    """Render the full analytics dashboard for one application."""
    app = symphony.apps.get(app_id)
    summary = symphony.traffic_summary(app_id)
    profile = LogAggregator(symphony.engine.log).profile(app_id)
    trends = compute_trends(
        symphony.engine.log, app_id,
        now_ms=symphony.clock.now_ms, window_days=window_days,
    )
    positions = ctr_by_position(symphony.engine.log, app_id,
                                max_positions=5)
    earnings = symphony.designer_ad_earnings(app_id)

    lines = [
        f"=== Dashboard: {app.name} ({app_id}) ===",
        "",
        "[Traffic]",
        f"  queries: {summary.query_count}   "
        f"clicks: {summary.click_count} "
        f"(ads: {summary.ad_click_count})   "
        f"CTR: {summary.click_through_rate:.2f}",
        f"  sessions: {profile.sessions}",
    ]

    lines.append("")
    lines.append("[Top queries]")
    if summary.top_queries:
        for query, count in summary.top_queries[:5]:
            lines.append(f"  {count:>4}  {query}")
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append(f"[Rising queries — last {window_days} days]")
    if trends.rising:
        for rising in trends.rising[:5]:
            lines.append(
                f"  {rising.query:<28} {rising.recent_count} recent "
                f"/ {rising.previous_count} before "
                f"(x{rising.score})"
            )
    else:
        lines.append("  (no recent activity)")

    lines.append("")
    lines.append("[Click-through by position]")
    if positions:
        for stats in positions:
            bar = "#" * int(round(stats.ctr * 20))
            lines.append(
                f"  rank {stats.position}: {stats.ctr:>5.2f} "
                f"({stats.clicks}/{stats.impressions}) {bar}"
            )
    else:
        lines.append("  (no impressions logged)")

    lines.append("")
    lines.append("[Clicked sites]")
    if profile.top_sites(5):
        for site, count in profile.top_sites(5):
            lines.append(f"  {count:>4}  {site}")
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append("[Monetization]")
    lines.append(f"  ad earnings credited: ${earnings:.4f}")
    referral = symphony.referral_report(app_id)
    lines.append(f"  referral compensation owed: "
                 f"${referral.total_owed():.2f}")
    return "\n".join(lines)
