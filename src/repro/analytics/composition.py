"""Application composition.

Future work item 4: "creating new applications by composing other
applications". Composition takes two (or more) hosted application
definitions and produces a new one that carries every constituent's
bindings and top-level slots side by side, with binding ids re-minted to
avoid collisions. Supplemental structure under each primary slot is
preserved verbatim.
"""

from __future__ import annotations

from repro.core.application import (
    ApplicationDefinition,
    SourceBinding,
    SourceSlot,
)
from repro.errors import ValidationError
from repro.util import IdGenerator

__all__ = ["compose_applications"]


def _remap_slot(slot: SourceSlot, mapping: dict) -> SourceSlot:
    return SourceSlot(
        binding_id=mapping[slot.binding_id],
        heading=slot.heading,
        result_layout=slot.result_layout,
        children=tuple(_remap_slot(child, mapping)
                       for child in slot.children),
        style=dict(slot.style),
    )


def compose_applications(name: str, owner_tenant: str, apps,
                         ids: IdGenerator | None = None,
                         theme: str | None = None
                         ) -> ApplicationDefinition:
    """Compose ``apps`` into one new application definition.

    The result is validated before being returned; hosting it is the
    caller's decision (typically ``symphony.host(composed)``).
    """
    apps = list(apps)
    if len(apps) < 2:
        raise ValidationError(
            "composition needs at least two applications"
        )
    ids = ids or IdGenerator()
    bindings: list[SourceBinding] = []
    slots: list[SourceSlot] = []
    for app in apps:
        mapping = {}
        for binding in app.bindings:
            new_id = ids.next_id("composed-binding")
            mapping[binding.binding_id] = new_id
            bindings.append(SourceBinding(
                binding_id=new_id,
                source_id=binding.source_id,
                role=binding.role,
                max_results=binding.max_results,
                search_fields=binding.search_fields,
                drive_fields=binding.drive_fields,
                query_suffix=binding.query_suffix,
            ))
        for slot in app.slots:
            remapped = _remap_slot(slot, mapping)
            slots.append(SourceSlot(
                binding_id=remapped.binding_id,
                heading=f"{app.name}: {remapped.heading}"
                        if remapped.heading else app.name,
                result_layout=remapped.result_layout,
                children=remapped.children,
                style=dict(remapped.style),
            ))
    composed = ApplicationDefinition(
        app_id=ids.next_id("composed-app"),
        name=name,
        owner_tenant=owner_tenant,
        description="Composed from: "
                    + ", ".join(app.name for app in apps),
        theme=theme or apps[0].theme,
        bindings=tuple(bindings),
        slots=tuple(slots),
    )
    composed.validate()
    return composed
