"""Recommending supplemental content for a primary source.

Future work item 1: "recommending suitable supplemental content (e.g.,
good game review sites) for a designer's primary content (e.g., game
inventory)". The recommender samples values from the primary table's key
field, runs them as probe queries against the web vertical, scores sites
by how consistently they answer, and optionally widens the set through
Site Suggest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.searchengine.engine import SearchOptions

__all__ = ["SiteRecommendation", "SupplementalRecommender"]


@dataclass(frozen=True)
class SiteRecommendation:
    site: str
    coverage: float     # fraction of probes the site answered
    mean_rank: float    # average position when it answered
    score: float


class SupplementalRecommender:
    """Suggests supplemental web sites for a proprietary table."""

    def __init__(self, engine, site_suggest=None) -> None:
        self._engine = engine
        self._site_suggest = site_suggest

    def recommend(self, table, probe_field: str, count: int = 5,
                  sample_limit: int = 12, probe_suffix: str = "",
                  widen: bool = False) -> list[SiteRecommendation]:
        """Probe the web with sample values of ``probe_field``.

        ``probe_suffix`` focuses probes the way the designer's eventual
        supplemental binding would ("review", "tasting notes", ...).
        """
        probes = []
        for record in table.all_records()[:sample_limit]:
            value = record.values.get(probe_field)
            if value:
                text = f'"{value}"' if " " in str(value) else str(value)
                if probe_suffix:
                    text = f"{text} {probe_suffix}"
                probes.append(text)
        if not probes:
            return []

        answered: dict[str, int] = {}
        rank_sum: dict[str, float] = {}
        for probe in probes:
            response = self._engine.search(
                "web", probe, SearchOptions(count=8)
            )
            seen = set()
            for rank, result in enumerate(response.results, start=1):
                if result.site in seen:
                    continue
                seen.add(result.site)
                answered[result.site] = answered.get(result.site, 0) + 1
                rank_sum[result.site] = rank_sum.get(result.site, 0.0) + rank

        recommendations = []
        for site, hits in answered.items():
            coverage = hits / len(probes)
            mean_rank = rank_sum[site] / hits
            # Coverage dominates; better (lower) mean rank breaks ties.
            score = coverage + 1.0 / (1.0 + mean_rank)
            recommendations.append(SiteRecommendation(
                site=site,
                coverage=round(coverage, 4),
                mean_rank=round(mean_rank, 3),
                score=round(score, 6),
            ))
        recommendations.sort(key=lambda r: (-r.score, r.site))
        top = recommendations[:count]

        if widen and self._site_suggest is not None and top:
            seeds = [r.site for r in top]
            extra = self._site_suggest.suggest(
                seeds, count=max(0, count - len(top)) or 2
            )
            known = {r.site for r in top}
            for suggestion in extra:
                if suggestion.site not in known:
                    top.append(SiteRecommendation(
                        site=suggestion.site,
                        coverage=0.0,
                        mean_rank=0.0,
                        score=round(suggestion.score, 6),
                    ))
        return top[:count] if not widen else top
