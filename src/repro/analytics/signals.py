"""Topic/community relevance signals fed back to the general engine.

The Conclusions: usage data "generated from various search applications
may eventually provide topic- or community-specific relevance signals to
the general search engine". The exporter converts per-app click counts
into bounded authority boosts and merges them into the web vertical's
prior, so community-endorsed pages rank higher for everyone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RelevanceSignalExporter"]


@dataclass
class RelevanceSignalExporter:
    """Turns :class:`AppUsageProfile` click data into engine boosts."""

    max_boost: float = 0.5   # cap so community signal never dominates BM25

    def url_boosts(self, profiles) -> dict:
        """Log-scaled, capped per-URL boosts pooled across applications."""
        pooled: dict[str, int] = {}
        for profile in profiles:
            for url, clicks in profile.url_clicks.items():
                pooled[url] = pooled.get(url, 0) + clicks
        if not pooled:
            return {}
        top = max(pooled.values())
        return {
            url: round(
                self.max_boost * math.log1p(clicks) / math.log1p(top), 6
            )
            for url, clicks in pooled.items()
        }

    def apply_to_engine(self, engine, profiles) -> int:
        """Merge boosts into the web vertical's authority prior.

        Returns the number of URLs whose prior changed. Boosts are
        additive on top of link authority, then clipped to 1.0 so the
        blend stays on the engine's expected scale.
        """
        boosts = self.url_boosts(profiles)
        vertical = engine.vertical("web")
        changed = 0
        for url, boost in boosts.items():
            if url not in vertical.index:
                continue
            before = vertical.authority.get(url, 0.0)
            after = min(1.0, before + boost)
            if after != before:
                vertical.authority[url] = after
                changed += 1
        return changed
