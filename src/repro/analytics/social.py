"""Social search features: community feedback on application results.

Future work item 3: "adding support for social search features". Users of
an application can vote results up or down; the feedback store re-ranks a
result list by blending the retrieval score with a Wilson-style confidence
on the vote ratio, so a few early votes don't overwhelm relevance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["VoteTally", "CommunityFeedback"]


@dataclass
class VoteTally:
    up: int = 0
    down: int = 0

    @property
    def total(self) -> int:
        return self.up + self.down

    def wilson_lower_bound(self, z: float = 1.96) -> float:
        """Lower bound of the Wilson score interval on the up-vote rate."""
        n = self.total
        if n == 0:
            return 0.0
        phat = self.up / n
        denominator = 1 + z * z / n
        centre = phat + z * z / (2 * n)
        margin = z * math.sqrt(
            (phat * (1 - phat) + z * z / (4 * n)) / n
        )
        return (centre - margin) / denominator


@dataclass
class CommunityFeedback:
    """Per-application vote store with re-ranking."""

    vote_weight: float = 0.5
    _votes: dict = field(default_factory=dict)  # (app_id, url) -> VoteTally

    def vote_up(self, app_id: str, url: str) -> VoteTally:
        tally = self._votes.setdefault((app_id, url), VoteTally())
        tally.up += 1
        return tally

    def vote_down(self, app_id: str, url: str) -> VoteTally:
        tally = self._votes.setdefault((app_id, url), VoteTally())
        tally.down += 1
        return tally

    def tally(self, app_id: str, url: str) -> VoteTally:
        return self._votes.get((app_id, url), VoteTally())

    def rerank(self, app_id: str, items) -> list:
        """Re-rank ``items`` (objects with ``url`` and ``score``).

        The social component multiplies the retrieval score by
        ``1 + vote_weight * wilson``; unvoted items keep their order.
        """
        def key(item):
            wilson = self.tally(app_id, item.url).wilson_lower_bound()
            return (-(item.score * (1.0 + self.vote_weight * wilson)),
                    item.url)

        return sorted(items, key=key)
