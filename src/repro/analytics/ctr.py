"""Click-through-rate analysis by result position.

Position bias is the first thing a search-application owner looks at:
are customers clicking the top result, or scrolling? Impressions come
from query events' result lists; clicks are attributed to the position
the clicked URL occupied for that (application, query) pair.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PositionStats", "ctr_by_position"]


@dataclass(frozen=True)
class PositionStats:
    position: int      # 1-based rank
    impressions: int
    clicks: int

    @property
    def ctr(self) -> float:
        return self.clicks / self.impressions if self.impressions \
            else 0.0


def ctr_by_position(log, app_id: str,
                    max_positions: int = 10) -> list[PositionStats]:
    """Impressions/clicks/CTR per displayed rank for one application.

    A URL's position is looked up in the result list the application
    served for the same normalized query text; clicks on URLs that
    never appeared in a result list (or ads) are ignored.
    """
    position_of: dict[tuple, int] = {}
    impressions = [0] * max_positions
    for event in log.queries_for_app(app_id):
        key_query = event.query.strip().lower()
        for rank, url in enumerate(event.result_urls[:max_positions],
                                   start=1):
            impressions[rank - 1] += 1
            position_of.setdefault((key_query, url), rank)

    clicks = [0] * max_positions
    for click in log.clicks_for_app(app_id):
        if click.is_ad:
            continue
        rank = position_of.get(
            (click.query.strip().lower(), click.url)
        )
        if rank is not None:
            clicks[rank - 1] += 1

    return [
        PositionStats(position=i + 1, impressions=impressions[i],
                      clicks=clicks[i])
        for i in range(max_positions)
        if impressions[i] or clicks[i]
    ]
