"""Per-application usage aggregation.

Each Symphony application "is usually oriented around a specific topic or
community"; its logs therefore carry focused signal. The aggregator turns
raw query/click events into an :class:`AppUsageProfile` the signal
exporter and recommender consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import urlparse

from repro.searchengine.analysis import Analyzer

__all__ = ["AppUsageProfile", "LogAggregator"]


@dataclass(frozen=True)
class AppUsageProfile:
    """Aggregated usage for one application."""

    app_id: str
    query_count: int
    click_count: int
    term_frequencies: dict        # analyzed term -> count
    site_clicks: dict             # site -> clicks
    url_clicks: dict              # url -> clicks
    sessions: int

    def top_terms(self, count: int = 10) -> list[tuple]:
        return sorted(
            self.term_frequencies.items(),
            key=lambda pair: (-pair[1], pair[0]),
        )[:count]

    def top_sites(self, count: int = 10) -> list[tuple]:
        return sorted(
            self.site_clicks.items(),
            key=lambda pair: (-pair[1], pair[0]),
        )[:count]

    @property
    def click_through_rate(self) -> float:
        return (self.click_count / self.query_count
                if self.query_count else 0.0)


@dataclass
class LogAggregator:
    """Builds usage profiles from a :class:`~repro.searchengine.logs.
    QueryLog`."""

    log: object
    analyzer: Analyzer = field(default_factory=Analyzer)

    def app_ids(self) -> list[str]:
        seen = {q.app_id for q in self.log.queries if q.app_id}
        seen.update(c.app_id for c in self.log.clicks if c.app_id)
        return sorted(seen)

    def profile(self, app_id: str) -> AppUsageProfile:
        queries = self.log.queries_for_app(app_id)
        clicks = self.log.clicks_for_app(app_id)
        terms: dict[str, int] = {}
        sessions = set()
        for event in queries:
            for term in self.analyzer.analyze(event.query):
                terms[term] = terms.get(term, 0) + 1
            if event.session_id:
                sessions.add(event.session_id)
        site_clicks: dict[str, int] = {}
        url_clicks: dict[str, int] = {}
        for click in clicks:
            if click.is_ad:
                continue
            site = urlparse(click.url).netloc or click.url
            site_clicks[site] = site_clicks.get(site, 0) + 1
            url_clicks[click.url] = url_clicks.get(click.url, 0) + 1
            if click.session_id:
                sessions.add(click.session_id)
        return AppUsageProfile(
            app_id=app_id,
            query_count=len(queries),
            click_count=len(clicks),
            term_frequencies=terms,
            site_clicks=site_clicks,
            url_clicks=url_clicks,
            sessions=len(sessions),
        )

    def profiles(self) -> dict:
        return {app_id: self.profile(app_id)
                for app_id in self.app_ids()}
