"""Analytics and the paper's future-work features.

The Conclusions argue that per-application usage logs "may eventually
provide topic- or community-specific relevance signals to the general
search engine", and list four future-work directions. This package
implements them:

* :mod:`aggregation` — per-application log aggregation (term
  distributions, CTR, site-level engagement);
* :mod:`signals` — turning app logs into relevance boosts applied back to
  the general engine;
* :mod:`recommend` — recommending suitable supplemental content (e.g.
  good review sites) for a designer's primary content;
* :mod:`social` — community feedback (votes) re-ranking app results;
* :mod:`composition` — creating new applications by composing others.
"""

from repro.analytics.aggregation import AppUsageProfile, LogAggregator
from repro.analytics.composition import compose_applications
from repro.analytics.recommend import SupplementalRecommender
from repro.analytics.signals import RelevanceSignalExporter
from repro.analytics.social import CommunityFeedback
from repro.analytics.trends import TrendReport, compute_trends

__all__ = [
    "AppUsageProfile",
    "LogAggregator",
    "compose_applications",
    "SupplementalRecommender",
    "RelevanceSignalExporter",
    "CommunityFeedback",
    "TrendReport",
    "compute_trends",
]
