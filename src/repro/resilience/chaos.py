"""Chaos fault-plan harness: prove the resilience invariants hold.

A declarative :class:`FaultPlan` (typically a committed JSON file, see
``examples/chaos_fault_plan.json``) describes a deployment shape and a
storm of injected faults — service outages, transport latency spikes,
replica faults, slow replicas, and flapping replica health. The harness
stands up a full Symphony deployment with resilience enabled, runs a
demo-style workload under that storm, and asserts the contract the
resilience layer promises:

1. every query returns within ``deadline_ms + grace_ms`` simulated ms
   (the grace covers fixed pipeline stages plus one worst-case
   non-preemptible in-flight call — deadline expiry means "no new
   work", not preemption);
2. every query that overran its deadline is surfaced as degraded
   (``ApplicationResponse.degraded`` with a warning in the trace); and
3. no exception escapes the query path — faults degrade, never crash.

All injection draws are seeded off the plan, so a given plan replays
the exact same storm every run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.resilience import ResilienceConfig
from repro.resilience.hedging import HedgePolicy
from repro.resilience.retry import RetryPolicy
from repro.util import deterministic_rng

__all__ = ["FaultPlan", "ChaosReport", "load_fault_plan", "run_chaos"]


@dataclass(frozen=True)
class FaultPlan:
    """A declarative chaos scenario: deployment shape + fault storm."""

    name: str = "default"
    seed: int = 2027
    queries: int = 36
    deadline_ms: float = 600.0
    grace_ms: float = 400.0            # fixed stages + one in-flight call
    # Deployment shape.
    num_shards: int = 2
    replicas_per_shard: int = 2
    web: dict = field(default_factory=dict)   # WebSpec overrides
    # Per-service bus fault profiles:
    # name -> {failure_probability, latency_spike_ms,
    #          latency_spike_probability}.
    services: dict = field(default_factory=dict)
    # Replica-level faults, drawn per query per replica.
    replica_fault_rate: float = 0.0
    replica_latency_spike_ms: float = 0.0
    replica_latency_spike_rate: float = 0.0
    replica_flap_period: int = 0       # every N queries, flip one down
    # Targeted, deterministic degradation: every query, every replica of
    # this shard serves ``slow_shard_ms`` slow (no RNG — the fault the
    # SLO layer is expected to detect and attribute).
    slow_shard: int = -1
    slow_shard_ms: float = 0.0
    # SLO layer under test: SLOConfig overrides plus ``expect_*``
    # assertions the harness checks after the storm —
    #   {"fast_window_ms": 5000, ..., "expect_burn": true,
    #    "expect_dominant": "shard:1"}.
    slo: dict = field(default_factory=dict)
    # Resilience configuration under test.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    hedge: HedgePolicy | None = field(default_factory=HedgePolicy)
    # Online-resharding storm (see ``_ReshardStorm``): topology changes
    # driven mid-workload, with per-iteration result/ownership probes.
    #   {"steps": [{"at": 4, "op": "split", "shard": 0},
    #              {"at": 20, "op": "merge", "source": 2, "target": 0}],
    #    "batch_size": 24, "probe_docs": 8,
    #    "probe_queries": ["news", "game"]}
    reshard: dict = field(default_factory=dict)
    # Crash/recovery storm (see ``_DurabilityStorm``): replicas crashed
    # mid-workload — index state wiped, not merely unhealthy — while a
    # document stream keeps writing, then repaired via checkpoint + WAL
    # replay. ``"during_reshard": true`` on a crash asserts a migration
    # is in flight when it lands (the crash-mid-handoff scenario).
    #   {"checkpoint_every": 24, "storage": "memory",
    #    "ingest_per_query": 2,
    #    "crashes": [{"at": 6, "shard": 0, "replica": 1,
    #                 "recover_at": 18, "during_reshard": false}],
    #    "expect_recovered": true, "expect_digest_match": true,
    #    "expect_missed_writes": true}
    durability: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        _missing = object()
        data = dict(data)
        retry = data.pop("retry", None)
        # An explicit ``"hedge": null`` disables hedging; an absent key
        # keeps the default policy.
        hedge = data.pop("hedge", _missing)
        replicas = data.pop("replicas", None)
        if replicas:
            data.setdefault("replica_fault_rate",
                            replicas.get("fault_rate", 0.0))
            data.setdefault("replica_latency_spike_ms",
                            replicas.get("latency_spike_ms", 0.0))
            data.setdefault("replica_latency_spike_rate",
                            replicas.get("latency_spike_rate", 0.0))
            data.setdefault("replica_flap_period",
                            replicas.get("flap_period", 0))
        cluster = data.pop("cluster", None)
        if cluster:
            data.setdefault("num_shards", cluster.get("num_shards", 2))
            data.setdefault("replicas_per_shard",
                            cluster.get("replicas_per_shard", 1))
        plan = cls(**data)
        if retry is not None:
            plan = replace(plan, retry=RetryPolicy(**retry))
        if hedge is not _missing:
            plan = replace(
                plan, hedge=HedgePolicy(**hedge) if hedge else None
            )
        return plan

    def resilience(self) -> ResilienceConfig:
        return ResilienceConfig(
            deadline_ms=self.deadline_ms,
            retry=self.retry,
            hedge=self.hedge,
        )


def load_fault_plan(path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fileobj:
        return FaultPlan.from_dict(json.load(fileobj))


@dataclass
class ChaosReport:
    """What one chaos run observed, with the invariant verdict."""

    plan_name: str
    queries_run: int = 0
    degraded: int = 0
    retries: int = 0
    retry_exhaustions: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    deadline_events: int = 0
    max_elapsed_ms: float = 0.0
    # Reshard-storm accounting (zero when the plan has no storm).
    reshards_completed: int = 0
    handoff_batches: int = 0
    docs_moved: int = 0
    topology_version: int = 0
    reshard_probes: int = 0
    cache_cutover_probes: int = 0
    # Durability-storm accounting (zero when the plan has no
    # durability block).
    crashes_injected: int = 0
    crashes_recovered: int = 0
    writes_missed: int = 0
    records_replayed: int = 0
    digest_matches: int = 0
    reads_while_down: int = 0
    # SLO-layer accounting (zero/empty when the plan has no slo block).
    slo_burn_alerts: int = 0
    slo_first_alert_ms: int = 0
    slo_detection_ms: int = 0          # fault start -> first alert (sim)
    slo_breaching_retained: int = 0
    slo_dominant: str = ""
    slo_worst_attribution: dict = field(default_factory=dict)
    slo_recorder: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)
    escaped: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.escaped

    def render(self) -> str:
        lines = [
            f"chaos plan {self.plan_name!r}: "
            f"{self.queries_run} queries",
            f"  degraded responses   {self.degraded}",
            f"  retries / exhausted  {self.retries} / "
            f"{self.retry_exhaustions}",
            f"  hedges / wins        {self.hedges} / {self.hedge_wins}",
            f"  deadline events      {self.deadline_events}",
            f"  max elapsed (sim)    {self.max_elapsed_ms:.0f}ms",
        ]
        if self.reshards_completed or self.docs_moved:
            lines += [
                f"  reshards completed   {self.reshards_completed} "
                f"(topology v{self.topology_version})",
                f"  handoff batches      {self.handoff_batches} "
                f"({self.docs_moved} docs moved)",
                f"  reshard probes       {self.reshard_probes} "
                f"({self.cache_cutover_probes} cache cutover checks)",
            ]
        if self.crashes_injected:
            lines += [
                f"  crashes / recovered  {self.crashes_injected} / "
                f"{self.crashes_recovered}",
                f"  writes missed        {self.writes_missed} "
                f"({self.records_replayed} WAL records replayed)",
                f"  digest matches       {self.digest_matches} "
                f"({self.reads_while_down} reads served while down)",
            ]
        if self.slo_burn_alerts or self.slo_dominant:
            lines += [
                f"  slo burn alerts      {self.slo_burn_alerts} "
                f"(first at {self.slo_first_alert_ms}ms sim)",
                f"  slo traces retained  {self.slo_breaching_retained} "
                f"breaching",
                f"  slo dominant cause   {self.slo_dominant}",
            ]
        if self.escaped:
            lines.append(f"  ESCAPED EXCEPTIONS   {len(self.escaped)}")
            lines += [f"    - {item}" for item in self.escaped]
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS {len(self.violations)}")
            lines += [f"    - {item}" for item in self.violations]
        lines.append("  verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _slo_config(plan: FaultPlan):
    """The plan's SLO layer, or ``None``. ``expect_*`` keys are harness
    assertions, not :class:`~repro.slo.SLOConfig` fields."""
    if not plan.slo:
        return None
    from repro.slo import SLOConfig
    options = {key: value for key, value in plan.slo.items()
               if not key.startswith("expect_")}
    return SLOConfig.from_dict(options)


def _build_platform(plan: FaultPlan):
    """A clustered, telemetry-on, resilience-on Symphony for the plan."""
    from repro.cluster import ClusterConfig
    from repro.core.platform import Symphony
    from repro.services.bus import ServiceBus
    from repro.simweb.generator import WebSpec

    web = dict(plan.web)
    web.setdefault("extra_sites_per_topic", 1)
    web.setdefault("pages_per_site", 6)
    web.setdefault("images_per_site", 2)
    web.setdefault("videos_per_site", 2)
    web.setdefault("news_per_site", 3)
    durability = None
    if plan.durability:
        from repro.durability import DurabilityConfig
        durability = DurabilityConfig(
            storage=plan.durability.get("storage", "memory"),
            checkpoint_every=int(
                plan.durability.get("checkpoint_every", 64)),
        )
    symphony = Symphony(
        web_spec=WebSpec(seed=plan.seed, **web),
        cluster=ClusterConfig(
            num_shards=plan.num_shards,
            replicas_per_shard=plan.replicas_per_shard,
        ),
        telemetry=True,
        resilience=plan.resilience(),
        # The workload cycles a handful of titles; with the cache on,
        # repeats would short-circuit the live path and the storm would
        # only ever bite the first few queries.
        cache_enabled=False,
        # A reshard storm needs the control plane, and the gateway so
        # the cutover cache-invalidation invariant can be probed.
        controlplane=bool(plan.reshard) or None,
        gateway=bool(plan.reshard) or None,
        slo=_slo_config(plan),
        durability=durability,
    )
    # Swap in a bus seeded by the plan so fault draws replay, then apply
    # the per-service profiles. Must happen before add_service_source:
    # ServiceSource captures the bus at creation time.
    bus = ServiceBus(clock=symphony.clock, seed=plan.seed)
    bus.register(symphony.ads)
    symphony.bus = bus
    for name, profile in plan.services.items():
        bus.set_fault_profile(
            name,
            failure_probability=profile.get("failure_probability"),
            latency_spike_ms=profile.get("latency_spike_ms"),
            latency_spike_probability=profile.get(
                "latency_spike_probability"
            ),
        )
    return symphony


def _build_workload(symphony, plan: FaultPlan):
    """A GamerQueen-style app exercising every source kind.

    Primary proprietary inventory, clustered web reviews, a REST pricing
    service (the bus fault profiles bite here), and an ad slot.
    Returns ``(app_id, queries)``.
    """
    from repro.services.samples import PricingService

    account = symphony.register_designer("Chaos")
    games = symphony.web.entities["video_games"][:5]
    rows = ["title,producer,description"]
    rows += [f'{g},Studio {i},"A classic {g} experience"'
             for i, g in enumerate(games)]
    symphony.upload_http(account, "inventory.csv",
                         "\n".join(rows).encode(), "inventory",
                         content_type="text/csv")
    inventory = symphony.add_proprietary_source(
        account, "inventory",
        search_fields=("title", "producer", "description"),
    )
    reviews = symphony.add_web_source(
        "Game reviews", "web",
        sites=("gamespot.com", "ign.com", "teamxbox.com"),
    )
    symphony.bus.register(PricingService(seed=plan.seed))
    pricing = symphony.add_service_source(
        "Live pricing", "pricing", "GET /prices/{sku}", "sku",
        item_fields=("sku", "price", "stock", "in_stock"),
        title_field="sku",
    )
    ads = symphony.add_ad_source()
    advertiser = symphony.ads.create_advertiser("GameCo", 100.0)
    symphony.ads.create_campaign(
        advertiser.advertiser_id, [games[0], "game"], 0.40,
        "GameCo Megastore", "http://gameco.example",
    )
    session = symphony.designer().new_application(
        "ChaosQueen", account.tenant.tenant_id
    )
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=3,
        search_fields=("title", "producer", "description"),
    )
    session.add_hyperlink(slot, "title")
    session.add_text(slot, "description")
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        heading="Reviews", max_results=2, query_suffix="review",
    )
    session.drag_source_onto_result_layout(
        slot, pricing.source_id, drive_fields=("title",), max_results=1,
    )
    session.drag_source_onto_app(ads.source_id, heading="Sponsored")
    return symphony.host(session), games


def _inject_replica_chaos(engine, plan: FaultPlan, index: int) -> None:
    """Seeded per-query replica faults, slowness, and flapping."""
    groups = getattr(engine, "groups", None)
    if not groups:
        return
    period = plan.replica_flap_period
    if period and index and index % period == 0:
        # Flap: bring everything back, then take one replica down so
        # failover and (with >1 replica) hedging stay exercised without
        # ever blacking out a whole shard. Runs *before* this
        # iteration's injections — kill/revive disarm a replica's
        # pending faults and delays, so injecting first would waste the
        # storm on flap iterations. (Crashed replicas ignore the
        # revive: only the recovery manager can bring those back.)
        for group in groups:
            for replica_index in range(len(group.replicas)):
                group.revive(replica_index)
        flip = index // period
        group = groups[flip % len(groups)]
        if len(group.replicas) > 1:
            group.kill(flip % len(group.replicas))
    if (plan.slow_shard_ms > 0
            and 0 <= plan.slow_shard < len(groups)):
        # Deterministic hot shard: slow every replica so hedging cannot
        # route around it — the whole shard is degraded, and the SLO
        # layer should both alert on the burn and name this shard.
        for replica in groups[plan.slow_shard].replicas:
            replica.inject_latency(plan.slow_shard_ms, 4)
    rng = deterministic_rng((plan.seed, "chaos", index))
    for group in groups:
        for replica in group.replicas:
            if (plan.replica_fault_rate
                    and rng.random() < plan.replica_fault_rate):
                replica.inject_fault()
            if (plan.replica_latency_spike_rate
                    and rng.random() < plan.replica_latency_spike_rate):
                # Vary the magnitude so the latency distribution has a
                # tail — hedging triggers on the quantile, and a
                # constant spike would sit exactly at it.
                replica.inject_latency(
                    plan.replica_latency_spike_ms * (0.5 + rng.random())
                )


class _ReshardStorm:
    """Drives scheduled topology changes through the workload and
    checks the migration invariants after every step:

    * **no dropped or duplicated results** — probe queries must return
      exactly the pre-storm result set (urls and totals) at every
      migration state, including the dual-read window;
    * **no wrong-shard documents** — every sampled moving document is
      present on the shard its current route map says owns it;
    * **cache coherence at cutover** — a gateway-cached response primed
      before the route flip must be generation-invalidated by it.
    """

    def __init__(self, symphony, plan: FaultPlan, app_id: str,
                 report: ChaosReport) -> None:
        self.symphony = symphony
        self.plan = plan
        self.app_id = app_id
        self.report = report
        self.controlplane = symphony.controlplane
        reshard = plan.reshard
        if reshard.get("batch_size"):
            self.controlplane.batch_size = int(reshard["batch_size"])
        self.ops = sorted(reshard.get("steps", []),
                          key=lambda op: op.get("at", 0))
        self.probe_limit = int(reshard.get("probe_docs", 8))
        self.probe_queries = list(
            reshard.get("probe_queries", ("news", "game"))
        )
        self.cache_query = str(
            reshard.get("cache_probe_query", "storm cache probe")
        )
        self.baselines: dict = {}    # query -> (urls, total_matches)
        self.doc_probes: list = []   # (vertical, doc_id) samples
        self.started = 0

    def capture_baseline(self) -> None:
        """Record the pre-storm truth the probes are checked against."""
        for query in self.probe_queries:
            response = self.symphony.engine.search("web", query)
            self.baselines[query] = (
                tuple(r.url for r in response.results),
                response.total_matches,
            )

    def on_query(self, index: int) -> None:
        """One storm iteration: start/advance the migration, then probe."""
        controlplane = self.controlplane
        if (not controlplane.active and self.ops
                and index >= self.ops[0].get("at", 0)):
            self._start(self.ops.pop(0))
        elif controlplane.active:
            from repro.controlplane import CUTOVER
            if controlplane.migration.state == CUTOVER:
                self._cutover_with_cache_probe()
            else:
                controlplane.step()
        self._verify(index)

    def finish(self) -> None:
        """Drive any still-open migration to completion, probing each
        step, so the run never ends with a half-moved shard."""
        extra = 0
        while (self.controlplane.active or self.ops) and extra < 1000:
            self.on_query(self.plan.queries + extra)
            extra += 1
        if self.controlplane.active or self.ops:
            self.report.violations.append(
                "reshard storm did not run to completion"
            )

    # -- internals ------------------------------------------------------------

    def _start(self, op: dict) -> None:
        if op["op"] == "split":
            migration = self.controlplane.begin_split(op["shard"])
        elif op["op"] == "merge":
            migration = self.controlplane.begin_merge(
                op["source"], op["target"])
        else:
            raise ValueError(f"unknown reshard op {op['op']!r}")
        self.doc_probes.extend(migration.pending[:self.probe_limit])
        self.started += 1

    def _cutover_with_cache_probe(self) -> None:
        """Flip the route with a primed gateway cache entry in place and
        insist the flip invalidates it."""
        from repro.errors import AdmissionRejectedError
        gateway = self.symphony.gateway
        stepped = False
        try:
            query = self.cache_query
            self.symphony.query_via_gateway(self.app_id, query)
            before = gateway.cache.stats()
            self.symphony.query_via_gateway(self.app_id, query)
            primed = gateway.cache.stats()
            served_cached = primed["hits"] == before["hits"] + 1
            self.controlplane.step()
            stepped = True
            self.symphony.query_via_gateway(self.app_id, query)
            after = gateway.cache.stats()
            if served_cached:
                self.report.cache_cutover_probes += 1
                if (after["stale_invalidations"]
                        != primed["stale_invalidations"] + 1):
                    self.report.violations.append(
                        "reshard cutover left a stale gateway cache "
                        "entry serving the old topology"
                    )
        except AdmissionRejectedError:
            pass
        finally:
            if not stepped:
                self.controlplane.step()

    def _verify(self, index: int) -> None:
        engine = self.symphony.engine
        state = (self.controlplane.migration.state
                 if self.controlplane.active else "idle")
        where = f"iteration {index} ({state})"
        for query in self.probe_queries:
            response = engine.search("web", query)
            urls = tuple(r.url for r in response.results)
            base_urls, base_total = self.baselines[query]
            if urls != base_urls:
                self.report.violations.append(
                    f"probe {query!r} diverged at {where}: "
                    f"{len(set(base_urls) - set(urls))} dropped, "
                    f"{len(set(urls) - set(base_urls))} unexpected"
                )
            elif response.total_matches != base_total:
                self.report.violations.append(
                    f"probe {query!r} total_matches "
                    f"{response.total_matches} != {base_total} at {where}"
                )
            self.report.reshard_probes += 1
        route = engine.router.snapshot()
        for vertical, doc_id in self.doc_probes:
            owner = route.shard_of(doc_id)
            holders = [
                group.shard_id
                for group in engine.active_groups(route)
                if doc_id in group.primary().vertical(vertical).index
            ]
            if owner not in holders:
                self.report.violations.append(
                    f"doc {doc_id} missing from owning shard {owner} "
                    f"at {where} (held by {holders})"
                )
            self.report.reshard_probes += 1


class _DurabilityStorm:
    """Crashes replicas mid-workload and checks the durability contract:

    * a crashed replica **misses** the writes broadcast while it is
      down (its state is gone, not merely unrouted);
    * **zero reads** reach it between crash and rejoin — failover and
      hedging route around it, and recovery never puts a half-rebuilt
      replica in rotation;
    * after checkpoint-restore + WAL replay its per-vertical content
      digest **matches a healthy peer**, and it rejoins read rotation.

    A steady document stream (``ingest_per_query``) runs alongside the
    query storm so there genuinely are writes to miss; the stream uses
    nonsense tokens so it never perturbs the workload or the reshard
    storm's probe baselines.
    """

    def __init__(self, symphony, plan: FaultPlan,
                 report: ChaosReport) -> None:
        self.symphony = symphony
        self.plan = plan
        self.report = report
        self.durability = symphony.durability
        config = plan.durability
        self.crashes = sorted(config.get("crashes", []),
                              key=lambda step: step.get("at", 0))
        self.scheduled = len(self.crashes)
        self.ingest_per_query = int(config.get("ingest_per_query", 0))
        self._down: dict = {}     # (shard, replica_idx) -> crash info
        self._ingested = 0

    def on_query(self, index: int) -> None:
        """One storm iteration: ingest, crash what is due, recover what
        is due. Runs before the query so the read path sees the crash."""
        self._ingest()
        while self.crashes and index >= self.crashes[0].get("at", 0):
            self._crash(self.crashes.pop(0), index)
        for key, info in list(self._down.items()):
            if index >= info["recover_at"]:
                self._recover(key, info)

    def finish(self) -> None:
        """Recover anything still down, then check the plan's
        ``expect_*`` assertions."""
        for step in self.crashes:      # scheduled past the last query
            self._crash(step, self.plan.queries)
        for key, info in list(self._down.items()):
            self._recover(key, info)
        report, config = self.report, self.plan.durability
        if (config.get("expect_recovered")
                and report.crashes_recovered < self.scheduled):
            report.violations.append(
                f"durability: only {report.crashes_recovered} of "
                f"{self.scheduled} crashed replicas recovered"
            )
        if (config.get("expect_digest_match")
                and report.digest_matches < report.crashes_recovered):
            report.violations.append(
                f"durability: {report.digest_matches} digest matches "
                f"for {report.crashes_recovered} recoveries"
            )
        if config.get("expect_missed_writes") and not report.writes_missed:
            report.violations.append(
                "durability: expected crashed replicas to miss writes; "
                "none were missed"
            )

    # -- internals ------------------------------------------------------------

    def _ingest(self) -> None:
        """Stream documents through the replicated write path."""
        from repro.searchengine.documents import FieldedDocument
        from repro.searchengine.engine import Vertical
        for _ in range(self.ingest_per_query):
            number = self._ingested
            self._ingested += 1
            self.symphony.engine.add_document(
                Vertical.WEB,
                FieldedDocument(
                    f"zz-durability-{number}",
                    {"title": f"zzdurability chunk{number}",
                     "url": f"http://durability.example/{number}"},
                    None,
                ),
            )

    def _crash(self, step: dict, index: int) -> None:
        shard = int(step["shard"])
        replica_index = int(step.get("replica", 1))
        if step.get("during_reshard"):
            controlplane = self.symphony.controlplane
            if controlplane is None or not controlplane.active:
                self.report.violations.append(
                    f"durability: crash at {index} expected a reshard "
                    f"in flight; none was"
                )
        group = self.symphony.engine.groups[shard]
        if replica_index >= len(group.replicas):
            self.report.violations.append(
                f"durability: crash step names replica {replica_index} "
                f"of shard {shard}, which has {len(group.replicas)}"
            )
            return
        replica = group.replicas[replica_index]
        self.durability.crash_replica(shard, replica_index)
        self.report.crashes_injected += 1
        self._down[(shard, replica_index)] = {
            "recover_at": int(step.get("recover_at", index + 6)),
            "reads_before": replica.reads_served,
        }

    def _recover(self, key, info: dict) -> None:
        from repro.errors import DurabilityError
        shard, replica_index = key
        replica = self.symphony.engine.groups[shard] \
            .replicas[replica_index]
        reads_while_down = replica.reads_served - info["reads_before"]
        self.report.reads_while_down += reads_while_down
        if reads_while_down:
            self.report.violations.append(
                f"durability: {replica.replica_id} served "
                f"{reads_while_down} reads while crashed/recovering"
            )
        try:
            recovery = self.durability.recover_replica(
                shard, replica_index)
        except DurabilityError as exc:
            self.report.violations.append(
                f"durability: recovery of {replica.replica_id} "
                f"failed: {exc}"
            )
            del self._down[key]
            return
        self.report.crashes_recovered += 1
        self.report.writes_missed += recovery.writes_missed
        self.report.records_replayed += recovery.records_replayed
        if recovery.digest_match is not False:
            # True, or None on a single-replica shard (no peer to
            # compare — convergence is reaching the WAL head).
            self.report.digest_matches += 1
        del self._down[key]


def _check_slo(symphony, plan: FaultPlan, report: ChaosReport,
               workload_started_ms: int = 0) -> None:
    """Fill the report's SLO fields and check the plan's ``expect_*``
    assertions: did the burn alert fire, and does the explain()
    attribution name the fault the plan injected?"""
    slo = symphony.slo
    fired = [a for a in slo.alerts() if a.get("kind") == "fire"]
    report.slo_burn_alerts = len(fired)
    report.slo_first_alert_ms = (slo.first_burn_ms() or 0)
    if fired and workload_started_ms:
        report.slo_detection_ms = (report.slo_first_alert_ms
                                   - workload_started_ms)
    report.slo_breaching_retained = len(slo.recorder.breaching())
    report.slo_recorder = slo.recorder.stats.as_dict()
    worst = slo.worst_record()
    if worst is not None:
        attribution = slo.explain(worst.query_id)
        if attribution is not None:
            report.slo_dominant = attribution.dominant_label
            report.slo_worst_attribution = attribution.to_dict()
    if plan.slo.get("expect_burn") and not fired:
        report.violations.append(
            "slo: expected a burn-rate alert to fire; none did"
        )
    expected = plan.slo.get("expect_dominant", "")
    if expected and not report.slo_dominant.startswith(expected):
        report.violations.append(
            f"slo: expected dominant cause {expected!r}, "
            f"explain() said {report.slo_dominant!r}"
        )


def run_chaos(plan: FaultPlan) -> ChaosReport:
    """Run the plan's fault storm and check the resilience invariants."""
    symphony = _build_platform(plan)
    app_id, games = _build_workload(symphony, plan)
    report = ChaosReport(plan_name=plan.name)
    storm = (_ReshardStorm(symphony, plan, app_id, report)
             if plan.reshard else None)
    durability_storm = (_DurabilityStorm(symphony, plan, report)
                        if plan.durability else None)
    if storm is not None:
        storm.capture_baseline()
    budget = plan.deadline_ms + plan.grace_ms
    clock = symphony.clock
    workload_started_ms = clock.now_ms
    for index in range(plan.queries):
        _inject_replica_chaos(symphony.engine, plan, index)
        if durability_storm is not None:
            durability_storm.on_query(index)
        query = games[index % len(games)]
        started = clock.now_ms
        try:
            response = symphony.query(
                app_id, query, session_id=f"chaos-{index}",
                deadline_ms=plan.deadline_ms,
            )
        except Exception as exc:  # noqa: BLE001 — the invariant itself
            report.escaped.append(
                f"query {index} ({query!r}): "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        report.queries_run += 1
        elapsed = clock.now_ms - started
        report.max_elapsed_ms = max(report.max_elapsed_ms, elapsed)
        if response.degraded:
            report.degraded += 1
        if elapsed > budget:
            report.violations.append(
                f"query {index} ({query!r}) took {elapsed:.0f}ms "
                f"(> {plan.deadline_ms:.0f}ms deadline "
                f"+ {plan.grace_ms:.0f}ms grace)"
            )
        elif elapsed > plan.deadline_ms and not response.degraded:
            report.violations.append(
                f"query {index} ({query!r}) overran its deadline "
                f"({elapsed:.0f}ms) without surfacing degradation"
            )
        if storm is not None:
            storm.on_query(index)
    if durability_storm is not None:
        durability_storm.finish()
    if storm is not None:
        storm.finish()
        events = symphony.telemetry.events
        report.reshards_completed = len(events.by_kind(
            "reshard.complete"))
        report.handoff_batches = len(events.by_kind("reshard.handoff"))
        report.topology_version = symphony.engine.topology_version
        report.docs_moved = int(symphony.telemetry.metrics.counter(
            "controlplane_docs_moved_total").value)
        if report.reshards_completed < storm.started:
            report.violations.append(
                f"only {report.reshards_completed} of {storm.started} "
                f"reshards completed"
            )
    if symphony.slo.enabled:
        _check_slo(symphony, plan, report, workload_started_ms)
    metrics = symphony.telemetry.metrics
    report.retries = int(metrics.counter("retries_total").value)
    report.retry_exhaustions = int(
        metrics.counter("retry_exhausted_total").value
    )
    report.hedges = int(metrics.counter("hedges_total").value)
    report.hedge_wins = int(metrics.counter("hedge_wins_total").value)
    report.deadline_events = int(
        metrics.counter("deadline_exceeded_total").value
    )
    return report
