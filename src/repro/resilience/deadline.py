"""Per-query deadline propagation.

A :class:`Deadline` is minted once per query by the runtime and threaded
through every stage that does real work — supplemental fan-out, cluster
scatter-gather, REST/SOAP invocation, the ad auction.  Each stage asks
``expired`` (or calls ``check``) before starting new work, so a query that
runs out of budget stops fanning out and degrades to partial results
instead of failing.

The budget is judged against :class:`repro.util.SimClock`, keeping every
deadline decision deterministic.  An optional *wall* budget additionally
caps real elapsed time, which the scatter-gather executor uses to bound
its sequential ``future.result`` waits by one shared wall-clock budget.
"""

from __future__ import annotations

import time

from repro.errors import DeadlineExceededError

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget for one query, charged against the sim clock."""

    __slots__ = ("clock", "budget_ms", "deadline_ms", "_wall_deadline",
                 "reported")

    def __init__(self, clock, budget_ms: float,
                 wall_budget_s: float | None = None) -> None:
        if budget_ms <= 0:
            raise ValueError("deadline budget must be positive")
        self.clock = clock
        self.budget_ms = float(budget_ms)
        self.deadline_ms = clock.now_ms + float(budget_ms)
        self._wall_deadline = (
            time.monotonic() + wall_budget_s
            if wall_budget_s is not None else None
        )
        # Set by the first caller that surfaces the expiry to telemetry,
        # so one query emits one ``deadline.exceeded`` event, not one per
        # skipped source.
        self.reported = False

    def remaining_ms(self) -> float:
        """Simulated milliseconds left; negative once overrun."""
        return self.deadline_ms - self.clock.now_ms

    def remaining_wall_s(self) -> float | None:
        """Real seconds left, or ``None`` when no wall budget was set."""
        if self._wall_deadline is None:
            return None
        return max(0.0, self._wall_deadline - time.monotonic())

    @property
    def expired(self) -> bool:
        if self.remaining_ms() <= 0:
            return True
        wall = self.remaining_wall_s()
        return wall is not None and wall <= 0.0

    def overshoot_ms(self) -> float:
        """How far past the budget the sim clock has run (0 if within)."""
        return max(0.0, -self.remaining_ms())

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget ran out."""
        if self.expired:
            where = f" in {label}" if label else ""
            raise DeadlineExceededError(
                f"deadline of {self.budget_ms:.0f}ms exceeded{where} "
                f"(overshoot {self.overshoot_ms():.0f}ms)"
            )
