"""repro.resilience — deadlines, deterministic retry, hedging, chaos.

The resilience layer is opt-in (``Symphony(resilience=True)`` or a custom
:class:`ResilienceConfig`) and threads three mechanisms through the Fig. 2
query pipeline:

* :class:`Deadline` — a per-query budget propagated into supplemental
  fan-out, cluster scatter-gather, REST/SOAP invocation, and the ad
  auction; expiry degrades to partial results, never a failed query.
* :class:`RetryPolicy` / :class:`Retrier` — seeded jittered exponential
  backoff charged to the sim clock, classified per error class by
  :func:`repro.errors.retryable`, composed with the circuit breaker.
* :class:`HedgePolicy` — backup replica reads once an attempt exceeds a
  learned latency quantile.

The chaos harness lives in :mod:`repro.resilience.chaos` (imported
lazily — it depends on the platform facade) and is exposed on the CLI as
``repro chaos``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.deadline import Deadline
from repro.resilience.hedging import HedgePolicy
from repro.resilience.retry import Retrier, RetryPolicy

__all__ = [
    "Deadline",
    "HedgePolicy",
    "Retrier",
    "RetryPolicy",
    "ResilienceConfig",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Bundle of resilience knobs wired through the platform facade."""

    #: Default per-query budget in simulated ms (``Symphony.query`` may
    #: override per request via ``deadline_ms=``).
    deadline_ms: float = 1500.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: ``None`` disables hedged replica reads.
    hedge: HedgePolicy | None = field(default_factory=HedgePolicy)
