"""Deterministic retry with seeded jittered exponential backoff.

Backoff schedules derive from :func:`repro.util.deterministic_rng`, keyed
by ``(seed, key, attempt)`` — the same seed always yields bit-for-bit the
same schedule, and distinct keys (source ids, query texts) decorrelate so
concurrent callers don't retry in lockstep.  Backoff time is charged to
the :class:`~repro.util.SimClock`, never slept.

:class:`Retrier` composes with the existing circuit breaker through two
hooks rather than owning it: ``on_error`` fires once per failed attempt
(the runtime records a breaker failure there), and a retry is never
started once the query's :class:`~repro.resilience.Deadline` cannot
afford the backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError, RetryExhaustedError, retryable

__all__ = ["RetryPolicy", "Retrier"]


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded jittered exponential backoff parameters."""

    max_attempts: int = 3
    base_backoff_ms: float = 50.0
    multiplier: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter: float = 0.5          # backoff scaled by [1-jitter, 1+jitter]
    seed: int = 0

    def backoff_ms(self, key: object, attempt: int) -> float:
        """Backoff charged after failed ``attempt`` (1-based) of ``key``."""
        from repro.util import deterministic_rng

        raw = min(self.max_backoff_ms,
                  self.base_backoff_ms * self.multiplier ** (attempt - 1))
        if self.jitter <= 0:
            return raw
        rng = deterministic_rng((self.seed, "retry", key, attempt))
        scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw * scale

    def schedule(self, key: object) -> tuple[float, ...]:
        """The full backoff schedule for ``key`` — reproducibility probe."""
        return tuple(self.backoff_ms(key, attempt)
                     for attempt in range(1, self.max_attempts))


class Retrier:
    """Run callables under a :class:`RetryPolicy` against the sim clock."""

    def __init__(self, clock, policy: RetryPolicy | None = None,
                 events=None, metrics=None) -> None:
        self.clock = clock
        self.policy = policy or RetryPolicy()
        self.events = events
        self.metrics = metrics

    def _emit(self, kind: str, **fields) -> None:
        if self.events is not None and self.events.enabled:
            self.events.emit(kind, **fields)

    def _count(self, name: str, **labels) -> None:
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.counter(name, **labels).inc()

    def call(self, fn: Callable[[], object], key: object,
             deadline=None,
             classify: Callable[[BaseException], bool] = retryable,
             on_error: Callable[[BaseException, int], None] | None = None):
        """Invoke ``fn``, retrying retryable :class:`ReproError` failures.

        Raises the original error when it is not retryable, and
        :class:`RetryExhaustedError` (carrying the attempt count and last
        cause) when attempts or the deadline run out.
        """
        policy = self.policy
        attempt = 1
        while True:
            try:
                return fn()
            except ReproError as exc:
                if on_error is not None:
                    on_error(exc, attempt)
                if not classify(exc):
                    raise
                if attempt >= policy.max_attempts:
                    self._emit("retry.exhausted", key=str(key),
                               attempts=attempt, error=str(exc))
                    self._count("retry_exhausted_total")
                    raise RetryExhaustedError(attempt, exc) from exc
                backoff = policy.backoff_ms(key, attempt)
                if deadline is not None \
                        and deadline.remaining_ms() <= backoff:
                    self._emit("retry.deadline_abort", key=str(key),
                               attempts=attempt, backoff_ms=backoff)
                    self._count("retry_exhausted_total")
                    raise RetryExhaustedError(attempt, exc) from exc
                self._emit("retry.backoff", key=str(key), attempt=attempt,
                           backoff_ms=backoff, error=str(exc))
                self._count("retries_total")
                self.clock.advance(backoff)
                attempt += 1
