"""Hedged replica reads.

When a replica read comes back slower than a latency quantile learned
from the observed attempt-latency distribution, the replica group fires a
backup attempt on the next healthy replica ("hedging", per the
tail-at-scale playbook).  The group then serves whichever attempt would
have finished first: the hedge *wins* when ``threshold + backup latency``
beats the primary's latency, otherwise it *loses* and the primary result
stands.

All latencies here are simulated (injected spikes consumed from the
replica's fault queue), so hedge decisions replay deterministically.
Until the histogram has ``min_observations`` samples the policy falls
back to a fixed threshold; the floor of ``min_threshold_ms`` keeps the
zero-latency clean path from ever hedging.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HedgePolicy"]


@dataclass(frozen=True)
class HedgePolicy:
    """When to launch a backup replica read."""

    latency_quantile: float = 0.95
    min_observations: int = 16
    min_threshold_ms: float = 1.0
    fallback_threshold_ms: float = 50.0

    def threshold_ms(self, histogram) -> float:
        """Hedge once an attempt exceeds this many simulated ms."""
        if histogram is None or histogram.count < self.min_observations:
            return self.fallback_threshold_ms
        quantile = histogram.quantile(self.latency_quantile)
        if quantile is None:
            return self.fallback_threshold_ms
        return max(quantile, self.min_threshold_ms)
