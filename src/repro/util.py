"""Small shared utilities: identifiers, deterministic RNG, simulated clock.

The reproduction is fully deterministic: anything random derives from an
explicit seed, and anything time-dependent runs against :class:`SimClock`
rather than the wall clock, so benchmarks and tests replay identically.
"""

from __future__ import annotations

import hashlib
import itertools
import random
import re
import string
import threading
from dataclasses import dataclass, field

__all__ = [
    "IdGenerator",
    "SimClock",
    "deterministic_rng",
    "slugify",
    "stable_hash",
    "chunked",
]

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str) -> str:
    """Lowercase ``text`` and collapse non-alphanumerics to single dashes.

    >>> slugify("GamerQueen's  Video Games!")
    'gamerqueen-s-video-games'
    """
    slug = _SLUG_RE.sub("-", text.lower()).strip("-")
    return slug or "item"


def stable_hash(*parts: object) -> int:
    """A process-independent 63-bit hash of ``parts``.

    Python's builtin ``hash`` is salted per process; benchmarks need ids and
    tie-breaks that replay across runs, so we hash through blake2b instead.
    """
    payload = "\x1f".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


def deterministic_rng(seed: object) -> random.Random:
    """Return a ``random.Random`` seeded stably from any printable value."""
    return random.Random(stable_hash("rng", seed))


def chunked(items, size):
    """Yield successive lists of up to ``size`` elements from ``items``.

    >>> list(chunked([1, 2, 3, 4, 5], 2))
    [[1, 2], [3, 4], [5]]
    """
    if size <= 0:
        raise ValueError("chunk size must be positive")
    batch = []
    for item in items:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


@dataclass
class IdGenerator:
    """Generates readable, unique identifiers like ``app-000042``.

    A shared generator per platform instance keeps ids short and stable;
    the optional ``seed`` only randomizes the suffix alphabet used for
    token-like ids.
    """

    seed: object = 0
    _counters: dict = field(default_factory=dict)

    def next_id(self, prefix: str) -> str:
        if prefix not in self._counters:
            self._counters[prefix] = itertools.count(1)
        value = next(self._counters[prefix])
        return f"{prefix}-{value:06d}"

    def token(self, prefix: str, length: int = 24) -> str:
        """An opaque token (access keys, embed keys) that is still seeded."""
        serial = self.next_id(f"_token_{prefix}")
        rng = deterministic_rng((self.seed, serial))
        alphabet = string.ascii_lowercase + string.digits
        body = "".join(rng.choice(alphabet) for _ in range(length))
        return f"{prefix}_{body}"


class SimClock:
    """A monotonically advancing simulated clock, in milliseconds.

    Subsystems charge simulated latency to the clock (``advance``) and read
    timestamps from it (``now_ms``). Tests can therefore make assertions
    about latency accounting without sleeping.
    """

    def __init__(self, start_ms: int = 1_262_304_000_000) -> None:
        # Default epoch: 2010-01-01T00:00:00Z, the paper's era.
        self._now_ms = int(start_ms)
        # Scatter-gather workers and concurrent app queries may share
        # one clock; advancing must not lose increments.
        self._lock = threading.Lock()

    @property
    def now_ms(self) -> int:
        return self._now_ms

    def advance(self, delta_ms: float) -> int:
        if delta_ms < 0:
            raise ValueError("cannot move the clock backwards")
        with self._lock:
            self._now_ms += int(round(delta_ms))
            return self._now_ms

    def timestamp(self) -> float:
        """Seconds since the UNIX epoch, for interoperability."""
        return self._now_ms / 1000.0
