"""repro.durability — WAL, checkpoint/restore, and catch-up repair.

Crash-faithful durability for the clustered engine: every mutation is
appended to a per-shard write-ahead log before it is applied, shard
checkpoints bound how much log a repair must replay, and a recovery
manager brings a crashed replica back — restore + idempotent replay +
digest verification against a healthy peer — before it may serve reads
again. See ``docs/API.md`` for the walkthrough.
"""

from repro.durability.checkpoint import (
    Checkpoint,
    CheckpointStore,
    content_digest,
    restore_checkpoint,
    take_checkpoint,
)
from repro.durability.manager import (
    NULL_DURABILITY,
    DurabilityConfig,
    DurabilityManager,
)
from repro.durability.repair import RecoveryManager, RecoveryReport
from repro.durability.wal import (
    BlobWalStorage,
    MemoryWalStorage,
    WalRecord,
    WriteAheadLog,
    replay,
)

__all__ = [
    "WalRecord",
    "MemoryWalStorage",
    "BlobWalStorage",
    "WriteAheadLog",
    "replay",
    "Checkpoint",
    "CheckpointStore",
    "take_checkpoint",
    "restore_checkpoint",
    "content_digest",
    "RecoveryManager",
    "RecoveryReport",
    "DurabilityConfig",
    "DurabilityManager",
    "NULL_DURABILITY",
]
