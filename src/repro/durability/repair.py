"""Catch-up repair: bring a crashed replica back into rotation.

The :class:`RecoveryManager` drives the full repair of one crashed
replica:

1. **restore** — load the shard's newest checkpoint (or start empty for
   a shard that never checkpointed, e.g. one born mid-split);
2. **replay** — apply the WAL tail past the checkpoint's LSN, looping
   until the replica's ``applied_lsn`` reaches the shard log's head
   (replay is idempotent, see :func:`repro.durability.wal.replay`);
3. **verify** — compare the replica's per-vertical content digest with
   a healthy peer's; a mismatch keeps the replica out of rotation and
   raises :class:`~repro.errors.DurabilityError`;
4. **rejoin** — only now does the replica re-enter read rotation (the
   group also resets its failure streak and hedge-latency learning).

Throughout recovery the replica stays ``crashed`` and unhealthy: the
read path never serves from it, and writes broadcast meanwhile are
picked up by the replay loop. Recovery cost is charged to SimClock —
a base plus per-document restore and per-record replay costs — which is
what experiment X14 measures against the WAL backlog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.durability.checkpoint import (
    content_digest,
    restore_checkpoint,
)
from repro.durability.wal import replay
from repro.errors import DurabilityError
from repro.telemetry import Telemetry
from repro.util import SimClock

__all__ = ["RecoveryReport", "RecoveryManager",
           "RECOVERY_BASE_MS", "RESTORE_PER_DOC_US",
           "REPLAY_PER_RECORD_US"]

# Simulated repair cost model: fixed coordination overhead, plus a
# per-document checkpoint-load cost and a per-record replay cost — so
# catch-up time is linear in the WAL backlog at a fixed checkpoint.
RECOVERY_BASE_MS = 8.0
RESTORE_PER_DOC_US = 50.0
REPLAY_PER_RECORD_US = 200.0


@dataclass
class RecoveryReport:
    """What one repair did, and whether it provably converged."""

    shard_id: int
    replica_id: str
    lag_records: int = 0            # WAL head - applied LSN at start
    checkpoint_lsn: int = 0
    docs_restored: int = 0
    records_replayed: int = 0
    writes_missed: int = 0          # broadcasts skipped while crashed
    digest: dict = field(default_factory=dict)
    digest_match: bool | None = None   # None: no healthy peer to check
    catch_up_ms: float = 0.0        # simulated repair duration
    converged: bool = False

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "replica_id": self.replica_id,
            "lag_records": self.lag_records,
            "checkpoint_lsn": self.checkpoint_lsn,
            "docs_restored": self.docs_restored,
            "records_replayed": self.records_replayed,
            "writes_missed": self.writes_missed,
            "digest_match": self.digest_match,
            "catch_up_ms": round(self.catch_up_ms, 3),
            "converged": self.converged,
        }


class RecoveryManager:
    """Repairs crashed replicas from checkpoint + WAL replay."""

    def __init__(self, engine, wal, checkpoints,
                 clock: SimClock | None = None,
                 telemetry: Telemetry | None = None,
                 verify: bool = True) -> None:
        self.engine = engine
        self.wal = wal
        self.checkpoints = checkpoints
        self.clock = clock or SimClock()
        self.telemetry = telemetry or Telemetry.disabled()
        self.verify = verify

    def _emit(self, kind: str, **fields) -> None:
        self.telemetry.events.emit(kind, **fields)

    def recover(self, shard_id: int,
                replica_index: int) -> RecoveryReport:
        """Fully repair one crashed replica; returns the report.

        Raises :class:`DurabilityError` when the replica has not
        crashed (nothing to repair) or when, after replay, its content
        digest disagrees with a healthy peer — in which case it stays
        out of rotation.
        """
        group = self.engine.groups[shard_id]
        replica = group.replicas[replica_index]
        if not replica.crashed:
            raise DurabilityError(
                f"{replica.replica_id} has not crashed; "
                f"nothing to recover"
            )
        replica.begin_recovery()
        report = RecoveryReport(
            shard_id=shard_id,
            replica_id=replica.replica_id,
            lag_records=self.wal.last_lsn(shard_id),
            writes_missed=replica.writes_missed,
        )
        self._emit("recovery.started", shard=shard_id,
                   replica=replica.replica_id,
                   wal_head=self.wal.last_lsn(shard_id),
                   writes_missed=replica.writes_missed)

        checkpoint = self.checkpoints.latest(shard_id)
        if checkpoint is not None:
            report.checkpoint_lsn = checkpoint.applied_lsn
            report.docs_restored = restore_checkpoint(replica,
                                                      checkpoint)
        report.lag_records = max(
            0, self.wal.last_lsn(shard_id) - replica.applied_lsn
        )
        # Replay until the replica reaches the log head; a concurrent
        # write that lands mid-replay just extends the tail one loop.
        while replica.applied_lsn < self.wal.last_lsn(shard_id):
            report.records_replayed += replay(
                self.wal.tail(shard_id, after_lsn=replica.applied_lsn),
                replica,
            )
        report.catch_up_ms = (
            RECOVERY_BASE_MS
            + report.docs_restored * RESTORE_PER_DOC_US / 1000.0
            + report.records_replayed * REPLAY_PER_RECORD_US / 1000.0
        )
        self.clock.advance(report.catch_up_ms)
        self._emit("recovery.replayed", shard=shard_id,
                   replica=replica.replica_id,
                   checkpoint_lsn=report.checkpoint_lsn,
                   docs_restored=report.docs_restored,
                   records=report.records_replayed,
                   applied_lsn=replica.applied_lsn)

        report.digest = content_digest(replica)
        if self.verify:
            report.digest_match = self._verify(group, replica, report)
        replica.writes_missed = 0
        replica.rejoin()
        group.revive(replica_index)   # failure streak + hedge learning
        report.converged = True
        metrics = self.telemetry.metrics
        metrics.counter("durability_recoveries_total").inc()
        metrics.histogram("recovery_catch_up_ms").observe(
            report.catch_up_ms)
        metrics.histogram("recovery_replayed_records").observe(
            report.records_replayed)
        self._emit("recovery.completed", shard=shard_id,
                   replica=replica.replica_id,
                   records=report.records_replayed,
                   catch_up_ms=round(report.catch_up_ms, 3),
                   digest_match=report.digest_match)
        return report

    def _verify(self, group, replica, report: RecoveryReport) -> bool | None:
        """Digest-compare against a healthy peer; ``None`` if no peer."""
        peer = next(
            (candidate for candidate in group.replicas
             if candidate is not replica and candidate.healthy
             and not candidate.crashed),
            None,
        )
        if peer is None:
            # Single-replica shard (or every peer down): convergence is
            # asserted structurally — the replica reached the log head.
            return None
        if content_digest(peer) != report.digest:
            self._emit("recovery.diverged", shard=group.shard_id,
                       replica=replica.replica_id,
                       peer=peer.replica_id)
            self.telemetry.metrics.counter(
                "durability_recovery_divergence_total").inc()
            raise DurabilityError(
                f"{replica.replica_id} diverged from peer "
                f"{peer.replica_id} after replay; kept out of rotation"
            )
        return True
