"""The durability subsystem's front door.

:class:`DurabilityManager` ties the pieces together for one clustered
engine: it owns the per-shard :class:`~repro.durability.wal.WriteAheadLog`,
the :class:`~repro.durability.checkpoint.CheckpointStore`, and a
:class:`~repro.durability.repair.RecoveryManager`, and installs itself
as ``engine.durability`` so every mutation flowing through
``ClusteredSearchEngine.replicated_write`` is logged *before* it is
applied.

Attachment takes a **baseline checkpoint of every shard**: the initial
corpus is bulk-indexed before durability exists (it never hits the
WAL), so the baseline snapshot is what anchors recovery — restore =
baseline (or any newer checkpoint) + the WAL tail past its LSN.

The platform default is :data:`NULL_DURABILITY`, a null object that
keeps the write hot path free of logging work; pass
``Symphony(cluster=..., durability=True)`` (or a
:class:`DurabilityConfig`) to opt in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.durability.checkpoint import CheckpointStore, take_checkpoint
from repro.durability.repair import RecoveryManager, RecoveryReport
from repro.durability.wal import (
    BlobWalStorage,
    MemoryWalStorage,
    WalRecord,
    WriteAheadLog,
)
from repro.errors import ConfigurationError
from repro.telemetry import Telemetry
from repro.util import SimClock

__all__ = ["DurabilityConfig", "DurabilityManager", "NULL_DURABILITY"]


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning for :class:`DurabilityManager`.

    ``storage`` selects the WAL backend: ``"memory"`` (default),
    ``"blob"`` (JSON records in a fresh BlobStore), or a ready storage
    object implementing append/records/last_lsn/record_count/truncate.
    ``checkpoint_every`` is the auto-checkpoint cadence in WAL records
    per shard (0 disables automatic checkpoints — recovery then replays
    from the attach-time baseline). ``verify_on_recovery`` controls the
    post-replay digest comparison against a healthy peer.
    """

    storage: object = "memory"
    checkpoint_every: int = 64
    verify_on_recovery: bool = True

    def build_storage(self):
        if self.storage == "memory":
            return MemoryWalStorage()
        if self.storage == "blob":
            return BlobWalStorage()
        if isinstance(self.storage, str):
            raise ConfigurationError(
                f"unknown WAL storage {self.storage!r}; "
                f"expected 'memory', 'blob', or a storage object"
            )
        return self.storage


class DurabilityManager:
    """WAL + checkpoints + repair for one clustered engine."""

    enabled = True

    def __init__(self, engine, config: DurabilityConfig | None = None,
                 clock: SimClock | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.engine = engine
        self.config = config or DurabilityConfig()
        self.clock = clock or getattr(engine, "clock", None) or SimClock()
        self.telemetry = telemetry or Telemetry.disabled()
        self.wal = WriteAheadLog(storage=self.config.build_storage(),
                                 clock=self.clock)
        self.checkpoints = CheckpointStore()
        self.recovery = RecoveryManager(
            engine, self.wal, self.checkpoints,
            clock=self.clock, telemetry=self.telemetry,
            verify=self.config.verify_on_recovery,
        )
        self._since_checkpoint: dict[int, int] = {}
        engine.durability = self
        # The initial corpus is bulk-indexed before durability attaches
        # and never hits the WAL — baseline checkpoints anchor recovery.
        for group in engine.groups:
            self.checkpoint_shard(group.shard_id)
        self.telemetry.metrics.gauge(
            "durability_recovery_lag_records", fn=self._max_lag
        )

    # -- write path (called by ClusteredSearchEngine.replicated_write) ------

    def append(self, shard_id: int, op: str, vertical,
               document=None, doc_id: str | None = None) -> WalRecord:
        record = self.wal.append(shard_id, op, vertical,
                                 document=document, doc_id=doc_id)
        self.telemetry.metrics.counter(
            "wal_appends_total", shard=str(shard_id)).inc()
        return record

    def after_write(self, shard_id: int) -> None:
        """Post-apply hook: advances the auto-checkpoint cadence."""
        every = self.config.checkpoint_every
        if every <= 0:
            return
        count = self._since_checkpoint.get(shard_id, 0) + 1
        if count >= every:
            self.checkpoint_shard(shard_id)
        else:
            self._since_checkpoint[shard_id] = count

    # -- checkpoints --------------------------------------------------------

    def checkpoint_shard(self, shard_id: int):
        """Snapshot the shard from its first intact replica."""
        group = self.engine.groups[shard_id]
        donor = group.primary()
        if donor.crashed:
            raise ConfigurationError(
                f"shard {shard_id} has no intact replica to checkpoint"
            )
        checkpoint = take_checkpoint(donor, clock=self.clock)
        self.checkpoints.put(checkpoint)
        self._since_checkpoint[shard_id] = 0
        self.telemetry.metrics.counter(
            "durability_checkpoints_total", shard=str(shard_id)).inc()
        self.telemetry.events.emit(
            "checkpoint.taken", shard=shard_id,
            applied_lsn=checkpoint.applied_lsn,
            docs=checkpoint.doc_count,
        )
        return checkpoint

    # -- crash & repair -----------------------------------------------------

    def crash_replica(self, shard_id: int, replica_index: int) -> None:
        """Crash-faithfully lose one replica (index state wiped)."""
        replica = self.engine.groups[shard_id].replicas[replica_index]
        replica.crash()
        self.telemetry.metrics.counter(
            "durability_crashes_total", shard=str(shard_id)).inc()
        self.telemetry.events.emit(
            "replica.crashed", shard=shard_id,
            replica=replica.replica_id,
            wal_head=self.wal.last_lsn(shard_id),
        )

    def recover_replica(self, shard_id: int,
                        replica_index: int) -> RecoveryReport:
        return self.recovery.recover(shard_id, replica_index)

    # -- introspection ------------------------------------------------------

    def _max_lag(self) -> int:
        """Largest WAL tail any replica is behind (the gauge's value)."""
        worst = 0
        for group in self.engine.groups:
            head = self.wal.last_lsn(group.shard_id)
            for replica in group.replicas:
                worst = max(worst, head - replica.applied_lsn)
        return worst

    def status(self) -> dict:
        """Per-shard WAL/checkpoint/replica durability state."""
        shards = {}
        for group in self.engine.groups:
            shard_id = group.shard_id
            checkpoint = self.checkpoints.latest(shard_id)
            shards[shard_id] = {
                "wal_head": self.wal.last_lsn(shard_id),
                "wal_records": self.wal.record_count(shard_id),
                "checkpoint_lsn": (checkpoint.applied_lsn
                                   if checkpoint else None),
                "checkpoint_docs": (checkpoint.doc_count
                                    if checkpoint else 0),
                "replicas": [
                    {
                        "replica_id": replica.replica_id,
                        "healthy": replica.healthy,
                        "crashed": replica.crashed,
                        "recovering": replica.recovering,
                        "applied_lsn": replica.applied_lsn,
                        "writes_missed": replica.writes_missed,
                    }
                    for replica in group.replicas
                ],
            }
        return {"max_lag_records": self._max_lag(), "shards": shards}


class _NullDurability:
    """Disabled durability: the engine logs nothing, recovery is an
    explicit configuration error rather than a silent no-op."""

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<durability disabled>"

    def _refuse(self, *args, **kwargs):
        raise ConfigurationError(
            "durability is not enabled; construct "
            "Symphony(cluster=..., durability=True)"
        )

    append = after_write = checkpoint_shard = _refuse
    crash_replica = recover_replica = _refuse

    def status(self) -> dict:
        return {"enabled": False}


NULL_DURABILITY = _NullDurability()
