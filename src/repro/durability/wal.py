"""Per-shard write-ahead log: every cluster mutation, durably ordered.

Each shard of a :class:`~repro.cluster.engine.ClusteredSearchEngine`
owns one log. A mutation (add/remove — including resharding dual-writes
and handoff batches) is appended as a :class:`WalRecord` carrying a
per-shard **monotonic LSN** and a SimClock timestamp *before* it is
applied to any replica; replicas stamp the LSN as they apply, so the
gap between a replica's ``applied_lsn`` and the shard's ``last_lsn`` is
exactly the log tail it missed.

Two storage backends, pluggable via :class:`DurabilityConfig`:

* :class:`MemoryWalStorage` — records kept as live objects (document
  payloads survive by reference); the default.
* :class:`BlobWalStorage` — records JSON-encoded into a
  :class:`~repro.storage.blobs.BlobStore` under ``wal/shard-N/<lsn>``
  keys, proving the log round-trips through byte storage. Opaque
  document payloads do not serialize; restored documents carry their
  fields (which is all query materialization reads).

:func:`replay` applies a log tail to a replica **idempotently**: records
at or below the replica's ``applied_lsn`` are skipped, adds upsert, and
removes tolerate absence — so double-delivery after a crash (replay a
prefix, crash again, replay the whole tail) converges to the same state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.searchengine.documents import FieldedDocument
from repro.util import SimClock

__all__ = [
    "WalRecord",
    "MemoryWalStorage",
    "BlobWalStorage",
    "WriteAheadLog",
    "replay",
]


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation of one shard."""

    lsn: int                    # per-shard, monotonic from 1
    at_ms: int                  # SimClock stamp at append time
    shard_id: int
    op: str                     # "add" | "remove"
    vertical: str
    doc_id: str
    fields: dict | None = None  # document fields (add only)
    payload: object = None      # opaque original (memory storage only)

    def to_dict(self) -> dict:
        """JSON-representable form; the opaque payload is dropped."""
        data = {
            "lsn": self.lsn,
            "at_ms": self.at_ms,
            "shard_id": self.shard_id,
            "op": self.op,
            "vertical": self.vertical,
            "doc_id": self.doc_id,
        }
        if self.fields is not None:
            data["fields"] = self.fields
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WalRecord":
        return cls(
            lsn=int(data["lsn"]),
            at_ms=int(data["at_ms"]),
            shard_id=int(data["shard_id"]),
            op=str(data["op"]),
            vertical=str(data["vertical"]),
            doc_id=str(data["doc_id"]),
            fields=data.get("fields"),
        )

    def document(self) -> FieldedDocument:
        """Rebuild the indexable document this record carries."""
        return FieldedDocument(self.doc_id, dict(self.fields or {}),
                               self.payload)


class MemoryWalStorage:
    """Per-shard record lists kept in process memory."""

    def __init__(self) -> None:
        self._records: dict[int, list[WalRecord]] = {}

    def append(self, record: WalRecord) -> None:
        self._records.setdefault(record.shard_id, []).append(record)

    def records(self, shard_id: int, after_lsn: int = 0) -> list:
        return [record
                for record in self._records.get(shard_id, [])
                if record.lsn > after_lsn]

    def last_lsn(self, shard_id: int) -> int:
        records = self._records.get(shard_id)
        return records[-1].lsn if records else 0

    def record_count(self, shard_id: int) -> int:
        return len(self._records.get(shard_id, []))

    def truncate(self, shard_id: int, up_to_lsn: int) -> int:
        """Drop records with ``lsn <= up_to_lsn``; returns the count.

        Called after a checkpoint covers a prefix of the log — recovery
        only ever needs the tail past the newest checkpoint.
        """
        records = self._records.get(shard_id, [])
        kept = [record for record in records if record.lsn > up_to_lsn]
        self._records[shard_id] = kept
        return len(records) - len(kept)


class BlobWalStorage:
    """Records JSON-encoded into a :class:`BlobStore`, one blob each.

    Keys sort lexicographically by LSN (zero-padded), so the log reads
    back in append order straight off ``BlobStore.keys()``.
    """

    def __init__(self, blobs=None) -> None:
        from repro.storage.blobs import BlobStore
        self.blobs = blobs if blobs is not None else BlobStore()
        self._last_lsn: dict[int, int] = {}

    @staticmethod
    def _key(shard_id: int, lsn: int) -> str:
        return f"wal/shard-{shard_id}/{lsn:012d}"

    def _prefix(self, shard_id: int) -> str:
        return f"wal/shard-{shard_id}/"

    def append(self, record: WalRecord) -> None:
        payload = json.dumps(record.to_dict(), sort_keys=True)
        self.blobs.put(self._key(record.shard_id, record.lsn),
                       payload.encode("utf-8"),
                       content_type="application/json",
                       created_ms=record.at_ms)
        self._last_lsn[record.shard_id] = max(
            self._last_lsn.get(record.shard_id, 0), record.lsn
        )

    def _shard_keys(self, shard_id: int) -> list:
        prefix = self._prefix(shard_id)
        return [key for key in self.blobs.keys()
                if key.startswith(prefix)]

    def records(self, shard_id: int, after_lsn: int = 0) -> list:
        records = []
        for key in self._shard_keys(shard_id):
            record = WalRecord.from_dict(
                json.loads(self.blobs.get(key).data.decode("utf-8"))
            )
            if record.lsn > after_lsn:
                records.append(record)
        return records

    def last_lsn(self, shard_id: int) -> int:
        return self._last_lsn.get(shard_id, 0)

    def record_count(self, shard_id: int) -> int:
        return len(self._shard_keys(shard_id))

    def truncate(self, shard_id: int, up_to_lsn: int) -> int:
        dropped = 0
        for key in self._shard_keys(shard_id):
            lsn = int(key.rsplit("/", 1)[1])
            if lsn <= up_to_lsn:
                self.blobs.delete(key)
                dropped += 1
        return dropped


class WriteAheadLog:
    """All shard logs behind one facade, with LSN allocation.

    LSNs are allocated per shard, monotonically from 1, at append time;
    the record is stamped with the SimClock's current instant. Shards
    appear lazily — a split's new shard gets a fresh log on its first
    write.
    """

    def __init__(self, storage=None,
                 clock: SimClock | None = None) -> None:
        self.storage = storage if storage is not None \
            else MemoryWalStorage()
        self.clock = clock or SimClock()
        self._next_lsn: dict[int, int] = {}

    def append(self, shard_id: int, op: str, vertical,
               document=None, doc_id: str | None = None) -> WalRecord:
        """Log one mutation; returns the stamped record."""
        if op not in ("add", "remove"):
            raise ValueError(f"unknown WAL op {op!r}")
        lsn = self._next_lsn.get(
            shard_id, self.storage.last_lsn(shard_id) + 1
        )
        self._next_lsn[shard_id] = lsn + 1
        vertical_value = getattr(vertical, "value", str(vertical))
        if op == "add":
            record = WalRecord(
                lsn=lsn, at_ms=self.clock.now_ms, shard_id=shard_id,
                op=op, vertical=vertical_value,
                doc_id=document.doc_id,
                fields=dict(document.fields),
                payload=document.payload,
            )
        else:
            record = WalRecord(
                lsn=lsn, at_ms=self.clock.now_ms, shard_id=shard_id,
                op=op, vertical=vertical_value, doc_id=doc_id,
            )
        self.storage.append(record)
        return record

    def tail(self, shard_id: int, after_lsn: int = 0) -> list:
        return self.storage.records(shard_id, after_lsn=after_lsn)

    def last_lsn(self, shard_id: int) -> int:
        return max(self.storage.last_lsn(shard_id),
                   self._next_lsn.get(shard_id, 1) - 1)

    def record_count(self, shard_id: int) -> int:
        return self.storage.record_count(shard_id)

    def truncate(self, shard_id: int, up_to_lsn: int) -> int:
        return self.storage.truncate(shard_id, up_to_lsn)


def replay(records, replica) -> int:
    """Apply a WAL tail to ``replica`` idempotently; returns applied
    count.

    Skips records at or below the replica's ``applied_lsn``, upserts on
    add, and tolerates absence on remove, so replaying overlapping tails
    (or the same tail twice) converges to the same index state.
    """
    applied = 0
    for record in sorted(records, key=lambda r: r.lsn):
        if record.lsn <= replica.applied_lsn:
            continue
        index = replica.vertical(record.vertical).index
        if record.op == "add":
            index.upsert(record.document())
        elif record.doc_id in index:
            index.remove(record.doc_id)
        replica.applied_lsn = record.lsn
        applied += 1
    return applied
