"""Shard checkpoints: index snapshots that bound WAL replay.

A :class:`Checkpoint` captures one shard's full per-vertical document
set as of an applied LSN, taken from any intact replica (all intact
replicas of a shard are write-identical — they apply the same broadcast
stream). Restoring a crashed replica is then *load snapshot + replay
the WAL tail past the snapshot's LSN*, so the work a recovery performs
is bounded by the checkpoint cadence, not the shard's lifetime write
count.

:func:`content_digest` produces the per-vertical digest the repair path
uses to prove convergence: a sha256 over the sorted document ids and
their canonical-JSON fields, computed over the *live* replicas at
recovery time (never on the checkpoint hot path — digesting a shard is
O(corpus) JSON work). Opaque payloads are excluded — they are not part
of the indexed state and (by design) do not round-trip through
byte-backed storage.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.searchengine.documents import FieldedDocument
from repro.util import SimClock

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "take_checkpoint",
    "restore_checkpoint",
    "content_digest",
]


def _canonical_fields(fields: dict) -> str:
    return json.dumps(fields, sort_keys=True, default=str)


@dataclass(frozen=True)
class Checkpoint:
    """One shard's index state at one applied LSN."""

    shard_id: int
    applied_lsn: int
    taken_at_ms: int
    # vertical value -> tuple of FieldedDocument, sorted by doc_id.
    documents: dict = field(default_factory=dict)

    @property
    def doc_count(self) -> int:
        return sum(len(docs) for docs in self.documents.values())


class CheckpointStore:
    """Latest checkpoint per shard (older ones are superseded)."""

    def __init__(self) -> None:
        self._latest: dict[int, Checkpoint] = {}

    def put(self, checkpoint: Checkpoint) -> None:
        self._latest[checkpoint.shard_id] = checkpoint

    def latest(self, shard_id: int) -> Checkpoint | None:
        return self._latest.get(shard_id)

    def shard_ids(self) -> list:
        return sorted(self._latest)


def take_checkpoint(replica, clock: SimClock | None = None) -> Checkpoint:
    """Snapshot ``replica``'s per-vertical state at its applied LSN.

    Documents are copied shallowly (id, fields, payload reference) —
    the snapshot must not alias live index structures, since the donor
    keeps mutating after the checkpoint is taken. No digest is computed
    here: snapshots sit on the auto-checkpoint hot path, and the repair
    path digests the *live* replicas at recovery time anyway.
    """
    documents: dict = {}
    for vertical, vindex in sorted(replica.verticals.items(),
                                   key=lambda kv: kv[0].value):
        docs = []
        for doc_id in sorted(vindex.index.all_doc_ids()):
            doc = vindex.index.document(doc_id)
            docs.append(FieldedDocument(doc.doc_id, dict(doc.fields),
                                        doc.payload))
        documents[vertical.value] = tuple(docs)
    return Checkpoint(
        shard_id=replica.shard_id,
        applied_lsn=replica.applied_lsn,
        taken_at_ms=clock.now_ms if clock is not None else 0,
        documents=documents,
    )


def restore_checkpoint(replica, checkpoint: Checkpoint) -> int:
    """Load ``checkpoint`` into a wiped replica; returns docs loaded.

    The replica's indexes must be empty (a crash wipes them); loading
    upserts anyway so a re-restore after an interrupted recovery is
    harmless. The replica's ``applied_lsn`` jumps to the snapshot's.
    """
    loaded = 0
    for vertical_value, docs in checkpoint.documents.items():
        index = replica.vertical(vertical_value).index
        for doc in docs:
            index.upsert(doc)
            loaded += 1
    replica.applied_lsn = checkpoint.applied_lsn
    return loaded


def content_digest(replica) -> dict:
    """Per-vertical sha256 of ``replica``'s indexed content.

    Deterministic across replicas and restores: documents are folded in
    sorted id order with canonical-JSON fields. Two replicas of one
    shard agree on every digest iff they hold identical indexed state.
    """
    digests: dict = {}
    for vertical, vindex in sorted(replica.verticals.items(),
                                   key=lambda kv: kv[0].value):
        hasher = hashlib.sha256()
        for doc_id in sorted(vindex.index.all_doc_ids()):
            doc = vindex.index.document(doc_id)
            hasher.update(doc_id.encode("utf-8"))
            hasher.update(b"\x1f")
            hasher.update(_canonical_fields(doc.fields).encode("utf-8"))
            hasher.update(b"\x1e")
        digests[vertical.value] = hasher.hexdigest()
    return digests
