"""``repro.slo`` — the judgment layer over telemetry.

PR 2 made the platform *emit* telemetry; this package makes it *judge*
what it emitted, the way an operated service must:

* :class:`~repro.slo.objectives.SLODefinition` /
  :class:`~repro.slo.objectives.ErrorBudget` — per-tenant and
  platform-wide objectives over latency, availability, and result
  completeness, tracked as rolling error budgets on simulated time;
* :class:`~repro.slo.burnrate.BurnRateAlerter` — multi-window
  (fast ~5m + slow ~1h) burn-rate alerting, edge-triggered
  ``slo.burn`` / ``slo.burn_cleared`` events, fully deterministic;
* :class:`~repro.slo.recorder.FlightRecorder` — a bounded ring that
  retains full span trees + correlated events only for anomalous
  queries (errored, degraded, slowest-tail, SLO-breaching);
* :func:`~repro.slo.explain.explain_spans` — per-query latency
  attribution across queue wait, pipeline stages, sources, shard and
  replica fan-out, services, and federation backends.

Construct ``Symphony(slo=True)`` (or pass an
:class:`~repro.slo.objectives.SLOConfig`) to wire the engine into the
runtime and autoscaler; the default is :data:`NULL_SLO`, which keeps
the unjudged hot path allocation-free.
"""

from __future__ import annotations

from repro.slo.burnrate import BurnRateAlerter
from repro.slo.engine import NULL_SLO, NullSLOEngine, SLOEngine
from repro.slo.explain import Attribution, explain_spans
from repro.slo.objectives import ErrorBudget, SLOConfig, SLODefinition
from repro.slo.recorder import FlightRecord, FlightRecorder

__all__ = [
    "SLODefinition",
    "SLOConfig",
    "ErrorBudget",
    "BurnRateAlerter",
    "FlightRecord",
    "FlightRecorder",
    "Attribution",
    "explain_spans",
    "SLOEngine",
    "NullSLOEngine",
    "NULL_SLO",
]
