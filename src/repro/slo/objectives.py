"""SLO definitions and rolling error budgets.

An :class:`SLODefinition` states an objective over one signal of the
query stream — latency against a threshold, availability (the
non-degraded, non-errored fraction), or result completeness (the
fraction of supplemental/source calls that actually answered). Each
definition applies platform-wide (``tenant=""``) or to one tenant,
where tenants are the gateway's admission principals (app ids).

An :class:`ErrorBudget` tracks the good/bad stream against the
objective over two rolling windows (fast ~5m, slow ~1h of *simulated*
time), the shape multi-window burn-rate alerting needs: the burn rate
is ``bad_fraction / (1 - objective)`` — 1.0 means "spending the budget
exactly as fast as the objective allows", higher means the budget
drains early. Everything is timed off SimClock; identical runs yield
identical budgets and burn rates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["SLODefinition", "SLOConfig", "ErrorBudget"]

_KINDS = ("latency", "availability", "completeness", "freshness")


@dataclass(frozen=True)
class SLODefinition:
    """One objective over the query stream."""

    name: str
    #: latency | availability | completeness | freshness.  The first
    #: three are judged per query by the engine; ``freshness`` budgets
    #: are driven externally by :mod:`repro.contracts` — one
    #: observation per feed per scheduler freshness check.
    kind: str
    objective: float = 0.99         # target good fraction, in (0, 1)
    tenant: str = ""                # "" = platform-wide; else an app id
    #: ``latency`` kind: a query is good when it finishes within this
    #: many simulated ms.
    latency_threshold_ms: float = 400.0
    #: ``completeness`` kind: a query is good when at least this
    #: fraction of its source calls answered.
    completeness_floor: float = 0.75
    fast_window_ms: int = 300_000       # ~5 simulated minutes
    slow_window_ms: int = 3_600_000     # ~1 simulated hour
    #: Burn rate (both windows) at which the alert fires.
    burn_threshold: float = 6.0
    #: Minimum fast-window events before alerting — a single bad query
    #: in an empty window is a 100% bad fraction, not an incident.
    min_events: int = 8

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; expected one of "
                f"{_KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be within (0, 1)")
        if self.fast_window_ms <= 0 \
                or self.slow_window_ms < self.fast_window_ms:
            raise ValueError(
                "need 0 < fast_window_ms <= slow_window_ms"
            )
        if self.burn_threshold <= 0 or self.min_events < 1:
            raise ValueError("burn_threshold must be positive and "
                             "min_events at least 1")

    def matches(self, tenant: str) -> bool:
        return not self.tenant or self.tenant == tenant

    def judge(self, latency_ms: float, degraded: bool, errored: bool,
              completeness: float) -> bool:
        """Is one observed query *good* under this objective?"""
        if errored:
            return False
        if self.kind == "latency":
            return latency_ms <= self.latency_threshold_ms
        if self.kind in ("availability", "freshness"):
            return not degraded
        return completeness >= self.completeness_floor


@dataclass(frozen=True)
class SLOConfig:
    """Construction knobs for :class:`~repro.slo.engine.SLOEngine`.

    The scalar fields shape the three default platform-wide objectives
    (latency, availability, completeness); pass explicit ``slos`` to
    replace them entirely (e.g. to add per-tenant objectives).
    """

    latency_threshold_ms: float = 400.0
    latency_objective: float = 0.99
    availability_objective: float = 0.99
    completeness_floor: float = 0.75
    completeness_objective: float = 0.95
    fast_window_ms: int = 300_000
    slow_window_ms: int = 3_600_000
    burn_threshold: float = 6.0
    min_events: int = 8
    #: Explicit objectives; empty means "build the three defaults".
    slos: tuple = ()
    # -- flight recorder ------------------------------------------------------
    recorder_capacity: int = 256
    #: A query is "slow" (anomalous) when its latency exceeds this
    #: rolling quantile of all observed latencies.
    slow_quantile: float = 0.95
    #: Minimum observations before the slow-tail gate engages.
    slow_min_samples: int = 32
    #: Retain every Nth clean query too (0 disables clean sampling).
    clean_sample_every: int = 0

    @classmethod
    def from_dict(cls, data: dict) -> "SLOConfig":
        data = dict(data)
        slos = data.pop("slos", ())
        config = cls(**data)
        if slos:
            config = SLOConfig(
                **{**data,
                   "slos": tuple(SLODefinition(**s) for s in slos)},
            )
        return config

    def build_slos(self) -> tuple:
        if self.slos:
            return tuple(self.slos)
        window = {"fast_window_ms": self.fast_window_ms,
                  "slow_window_ms": self.slow_window_ms,
                  "burn_threshold": self.burn_threshold,
                  "min_events": self.min_events}
        return (
            SLODefinition(
                name="latency", kind="latency",
                objective=self.latency_objective,
                latency_threshold_ms=self.latency_threshold_ms,
                **window,
            ),
            SLODefinition(
                name="availability", kind="availability",
                objective=self.availability_objective, **window,
            ),
            SLODefinition(
                name="completeness", kind="completeness",
                objective=self.completeness_objective,
                completeness_floor=self.completeness_floor, **window,
            ),
        )


@dataclass
class _Window:
    """One rolling (timestamp, good) window with a running bad count."""

    span_ms: int
    entries: deque = field(default_factory=deque)
    bad: int = 0

    def record(self, now_ms: int, good: bool) -> None:
        self.entries.append((now_ms, good))
        if not good:
            self.bad += 1
        self.prune(now_ms)

    def prune(self, now_ms: int) -> None:
        cutoff = now_ms - self.span_ms
        entries = self.entries
        while entries and entries[0][0] <= cutoff:
            __, good = entries.popleft()
            if not good:
                self.bad -= 1

    @property
    def total(self) -> int:
        return len(self.entries)

    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total else 0.0


class ErrorBudget:
    """Fast + slow rolling windows for one SLO, plus the burn math."""

    __slots__ = ("slo", "fast", "slow", "seen", "bad_total")

    def __init__(self, slo: SLODefinition) -> None:
        self.slo = slo
        self.fast = _Window(slo.fast_window_ms)
        self.slow = _Window(slo.slow_window_ms)
        self.seen = 0
        self.bad_total = 0

    def record(self, now_ms: int, good: bool) -> None:
        self.seen += 1
        if not good:
            self.bad_total += 1
        self.fast.record(now_ms, good)
        self.slow.record(now_ms, good)

    def burn_rates(self, now_ms: int) -> tuple[float, float]:
        """(fast, slow) burn rates: bad fraction over budget fraction."""
        self.fast.prune(now_ms)
        self.slow.prune(now_ms)
        allowed = 1.0 - self.slo.objective
        return (self.fast.bad_fraction() / allowed,
                self.slow.bad_fraction() / allowed)

    def status(self, now_ms: int) -> dict:
        """Budget snapshot over the slow window (the budget period)."""
        fast_burn, slow_burn = self.burn_rates(now_ms)
        allowed = 1.0 - self.slo.objective
        consumed = (self.slow.bad_fraction() / allowed
                    if self.slow.total else 0.0)
        return {
            "slo": self.slo.name,
            "tenant": self.slo.tenant,
            "objective": self.slo.objective,
            "events": self.slow.total,
            "bad": self.slow.bad,
            "fast_burn": round(fast_burn, 4),
            "slow_burn": round(slow_burn, 4),
            "budget_consumed": round(consumed, 4),
            "budget_remaining": round(max(0.0, 1.0 - consumed), 4),
        }
