"""Tail-sampling flight recorder: keep the anomalies, drop the rest.

Always-on full tracing is cheap to *record* here (spans are in memory)
but expensive to *retain* at production volume. The recorder keeps the
complete span tree and correlated events only for queries something
went wrong with — deadline-degraded, errored, in the slowest tail, or
breaching an SLO — inside a bounded ring: when full, the oldest record
is evicted. The happy path contributes nothing beyond a counter, which
is what keeps the SLO layer's clean-path overhead within budget.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["FlightRecord", "FlightRecorder"]


@dataclass(frozen=True)
class FlightRecord:
    """One retained query: identity, verdicts, and full evidence."""

    query_id: str                 # the query's trace id
    tenant: str
    start_ms: int
    end_ms: int
    latency_ms: float
    degraded: bool
    errored: bool
    completeness: float
    #: Why it was retained: ``error`` | ``degraded`` | ``slow`` |
    #: ``slo:<name>`` | ``sampled``. Empty never happens — unretained
    #: queries get no record at all.
    reasons: tuple = ()
    spans: tuple = ()             # span dicts, full tree
    events: tuple = ()            # event dicts within [start, end]

    @property
    def anomalous(self) -> bool:
        return self.reasons != ("sampled",)

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "tenant": self.tenant,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "latency_ms": self.latency_ms,
            "degraded": self.degraded,
            "errored": self.errored,
            "completeness": self.completeness,
            "reasons": list(self.reasons),
            "spans": [dict(s) for s in self.spans],
            "events": [dict(e) for e in self.events],
        }


@dataclass
class RecorderStats:
    """What the recorder saw vs what it kept."""

    seen: int = 0
    anomalous: int = 0
    retained: int = 0
    evicted: int = 0
    clean_seen: int = 0
    clean_retained: int = 0

    def as_dict(self) -> dict:
        return {
            "seen": self.seen,
            "anomalous": self.anomalous,
            "retained": self.retained,
            "evicted": self.evicted,
            "clean_seen": self.clean_seen,
            "clean_retained": self.clean_retained,
            "clean_retention": round(
                self.clean_retained / self.clean_seen, 4
            ) if self.clean_seen else 0.0,
        }


class FlightRecorder:
    """Bounded ring of :class:`FlightRecord`, indexed by query id."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._records: "OrderedDict[str, FlightRecord]" = OrderedDict()
        self.stats = RecorderStats()

    def note_seen(self, anomalous: bool) -> None:
        """Count one observed query (retained or not)."""
        self.stats.seen += 1
        if anomalous:
            self.stats.anomalous += 1
        else:
            self.stats.clean_seen += 1

    def record(self, record: FlightRecord) -> None:
        self.stats.retained += 1
        if not record.anomalous:
            self.stats.clean_retained += 1
        # Re-recording the same query id refreshes it in place.
        if record.query_id in self._records:
            del self._records[record.query_id]
        self._records[record.query_id] = record
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
            self.stats.evicted += 1

    def get(self, query_id: str) -> FlightRecord | None:
        return self._records.get(query_id)

    @property
    def records(self) -> list[FlightRecord]:
        """Retained records, oldest first."""
        return list(self._records.values())

    def breaching(self) -> list[FlightRecord]:
        """Anomalous records only (excludes clean ``sampled`` ones)."""
        return [r for r in self.records if r.anomalous]

    def __len__(self) -> int:
        return len(self._records)
