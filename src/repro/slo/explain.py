"""Per-query latency attribution: who actually spent the time?

``explain_spans`` walks one query's span tree and apportions wall time
by *self time* — a span's duration minus the durations of its children,
clamped at zero because scatter-gather shard tasks share the one
simulated clock and concurrent siblings overlap their parent. Self
times are bucketed into operator-meaningful components:

* ``queue_wait`` — gateway queue time, reconstructed from the
  ``gateway`` span's ``queue_wait_ms`` attribute (queueing happens
  *before* the span opens, so it is invisible as span time);
* ``gateway`` / ``runtime`` / ``stage:<name>`` — serving-tier and
  pipeline overhead;
* ``source:<id>`` — per supplemental/primary source dispatch;
* ``cluster`` / ``shard:<n>`` / ``shard:<n> replica:<r>`` — fan-out
  coordination, per-shard work, and individual replica attempts
  (hedged retries show up as extra attempts on the same shard);
* ``service:<name>``, ``backend:<id>``, ``federation``, ``ads`` — bus
  calls, federated backends, and the ad auction.

The result names the dominant contributor (``shard:2 replica:1 78%``),
which is what the flight recorder's ``explain()`` surfaces per
anomalous query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry import build_span_forest

__all__ = ["Attribution", "explain_spans"]


@dataclass(frozen=True)
class Attribution:
    """Where one query's wall time went, by component."""

    query_id: str
    total_ms: float
    #: component -> self-time ms, largest first.
    contributions: tuple = ()

    def fractions(self) -> list[tuple[str, float]]:
        if self.total_ms <= 0:
            return [(name, 0.0) for name, __ in self.contributions]
        return [(name, ms / self.total_ms)
                for name, ms in self.contributions]

    @property
    def dominant(self) -> tuple[str, float]:
        """(component, fraction) of the largest contributor."""
        fractions = self.fractions()
        return fractions[0] if fractions else ("", 0.0)

    @property
    def dominant_label(self) -> str:
        name, fraction = self.dominant
        return f"{name} {fraction * 100:.0f}%" if name else "(no spans)"

    def share(self, prefix: str) -> float:
        """Combined fraction of all components starting with ``prefix``."""
        return sum(fraction for name, fraction in self.fractions()
                   if name.startswith(prefix))

    def render(self) -> str:
        lines = [f"explain {self.query_id}: "
                 f"{self.total_ms:.1f} simulated ms total"]
        for name, ms in self.contributions:
            fraction = ms / self.total_ms if self.total_ms > 0 else 0.0
            bar = "#" * max(1, round(fraction * 30)) if ms > 0 else ""
            lines.append(
                f"  {name:<28} {ms:>9.1f} ms  {fraction * 100:>5.1f}%  "
                f"{bar}"
            )
        lines.append(f"  dominant: {self.dominant_label}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "total_ms": self.total_ms,
            "contributions": [[n, m] for n, m in self.contributions],
            "dominant": self.dominant_label,
        }


def _component(name: str, attrs: dict) -> str:
    """Map a span name to its attribution bucket."""
    if name == "gateway":
        return "gateway"
    if name == "query":
        return "runtime"
    if name.startswith("stage:"):
        return name
    if name == "source":
        return f"source:{attrs.get('source_id', '?')}"
    if name in ("cluster.search", "cluster.facets") \
            or name.startswith("phase:"):
        return "cluster"
    if name.startswith(("stats:shard-", "exec:shard-",
                        "gather:shard-", "facets:shard-")):
        return f"shard:{name.split('shard-', 1)[1]}"
    if name.startswith("attempt:"):
        # attempt:shard-2/replica-1 -> "shard:2 replica:1"
        where = name.split(":", 1)[1]
        shard, __, replica = where.partition("/")
        return (f"shard:{shard.removeprefix('shard-')} "
                f"replica:{replica.removeprefix('replica-')}")
    if name.startswith(("rest:", "soap:")):
        return f"service:{name.split(':', 1)[1]}"
    if name.startswith("backend:"):
        return name
    if name == "federation":
        return "federation"
    if name.startswith("ads:"):
        return "ads"
    return name


def _duration(node: dict) -> float:
    end = node.get("end_ms")
    return float(end - node["start_ms"]) if end is not None else 0.0


def explain_spans(spans, query_id: str = "") -> Attribution:
    """Attribute one query's wall time across its span tree.

    ``spans`` is the full span set of one trace — live
    :class:`~repro.telemetry.trace.Span` objects or exported dicts.
    """
    forest = build_span_forest(spans)
    totals: dict[str, float] = {}
    total_ms = 0.0

    def walk(node: dict) -> None:
        duration = _duration(node)
        child_ms = sum(_duration(child) for child in node["children"])
        self_ms = max(0.0, duration - child_ms)
        component = _component(node["name"], node.get("attrs", {}))
        totals[component] = totals.get(component, 0.0) + self_ms
        for child in node["children"]:
            walk(child)

    for root in forest:
        total_ms += _duration(root)
        # Queue wait precedes the gateway span; surface it as its own
        # component and widen the denominator to match.
        queue_wait = float(
            root.get("attrs", {}).get("queue_wait_ms", 0.0)
        ) if root["name"] == "gateway" else 0.0
        if queue_wait > 0:
            totals["queue_wait"] = (
                totals.get("queue_wait", 0.0) + queue_wait)
            total_ms += queue_wait
        walk(root)
        if not query_id:
            query_id = root["trace_id"]

    ordered = tuple(sorted(
        ((name, round(ms, 3)) for name, ms in totals.items()),
        key=lambda pair: (-pair[1], pair[0]),
    ))
    return Attribution(query_id=query_id,
                       total_ms=round(total_ms, 3),
                       contributions=ordered)
