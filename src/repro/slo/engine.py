"""The SLO engine: judge every query, alert on burn, retain anomalies.

One :class:`SLOEngine` sits beside a platform's
:class:`~repro.telemetry.Telemetry` bundle. The runtime reports every
finished query (tenant, latency, degradation, completeness, trace id);
the engine judges it against each matching objective, records the
verdicts into rolling error budgets, re-evaluates the multi-window
burn-rate alerts, and — only when the query was anomalous — captures
its full span tree and correlated events into the flight recorder.

The clean path does no span fetching and no event scanning: one
histogram observation, a few deque appends, and the edge-triggered
alert checks. That is the whole per-query cost when nothing is wrong,
which is what keeps the layer inside its ≤5% overhead budget.

``NULL_SLO`` mirrors the API with no-ops so ``Symphony()`` without
``slo=`` keeps the allocation-free hot path.
"""

from __future__ import annotations

import threading

from repro.slo.burnrate import BurnRateAlerter
from repro.slo.explain import Attribution, explain_spans
from repro.slo.objectives import ErrorBudget, SLOConfig
from repro.slo.recorder import FlightRecord, FlightRecorder

__all__ = ["SLOEngine", "NullSLOEngine", "NULL_SLO"]


class SLOEngine:
    """Judgment layer over one telemetry bundle."""

    enabled = True

    def __init__(self, telemetry, config: SLOConfig | None = None
                 ) -> None:
        self.telemetry = telemetry
        self.config = config or SLOConfig()
        self.clock = telemetry.clock
        self.slos = self.config.build_slos()
        live = telemetry.enabled
        self._trackers = [
            (slo, budget := ErrorBudget(slo), BurnRateAlerter(
                slo, budget,
                events=telemetry.events if live else None,
                metrics=telemetry.metrics if live else None,
            ))
            for slo in self.slos
        ]
        # Externally-driven objectives (e.g. contract freshness) are
        # reported alongside the query-judged ones but never fed by
        # observe() — their owners record into the budget themselves.
        self._external: list = []
        self.recorder = FlightRecorder(self.config.recorder_capacity)
        self._latency = telemetry.metrics.histogram(
            "slo_query_latency_ms")
        self._observed = 0
        self._slow_threshold: float | None = None
        self._lock = threading.Lock()

    # -- the per-query hook ---------------------------------------------------

    def observe(self, *, tenant: str, latency_ms: float,
                degraded: bool = False, errored: bool = False,
                completeness: float = 1.0, trace_id: str = "",
                start_ms: int = 0, end_ms: int = 0
                ) -> FlightRecord | None:
        """Judge one finished query; returns its record if retained."""
        with self._lock:
            now = self.clock.now_ms
            self._observed += 1
            self._latency.observe(latency_ms)
            # The slow-tail gate compares against a cached rolling
            # quantile refreshed every 32 queries — recomputing (and
            # re-sorting) per query would eat the overhead budget for
            # a threshold that moves slowly anyway.
            if (self._observed % 32 == 1
                    and self._latency.count
                    >= self.config.slow_min_samples):
                self._slow_threshold = self._latency.quantile(
                    self.config.slow_quantile)
            reasons: list[str] = []
            if errored:
                reasons.append("error")
            if degraded:
                reasons.append("degraded")
            if (self._slow_threshold is not None
                    and latency_ms > self._slow_threshold):
                reasons.append("slow")
            for slo, budget, alerter in self._trackers:
                if not slo.matches(tenant):
                    continue
                good = slo.judge(latency_ms, degraded, errored,
                                 completeness)
                budget.record(now, good)
                alerter.check(now)
                if not good:
                    reasons.append(f"slo:{slo.name}")
            anomalous = bool(reasons)
            self.recorder.note_seen(anomalous)
            if not anomalous:
                every = self.config.clean_sample_every
                if not (every
                        and self.recorder.stats.clean_seen % every == 0):
                    return None
                reasons = ["sampled"]
            record = FlightRecord(
                query_id=trace_id,
                tenant=tenant,
                start_ms=start_ms,
                end_ms=end_ms or now,
                latency_ms=round(latency_ms, 3),
                degraded=degraded,
                errored=errored,
                completeness=round(completeness, 4),
                reasons=tuple(reasons),
                spans=self._capture_spans(trace_id),
                events=self._capture_events(start_ms, end_ms or now),
            )
            self.recorder.record(record)
            return record

    def _capture_spans(self, trace_id: str) -> tuple:
        if not trace_id:
            return ()
        return tuple(
            s.to_dict()
            for s in self.telemetry.tracer.trace_spans(trace_id)
        )

    def _capture_events(self, start_ms: int, end_ms: int) -> tuple:
        if not start_ms:
            return ()
        return tuple(
            e.to_dict() for e in self.telemetry.events.events
            if start_ms <= e.timestamp_ms <= end_ms
        )

    # -- external objectives --------------------------------------------------

    def adopt_tracker(self, slo, budget, alerter) -> None:
        """Report an externally-driven objective in status/alerts.

        The owner keeps recording into ``budget`` and calling
        ``alerter.check`` itself; the engine only folds the tracker
        into :meth:`burning`, :meth:`alerts`, :meth:`status`, and
        :meth:`report` so operators see one consolidated view.
        """
        self._external.append((slo, budget, alerter))

    def _all_trackers(self) -> list:
        return self._trackers + self._external

    # -- alert state ----------------------------------------------------------

    def burning(self) -> bool:
        """Is any burn-rate alert currently firing?"""
        return any(alerter.active
                   for __, __, alerter in self._all_trackers())

    def active_alerts(self) -> list[dict]:
        return [
            {"slo": slo.name, "tenant": slo.tenant}
            for slo, __, alerter in self._all_trackers()
            if alerter.active
        ]

    def alerts(self) -> list[dict]:
        """Every alert transition, ordered by time then SLO name."""
        out = []
        for slo, __, alerter in self._all_trackers():
            for alert in alerter.alerts:
                out.append(dict(alert, slo=slo.name,
                                tenant=slo.tenant))
        return sorted(out, key=lambda a: (a["at_ms"], a["slo"]))

    def first_burn_ms(self) -> int | None:
        """Timestamp of the earliest ``slo.burn`` firing, if any."""
        fire_times = [a["at_ms"] for a in self.alerts()
                      if a["kind"] == "fire"]
        return min(fire_times) if fire_times else None

    # -- diagnosis ------------------------------------------------------------

    def explain(self, query_id: str) -> Attribution | None:
        """Attribute a recorded (or still-traced) query's wall time."""
        spans: list = list(self.telemetry.tracer.trace_spans(query_id))
        if not spans:
            record = self.recorder.get(query_id)
            if record is not None:
                spans = [dict(s) for s in record.spans]
        if not spans:
            return None
        return explain_spans(spans, query_id=query_id)

    def worst_record(self) -> FlightRecord | None:
        """The slowest anomalous retained query."""
        breaching = self.recorder.breaching()
        if not breaching:
            return None
        return max(breaching,
                   key=lambda r: (r.latency_ms, -r.start_ms))

    # -- reporting ------------------------------------------------------------

    def status(self) -> dict:
        now = self.clock.now_ms
        return {
            "objectives": [
                dict(budget.status(now), kind=slo.kind,
                     alerting=alerter.active)
                for slo, budget, alerter in self._all_trackers()
            ],
            "alerts": self.alerts(),
            "recorder": self.recorder.stats.as_dict(),
            "observed": self._observed,
        }

    def report(self) -> str:
        status = self.status()
        lines = ["SLO report", "=========="]
        lines.append("")
        lines.append(f"{'objective':<22} {'kind':<13} {'events':>6} "
                     f"{'bad':>4} {'fast':>7} {'slow':>7} "
                     f"{'budget':>7}  state")
        for obj in status["objectives"]:
            name = obj["slo"] + (f"[{obj['tenant']}]" if obj["tenant"]
                                 else "")
            state = "BURNING" if obj["alerting"] else "ok"
            lines.append(
                f"{name:<22} {obj['kind']:<13} {obj['events']:>6} "
                f"{obj['bad']:>4} {obj['fast_burn']:>7.2f} "
                f"{obj['slow_burn']:>7.2f} "
                f"{obj['budget_remaining'] * 100:>6.1f}%  {state}"
            )
        lines.append("")
        alerts = status["alerts"]
        lines.append(f"Alerts ({len(alerts)}):")
        if alerts:
            for alert in alerts:
                lines.append(
                    f"  t={alert['at_ms']} {alert['kind']:<5} "
                    f"{alert['slo']:<14} fast={alert['fast_burn']:.2f} "
                    f"slow={alert['slow_burn']:.2f}"
                )
        else:
            lines.append("  (none)")
        lines.append("")
        rec = status["recorder"]
        lines.append(
            f"Flight recorder: {rec['retained']} retained of "
            f"{rec['seen']} seen ({rec['anomalous']} anomalous, "
            f"clean retention {rec['clean_retention'] * 100:.1f}%, "
            f"{rec['evicted']} evicted)"
        )
        breaching = self.recorder.breaching()
        if breaching:
            lines.append("Breaching queries (newest last):")
            for record in breaching[-10:]:
                lines.append(
                    f"  {record.query_id}  {record.latency_ms:>8.1f}ms"
                    f"  [{', '.join(record.reasons)}]"
                )
        return "\n".join(lines)


class NullSLOEngine:
    """No-op twin: ``Symphony()`` without ``slo=`` pays nothing."""

    enabled = False
    slos: tuple = ()

    def observe(self, **kwargs) -> None:
        return None

    def adopt_tracker(self, slo, budget, alerter) -> None:
        return None

    def burning(self) -> bool:
        return False

    def active_alerts(self) -> list:
        return []

    def alerts(self) -> list:
        return []

    def first_burn_ms(self) -> None:
        return None

    def explain(self, query_id: str) -> None:
        return None

    def worst_record(self) -> None:
        return None

    def status(self) -> dict:
        return {"objectives": [], "alerts": [],
                "recorder": {}, "observed": 0}

    def report(self) -> str:
        return "SLO layer disabled (construct Symphony(slo=True))"


NULL_SLO = NullSLOEngine()
