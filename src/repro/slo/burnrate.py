"""Multi-window burn-rate alerting over one error budget.

The classic SRE construction: alert only when *both* a fast and a slow
window burn above threshold. The fast window makes detection quick and
recovery visible; the slow window stops a brief blip from paging. Both
windows run on simulated time, so an identical workload produces
identical alert timestamps — the alert stream is part of the
deterministic replay contract, not a side effect of scheduling.

Alerts are edge-triggered: one ``slo.burn`` event when the condition
becomes true, one ``slo.burn_cleared`` when it stops, with the active
state queryable in between (the autoscaler reads it every tick).
"""

from __future__ import annotations

from repro.slo.objectives import ErrorBudget, SLODefinition

__all__ = ["BurnRateAlerter"]


class BurnRateAlerter:
    """Edge-triggered fast+slow burn alerting for one SLO."""

    __slots__ = ("slo", "budget", "_events", "_metrics", "active",
                 "alerts")

    def __init__(self, slo: SLODefinition, budget: ErrorBudget,
                 events=None, metrics=None) -> None:
        self.slo = slo
        self.budget = budget
        self._events = events
        self._metrics = metrics
        self.active = False
        #: Every transition, newest last:
        #: ``{"at_ms", "kind": "fire"|"clear", "fast_burn", "slow_burn"}``
        self.alerts: list[dict] = []

    def check(self, now_ms: int) -> bool:
        """Re-evaluate at ``now_ms``; returns the (new) active state."""
        fast_burn, slow_burn = self.budget.burn_rates(now_ms)
        firing = (
            self.budget.fast.total >= self.slo.min_events
            and fast_burn >= self.slo.burn_threshold
            and slow_burn >= self.slo.burn_threshold
        )
        if firing and not self.active:
            self.active = True
            self._transition("fire", now_ms, fast_burn, slow_burn)
        elif not firing and self.active:
            self.active = False
            self._transition("clear", now_ms, fast_burn, slow_burn)
        return self.active

    def _transition(self, kind: str, now_ms: int, fast_burn: float,
                    slow_burn: float) -> None:
        status = self.budget.status(now_ms)
        self.alerts.append({
            "at_ms": now_ms,
            "kind": kind,
            "fast_burn": round(fast_burn, 4),
            "slow_burn": round(slow_burn, 4),
        })
        if self._events is not None:
            event_kind = ("slo.burn" if kind == "fire"
                          else "slo.burn_cleared")
            self._events.emit(
                event_kind,
                slo=self.slo.name,
                tenant=self.slo.tenant,
                fast_burn=round(fast_burn, 4),
                slow_burn=round(slow_burn, 4),
                budget_remaining=status["budget_remaining"],
            )
        if self._metrics is not None and kind == "fire":
            self._metrics.counter("slo_burn_alerts_total",
                                  slo=self.slo.name).inc()

    def fired(self) -> list[dict]:
        """The ``fire`` transitions only, oldest first."""
        return [a for a in self.alerts if a["kind"] == "fire"]
