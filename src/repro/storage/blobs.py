"""Blob storage for raw uploads.

Raw payloads (the bytes of a delimited file, an XML document, a crawled
page) are retained alongside the parsed tables so refreshes can detect
unchanged content cheaply via content hashes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import NotFoundError

__all__ = ["Blob", "BlobStore"]


@dataclass(frozen=True)
class Blob:
    key: str
    data: bytes
    content_type: str
    created_ms: int

    @property
    def sha256(self) -> str:
        return hashlib.sha256(self.data).hexdigest()

    @property
    def size(self) -> int:
        return len(self.data)


class BlobStore:
    """A flat keyed store of immutable blobs; put-overwrite semantics."""

    def __init__(self) -> None:
        self._blobs: dict[str, Blob] = {}

    def put(self, key: str, data: bytes,
            content_type: str = "application/octet-stream",
            created_ms: int = 0) -> Blob:
        blob = Blob(key, bytes(data), content_type, created_ms)
        self._blobs[key] = blob
        return blob

    def get(self, key: str) -> Blob:
        try:
            return self._blobs[key]
        except KeyError:
            raise NotFoundError(f"no blob under key {key!r}") from None

    def exists(self, key: str) -> bool:
        return key in self._blobs

    def delete(self, key: str) -> None:
        if key not in self._blobs:
            raise NotFoundError(f"no blob under key {key!r}")
        del self._blobs[key]

    def keys(self) -> list[str]:
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        return sum(blob.size for blob in self._blobs.values())

    def unchanged(self, key: str, data: bytes) -> bool:
        """True when a blob exists under ``key`` with identical content."""
        if key not in self._blobs:
            return False
        return self._blobs[key].sha256 == hashlib.sha256(data).hexdigest()
