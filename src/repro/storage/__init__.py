"""Tenant storage substrate.

The paper: "Symphony provides private and secure space to store and index
proprietary data belonging to the application designer." This package
implements that space: a multi-tenant catalog (:mod:`tenant`), typed record
tables with schema inference and optimistic versioning (:mod:`records`), a
blob store for raw uploads (:mod:`blobs`), and scoped access tokens
(:mod:`tokens`). Quotas bound each tenant's footprint.
"""

from repro.storage.blobs import Blob, BlobStore
from repro.storage.records import (
    FieldSpec,
    FieldType,
    Record,
    RecordTable,
    Schema,
    infer_schema,
)
from repro.storage.tenant import Quota, StorageCatalog, Tenant
from repro.storage.tokens import AccessToken, Scope, TokenAuthority

__all__ = [
    "Blob",
    "BlobStore",
    "FieldSpec",
    "FieldType",
    "Record",
    "RecordTable",
    "Schema",
    "infer_schema",
    "Quota",
    "StorageCatalog",
    "Tenant",
    "AccessToken",
    "Scope",
    "TokenAuthority",
]
