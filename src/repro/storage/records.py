"""Typed record tables with schema inference and optimistic versioning.

Proprietary uploads land here after normalization. A table owns a
:class:`Schema` (either declared or inferred from data), validates and
coerces incoming values, maintains hash indexes on selected fields, and
rejects stale updates via per-record version counters.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import (
    DuplicateError,
    NotFoundError,
    ValidationError,
    VersionConflictError,
)

__all__ = [
    "FieldType",
    "FieldSpec",
    "Schema",
    "infer_schema",
    "Record",
    "RecordTable",
]

_INT_RE = re.compile(r"[+-]?\d+$")
_FLOAT_RE = re.compile(r"[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_DATE_RE = re.compile(r"\d{4}-\d{2}-\d{2}$")
_URL_RE = re.compile(r"https?://\S+$")
_BOOL_VALUES = {"true": True, "false": False, "yes": True, "no": False,
                "1": True, "0": False}


class FieldType(str, Enum):
    """The typed-column vocabulary of proprietary tables."""

    STRING = "string"
    TEXT = "text"       # long-form, analyzed when indexed for search
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"       # ISO yyyy-mm-dd string
    URL = "url"


@dataclass(frozen=True)
class FieldSpec:
    name: str
    type: FieldType
    required: bool = False

    def coerce(self, value):
        """Coerce ``value`` into this field's Python representation.

        Raises :class:`ValidationError` when coercion is impossible.
        """
        if value is None or value == "":
            if self.required:
                raise ValidationError(
                    f"field {self.name!r} is required but missing"
                )
            return None
        try:
            return _COERCERS[self.type](value)
        except (ValueError, TypeError) as exc:
            raise ValidationError(
                f"field {self.name!r}: cannot interpret {value!r} "
                f"as {self.type.value}"
            ) from exc


def _coerce_bool(value):
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in _BOOL_VALUES:
        return _BOOL_VALUES[text]
    raise ValueError(f"not a boolean: {value!r}")


def _coerce_date(value):
    text = str(value).strip()
    if not _DATE_RE.match(text):
        raise ValueError(f"not an ISO date: {value!r}")
    return text


def _coerce_url(value):
    text = str(value).strip()
    if not _URL_RE.match(text):
        raise ValueError(f"not a URL: {value!r}")
    return text


_COERCERS = {
    FieldType.STRING: lambda v: str(v),
    FieldType.TEXT: lambda v: str(v),
    FieldType.INTEGER: lambda v: int(str(v).strip()),
    FieldType.FLOAT: lambda v: float(str(v).strip()),
    FieldType.BOOLEAN: _coerce_bool,
    FieldType.DATE: _coerce_date,
    FieldType.URL: _coerce_url,
}


@dataclass(frozen=True)
class Schema:
    """An ordered collection of field specs."""

    fields: tuple

    def __post_init__(self):
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValidationError("duplicate field names in schema")

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def spec(self, name: str) -> FieldSpec:
        for spec in self.fields:
            if spec.name == name:
                return spec
        raise NotFoundError(f"no such field in schema: {name}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def coerce_row(self, row: dict) -> dict:
        """Validate+coerce one raw row; unknown keys are rejected."""
        unknown = set(row) - set(self.field_names())
        if unknown:
            raise ValidationError(
                f"row has fields not in schema: {sorted(unknown)}"
            )
        return {
            spec.name: spec.coerce(row.get(spec.name))
            for spec in self.fields
        }

    def to_dict(self) -> dict:
        return {
            "fields": [
                {"name": f.name, "type": f.type.value,
                 "required": f.required}
                for f in self.fields
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        return cls(tuple(
            FieldSpec(f["name"], FieldType(f["type"]),
                      f.get("required", False))
            for f in data["fields"]
        ))


def _classify_value(value) -> FieldType:
    if isinstance(value, bool):
        return FieldType.BOOLEAN
    if isinstance(value, int):
        return FieldType.INTEGER
    if isinstance(value, float):
        return FieldType.FLOAT
    text = str(value).strip()
    if _INT_RE.match(text):
        return FieldType.INTEGER
    if _FLOAT_RE.match(text):
        return FieldType.FLOAT
    if text.lower() in _BOOL_VALUES:
        return FieldType.BOOLEAN
    if _DATE_RE.match(text):
        return FieldType.DATE
    if _URL_RE.match(text):
        return FieldType.URL
    if len(text) > 80 or text.count(" ") >= 12:
        return FieldType.TEXT
    return FieldType.STRING


_WIDENING = {
    # (current, observed) -> widened
    (FieldType.INTEGER, FieldType.FLOAT): FieldType.FLOAT,
    (FieldType.FLOAT, FieldType.INTEGER): FieldType.FLOAT,
    (FieldType.STRING, FieldType.TEXT): FieldType.TEXT,
    (FieldType.TEXT, FieldType.STRING): FieldType.TEXT,
}


def infer_schema(rows, sample_limit: int = 200) -> Schema:
    """Infer a :class:`Schema` by scanning up to ``sample_limit`` rows.

    Types widen monotonically: int+float → float, anything conflicting →
    string (or text when long values were seen). Fields with no missing
    values in the sample are *not* marked required — uploads are messy.
    """
    observed: dict[str, FieldType | None] = {}
    order: list[str] = []
    for i, row in enumerate(rows):
        if i >= sample_limit:
            break
        for name, value in row.items():
            if name not in observed:
                observed[name] = None
                order.append(name)
            if value is None or value == "":
                continue
            kind = _classify_value(value)
            current = observed[name]
            if current is None or current == kind:
                observed[name] = kind
            else:
                observed[name] = _WIDENING.get(
                    (current, kind),
                    FieldType.TEXT if FieldType.TEXT in (current, kind)
                    else FieldType.STRING,
                )
    if not order:
        raise ValidationError("cannot infer a schema from zero rows")
    return Schema(tuple(
        FieldSpec(name, observed[name] or FieldType.STRING)
        for name in order
    ))


@dataclass(frozen=True)
class Record:
    """One stored row: id, coerced values, and a version counter."""

    record_id: str
    values: dict
    version: int = 1

    def get(self, name: str, default=None):
        return self.values.get(name, default)


class RecordTable:
    """A named table of records under one schema.

    ``indexed_fields`` get exact-match hash indexes (used by service lookups
    and supplemental joins); search-style retrieval is layered on top by
    :mod:`repro.core.datasources`.
    """

    def __init__(self, name: str, schema: Schema,
                 indexed_fields: tuple = ()) -> None:
        self.name = name
        self.schema = schema
        self.indexed_fields = tuple(indexed_fields)
        for field_name in self.indexed_fields:
            if not schema.has_field(field_name):
                raise ValidationError(
                    f"cannot index unknown field {field_name!r}"
                )
        self._records: dict[str, Record] = {}
        self._indexes: dict[str, dict] = {f: {} for f in self.indexed_fields}
        self._next_serial = 1

    # -- CRUD ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records.values())

    def insert(self, row: dict, record_id: str | None = None) -> Record:
        return self._insert_values(self.schema.coerce_row(row),
                                   record_id)

    def insert_validated(self, values: dict,
                         record_id: str | None = None) -> Record:
        """Insert a row already coerced to this table's schema.

        The trust boundary for skipping re-validation: the caller
        (e.g. a contract enforcer whose declared schema *is* this
        table's schema) has produced ``values`` with exactly the
        schema's fields and types, and hands over ownership of the
        dict — it must not mutate it afterwards. Governed bulk ingest
        would otherwise pay for every cell twice (plus a copy).
        """
        return self._insert_values(values, record_id)

    def _insert_values(self, values: dict,
                       record_id: str | None = None) -> Record:
        if record_id is None:
            record_id = f"{self.name}:{self._next_serial}"
            self._next_serial += 1
        if record_id in self._records:
            raise DuplicateError(f"record exists: {record_id}")
        record = Record(record_id, values, version=1)
        self._records[record_id] = record
        self._index_record(record)
        return record

    def get(self, record_id: str) -> Record:
        try:
            return self._records[record_id]
        except KeyError:
            raise NotFoundError(
                f"no record {record_id!r} in table {self.name!r}"
            ) from None

    def update(self, record_id: str, changes: dict,
               expected_version: int | None = None) -> Record:
        current = self.get(record_id)
        if expected_version is not None \
                and current.version != expected_version:
            raise VersionConflictError(
                f"record {record_id}: expected version "
                f"{expected_version}, found {current.version}"
            )
        merged = dict(current.values)
        merged.update(changes)
        values = self.schema.coerce_row(merged)
        self._unindex_record(current)
        updated = Record(record_id, values, version=current.version + 1)
        self._records[record_id] = updated
        self._index_record(updated)
        return updated

    def delete(self, record_id: str) -> None:
        record = self.get(record_id)
        self._unindex_record(record)
        del self._records[record_id]

    def upsert_by(self, key_field: str, row: dict) -> Record:
        """Insert, or update the single record whose ``key_field`` matches."""
        return self._upsert_values(key_field,
                                   self.schema.coerce_row(row))

    def upsert_validated_by(self, key_field: str,
                            values: dict) -> Record:
        """:meth:`upsert_by` for rows already coerced to this schema
        (same trust boundary — and ownership handoff — as
        :meth:`insert_validated`)."""
        return self._upsert_values(key_field, values)

    def _upsert_values(self, key_field: str, values: dict) -> Record:
        key = values.get(key_field)
        existing = self.find(key_field, key)
        if not existing:
            return self._insert_values(values)
        if len(existing) > 1:
            raise DuplicateError(
                f"upsert key {key_field}={key!r} matches "
                f"{len(existing)} records"
            )
        # Full-row replacement: ``values`` carries every schema field,
        # so this matches update()'s merge without re-coercing.
        current = existing[0]
        self._unindex_record(current)
        updated = Record(current.record_id, values,
                         version=current.version + 1)
        self._records[current.record_id] = updated
        self._index_record(updated)
        return updated

    def add_fields(self, specs: tuple) -> None:
        """Additive schema evolution: append new columns to the table.

        Existing records are untouched — the new columns simply read
        as absent until rows carrying them arrive. Only *new* names
        are accepted; retyping or dropping a column is not evolution,
        it is a different table.
        """
        for spec in specs:
            if self.schema.has_field(spec.name):
                raise ValidationError(
                    f"field {spec.name!r} already in schema for "
                    f"table {self.name!r}"
                )
        if specs:
            self.schema = Schema(self.schema.fields + tuple(specs))

    # -- queries -----------------------------------------------------------------

    def find(self, field_name: str, value) -> list:
        """Exact match on an indexed or unindexed field."""
        if field_name in self._indexes:
            ids = self._indexes[field_name].get(self._key(value), ())
            return [self._records[i] for i in ids]
        return [r for r in self._records.values()
                if r.values.get(field_name) == value]

    def scan(self, predicate=None, limit: int | None = None) -> list:
        out = []
        for record in self._records.values():
            if predicate is None or predicate(record):
                out.append(record)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def all_records(self) -> list:
        return list(self._records.values())

    # -- persistence ----------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name,
            "schema": self.schema.to_dict(),
            "indexed_fields": list(self.indexed_fields),
            "next_serial": self._next_serial,
            "records": [
                {"id": r.record_id, "version": r.version,
                 "values": r.values}
                for r in self._records.values()
            ],
        })

    @classmethod
    def from_json(cls, payload: str) -> "RecordTable":
        data = json.loads(payload)
        table = cls(
            data["name"],
            Schema.from_dict(data["schema"]),
            tuple(data.get("indexed_fields", ())),
        )
        for entry in data["records"]:
            record = Record(entry["id"], entry["values"], entry["version"])
            table._records[record.record_id] = record
            table._index_record(record)
        table._next_serial = data.get("next_serial", len(table) + 1)
        return table

    # -- index maintenance --------------------------------------------------------------

    @staticmethod
    def _key(value):
        return str(value).lower() if value is not None else None

    def _index_record(self, record: Record) -> None:
        if not self._indexes:
            return
        for field_name, index in self._indexes.items():
            key = self._key(record.values.get(field_name))
            index.setdefault(key, set()).add(record.record_id)

    def _unindex_record(self, record: Record) -> None:
        for field_name, index in self._indexes.items():
            key = self._key(record.values.get(field_name))
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(record.record_id)
                if not bucket:
                    del index[key]

    def approximate_bytes(self) -> int:
        """Rough storage footprint used for quota accounting."""
        total = 0
        for record in self._records.values():
            for name, value in record.values.items():
                total += len(name) + len(str(value)) if value is not None \
                    else len(name)
        return total
