"""Scoped access tokens.

"Private and secure space" in the paper implies per-designer isolation;
here every storage operation is authorized by a token carrying (tenant,
scopes). The token authority mints and validates tokens, and can revoke
them — enough machinery for the tests to demonstrate that one designer
cannot read another's inventory.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import AuthorizationError
from repro.util import IdGenerator

__all__ = ["Scope", "AccessToken", "TokenAuthority"]


class Scope(str, Enum):
    """What a token may do within its tenant."""

    READ = "read"
    WRITE = "write"
    ADMIN = "admin"


@dataclass(frozen=True)
class AccessToken:
    value: str
    tenant_id: str
    scopes: frozenset
    expires_at_ms: int | None = None  # None = never expires

    def allows(self, scope: Scope) -> bool:
        return Scope.ADMIN in self.scopes or scope in self.scopes

    def expired(self, now_ms: int) -> bool:
        return self.expires_at_ms is not None \
            and now_ms >= self.expires_at_ms


class TokenAuthority:
    """Mints, validates, and revokes tenant-scoped tokens."""

    def __init__(self, ids: IdGenerator | None = None) -> None:
        self._ids = ids or IdGenerator()
        self._tokens: dict[str, AccessToken] = {}

    def mint(self, tenant_id: str, scopes=(Scope.READ,),
             expires_at_ms: int | None = None) -> AccessToken:
        value = self._ids.token("sym")
        token = AccessToken(value, tenant_id, frozenset(scopes),
                            expires_at_ms)
        self._tokens[value] = token
        return token

    def revoke(self, value: str) -> None:
        self._tokens.pop(value, None)

    def resolve(self, value: str, now_ms: int = 0) -> AccessToken:
        token = self._tokens.get(value)
        if token is None:
            raise AuthorizationError("unknown or revoked token")
        if token.expired(now_ms):
            raise AuthorizationError("token expired")
        return token

    def authorize(self, value: str, tenant_id: str, scope: Scope,
                  now_ms: int = 0) -> AccessToken:
        """Validate that ``value`` grants ``scope`` on ``tenant_id``."""
        token = self.resolve(value, now_ms=now_ms)
        if token.tenant_id != tenant_id:
            raise AuthorizationError(
                f"token is scoped to tenant {token.tenant_id!r}, "
                f"not {tenant_id!r}"
            )
        if not token.allows(scope):
            raise AuthorizationError(
                f"token lacks scope {scope.value!r}"
            )
        return token
