"""Multi-tenant catalog: tenants own tables and blobs under a quota."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    DuplicateError,
    NotFoundError,
    QuotaExceededError,
)
from repro.storage.blobs import BlobStore
from repro.storage.records import RecordTable, Schema
from repro.storage.tokens import Scope, TokenAuthority
from repro.util import IdGenerator

__all__ = ["Quota", "Tenant", "StorageCatalog"]


@dataclass(frozen=True)
class Quota:
    """Per-tenant resource ceilings."""

    max_tables: int = 20
    max_records_per_table: int = 100_000
    max_blob_bytes: int = 64 * 1024 * 1024

    def check_tables(self, count: int) -> None:
        if count > self.max_tables:
            raise QuotaExceededError(
                f"tenant table quota exceeded ({count} > {self.max_tables})"
            )

    def check_records(self, count: int) -> None:
        if count > self.max_records_per_table:
            raise QuotaExceededError(
                f"table record quota exceeded "
                f"({count} > {self.max_records_per_table})"
            )

    def check_blob_bytes(self, total: int) -> None:
        if total > self.max_blob_bytes:
            raise QuotaExceededError(
                f"blob quota exceeded ({total} > {self.max_blob_bytes})"
            )


class Tenant:
    """One designer's private space: tables + blobs + quota."""

    def __init__(self, tenant_id: str, display_name: str,
                 quota: Quota | None = None) -> None:
        self.tenant_id = tenant_id
        self.display_name = display_name
        self.quota = quota or Quota()
        self.blobs = BlobStore()
        self._tables: dict[str, RecordTable] = {}

    def create_table(self, name: str, schema: Schema,
                     indexed_fields: tuple = ()) -> RecordTable:
        if name in self._tables:
            raise DuplicateError(
                f"tenant {self.tenant_id} already has table {name!r}"
            )
        self.quota.check_tables(len(self._tables) + 1)
        table = RecordTable(name, schema, indexed_fields)
        self._tables[name] = table
        return table

    def restore_table(self, table: RecordTable) -> None:
        """Attach an already-built table (platform import path)."""
        if table.name in self._tables:
            raise DuplicateError(
                f"tenant {self.tenant_id} already has table "
                f"{table.name!r}"
            )
        self.quota.check_tables(len(self._tables) + 1)
        self.quota.check_records(len(table))
        self._tables[table.name] = table

    def table(self, name: str) -> RecordTable:
        try:
            return self._tables[name]
        except KeyError:
            raise NotFoundError(
                f"tenant {self.tenant_id} has no table {name!r}"
            ) from None

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise NotFoundError(
                f"tenant {self.tenant_id} has no table {name!r}"
            )
        del self._tables[name]

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def insert_rows(self, table_name: str, rows,
                    validated: bool = False) -> int:
        """Bulk insert with quota enforcement; returns the inserted count.

        ``validated`` marks rows already coerced to the table's schema
        (a contract enforcer's output), skipping re-coercion per row.
        """
        table = self.table(table_name)
        insert = table.insert_validated if validated else table.insert
        inserted = 0
        count = len(table)
        limit = self.quota.max_records_per_table
        for row in rows:
            if count >= limit:
                # Partial inserts up to the quota are kept; this raises
                # with the canonical quota message.
                self.quota.check_records(count + 1)
            insert(row)
            inserted += 1
            count += 1
        return inserted

    def put_blob(self, key: str, data: bytes, content_type: str,
                 created_ms: int = 0):
        self.quota.check_blob_bytes(self.blobs.total_bytes() + len(data))
        return self.blobs.put(key, data, content_type, created_ms)


class StorageCatalog:
    """The platform-wide registry of tenants, guarded by tokens."""

    def __init__(self, authority: TokenAuthority | None = None,
                 ids: IdGenerator | None = None) -> None:
        self._ids = ids or IdGenerator()
        self.authority = authority or TokenAuthority(self._ids)
        self._tenants: dict[str, Tenant] = {}

    def create_tenant(self, display_name: str,
                      quota: Quota | None = None) -> Tenant:
        tenant_id = self._ids.next_id("tenant")
        tenant = Tenant(tenant_id, display_name, quota)
        self._tenants[tenant_id] = tenant
        return tenant

    def register_tenant(self, tenant: Tenant) -> Tenant:
        """Attach an already-built tenant (platform import path)."""
        if tenant.tenant_id in self._tenants:
            raise DuplicateError(
                f"tenant id already registered: {tenant.tenant_id}"
            )
        self._tenants[tenant.tenant_id] = tenant
        return tenant

    def tenant(self, tenant_id: str) -> Tenant:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise NotFoundError(f"no tenant {tenant_id!r}") from None

    def tenant_ids(self) -> list[str]:
        return sorted(self._tenants)

    def open(self, token_value: str, tenant_id: str,
             scope: Scope = Scope.READ, now_ms: int = 0) -> Tenant:
        """Resolve ``tenant_id`` after authorizing the caller's token."""
        self.authority.authorize(token_value, tenant_id, scope,
                                 now_ms=now_ms)
        return self.tenant(tenant_id)
