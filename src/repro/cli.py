"""Command-line interface: demo and inspection entry points.

Usage::

    python -m repro.cli demo                 # run the GamerQueen demo
    python -m repro.cli table1               # regenerate Table I
    python -m repro.cli search "halo review" # query the web vertical
    python -m repro.cli suggest gamespot.com ign.com
    python -m repro.cli stats                # synthetic web statistics
    python -m repro.cli telemetry            # trace one clustered query
    python -m repro.cli telemetry --input t.jsonl  # report an export
    python -m repro.cli chaos --plan examples/chaos_fault_plan.json
    python -m repro.cli gateway              # saturate the front door
    python -m repro.cli gateway --input t.jsonl  # report an export
    python -m repro.cli controlplane         # autoscale a hot shard
    python -m repro.cli controlplane --split 0   # live shard split
    python -m repro.cli slo                  # burn a latency budget
    python -m repro.cli slo --explain worst  # attribute the worst query
    python -m repro.cli durability           # crash + WAL catch-up
    python -m repro.cli durability --storage blob
    python -m repro.cli contracts            # govern a drifting feed
    python -m repro.cli contracts --events   # include the event log
"""

from __future__ import annotations

import argparse
import sys

from repro.core.platform import Symphony
from repro.searchengine.engine import SearchOptions

__all__ = ["main"]


def _build_platform(seed: int, **kwargs) -> Symphony:
    from repro.simweb.generator import WebSpec
    return Symphony(web_spec=WebSpec(seed=seed), **kwargs)


def _build_demo_app(symphony: Symphony) -> tuple:
    """Stand up the GamerQueen demo application.

    Returns ``(app_id, games, session)``.
    """
    account = symphony.register_designer("Ann")
    games = symphony.web.entities["video_games"][:5]
    rows = ["title,producer,description"]
    rows += [f'{g},Studio {i},"A classic {g} experience"'
             for i, g in enumerate(games)]
    symphony.upload_http(account, "inventory.csv",
                         "\n".join(rows).encode(), "inventory",
                         content_type="text/csv")
    inventory = symphony.add_proprietary_source(
        account, "inventory",
        search_fields=("title", "producer", "description"),
    )
    reviews = symphony.add_web_source(
        "Game reviews", "web",
        sites=("gamespot.com", "ign.com", "teamxbox.com"),
    )
    session = symphony.designer().new_application(
        "GamerQueen", account.tenant.tenant_id
    )
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=3,
        search_fields=("title", "producer", "description"),
    )
    session.add_hyperlink(slot, "title")
    session.add_text(slot, "description")
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        heading="Reviews", max_results=2, query_suffix="review",
    )
    return symphony.host(session), games, session


def _cmd_stats(args) -> int:
    symphony = _build_platform(args.seed)
    stats = symphony.web.stats()
    print("Synthetic web:")
    for key, value in stats.items():
        print(f"  {key:<8} {value}")
    print("Topics:", ", ".join(sorted(symphony.web.entities)))
    return 0


def _cmd_search(args) -> int:
    symphony = _build_platform(args.seed)
    options = SearchOptions(count=args.count,
                            sites=tuple(args.site or ()))
    response = symphony.engine.search(args.vertical, args.query,
                                      options)
    print(f"{response.total_matches} matches "
          f"({response.elapsed_ms:.1f} simulated ms)")
    if response.suggestion:
        print(f"did you mean: {response.suggestion!r}?")
    for i, result in enumerate(response.results, start=1):
        print(f"{i:>2}. [{result.score:8.3f}] {result.title}")
        print(f"      {result.url}")
        print(f"      {result.snippet}")
    return 0


def _cmd_suggest(args) -> int:
    symphony = _build_platform(args.seed)
    suggestions = symphony.site_suggest(args.seeds, count=args.count)
    if not suggestions:
        print("no suggestions (no usage data; try after running apps)")
        return 1
    print(f"Sites related to {{{', '.join(args.seeds)}}}:")
    for suggestion in suggestions:
        print(f"  {suggestion.site:<32} {suggestion.score:.5f}")
    return 0


def _cmd_table1(args) -> int:
    from repro.baselines import (
        EureksterPlatform,
        GoogleBasePlatform,
        GoogleCustomSearchPlatform,
        RollyoPlatform,
        YahooBossPlatform,
        build_table_one,
    )
    from repro.baselines.probe import SymphonyProbeAdapter, format_table

    symphony = _build_platform(args.seed)
    table = build_table_one([
        SymphonyProbeAdapter(symphony),
        YahooBossPlatform(symphony.engine, ad_service=symphony.ads),
        RollyoPlatform(symphony.engine),
        EureksterPlatform(symphony.engine),
        GoogleCustomSearchPlatform(symphony.engine),
        GoogleBasePlatform(symphony.engine),
    ])
    print(format_table(table, cell_width=args.width))
    if table["problems"]:
        print("\nconsistency problems:")
        for problem in table["problems"]:
            print(f"  - {problem}")
        return 1
    print("\nall printed claims verified against live probes")
    return 0


def _cmd_demo(args) -> int:
    symphony = _build_platform(args.seed)
    app_id, games, session = _build_demo_app(symphony)
    print(session.describe_canvas())
    query = args.query or games[0]
    response = symphony.query(app_id, query, session_id="cli-demo")
    print()
    print(response.trace.describe())
    print()
    for view in response.views:
        print(f"* {view.item.title}")
        for result in view.supplemental.values():
            for item in result.items:
                print(f"    review: {item.title} ({item.get('site')})")
    return 0


def _cmd_telemetry(args) -> int:
    from repro.telemetry import load_jsonl, render_report

    if args.input:
        with open(args.input, "r", encoding="utf-8") as fileobj:
            data = load_jsonl(fileobj)
        print(render_report(data))
        return 0

    # No input file: run one traced demo query against a telemetry-
    # enabled clustered deployment and report what it recorded.
    symphony = _build_platform(args.seed, cluster=args.shards,
                               telemetry=True)
    app_id, games, __ = _build_demo_app(symphony)
    query = args.query or games[0]
    symphony.query(app_id, query, session_id="cli-telemetry")
    if args.output:
        count = symphony.export_telemetry(args.output)
        print(f"wrote {count} JSONL lines to {args.output}")
        print()
    if args.prometheus:
        print(symphony.telemetry.render_prometheus())
        return 0
    print(symphony.telemetry_report())
    return 0


def _cmd_chaos(args) -> int:
    from dataclasses import replace

    from repro.resilience.chaos import (
        FaultPlan,
        load_fault_plan,
        run_chaos,
    )

    plan = load_fault_plan(args.plan) if args.plan else FaultPlan()
    if args.queries:
        plan = replace(plan, queries=args.queries)
    report = run_chaos(plan)
    print(report.render())
    return 0 if report.ok else 1


def _gateway_report_from_export(data: dict) -> str:
    """Summarize gateway activity out of a telemetry JSONL export."""
    lines = ["Gateway report (from telemetry export):"]
    sheds = [e for e in data.get("events", ())
             if e.get("kind") == "gateway.shed"]
    by_reason: dict[str, int] = {}
    for event in sheds:
        reason = event.get("fields", {}).get("reason", "?")
        by_reason[reason] = by_reason.get(reason, 0) + 1
    lines.append(f"  shed events            {len(sheds)}")
    for reason in sorted(by_reason):
        lines.append(f"    {reason:<20} {by_reason[reason]}")
    bumps = [e for e in data.get("events", ())
             if e.get("kind") == "generation.bump"]
    lines.append(f"  generation bumps       {len(bumps)}")
    metrics = data.get("metrics", {})
    for kind in ("counter", "gauge"):
        for name, value in sorted(metrics.get(kind, {}).items()):
            if name.startswith("gateway_"):
                lines.append(f"  {name:<38} {value}")
    for name, summary in sorted(metrics.get("histogram", {}).items()):
        if name.startswith("gateway_"):
            lines.append(
                f"  {name:<38} count={summary.get('count', 0)} "
                f"p50={summary.get('p50', 0):.1f} "
                f"p99={summary.get('p99', 0):.1f}"
            )
    return "\n".join(lines)


def _cmd_gateway(args) -> int:
    from repro.telemetry import load_jsonl

    if args.input:
        with open(args.input, "r", encoding="utf-8") as fileobj:
            data = load_jsonl(fileobj)
        print(_gateway_report_from_export(data))
        return 0

    # No input: saturate a gateway-fronted deployment with a stampede of
    # duplicate queries plus distinct ones, then report what it did.
    from repro.errors import AdmissionRejectedError
    from repro.gateway import GatewayConfig, TenantPolicy

    config = GatewayConfig(
        workers=args.workers,
        default_policy=TenantPolicy(max_queue_depth=args.queue_depth),
    )
    symphony = _build_platform(args.seed, telemetry=True,
                               gateway=config)
    app_id, games, __ = _build_demo_app(symphony)
    submitted = 0
    for round_no in range(args.rounds):
        for game in games:
            # A stampede: every query arrives twice before dispatch.
            for __ in range(2):
                submitted += 1
                try:
                    symphony.gateway.submit(
                        _gateway_request(app_id, game, round_no)
                    )
                except AdmissionRejectedError:
                    pass
        symphony.gateway.pump()
    print(symphony.gateway.describe())
    if args.output:
        count = symphony.export_telemetry(args.output)
        print(f"\nwrote {count} JSONL lines to {args.output}")
    return 0


def _cmd_controlplane(args) -> int:
    from repro.cluster import ClusterConfig
    from repro.controlplane import AutoscalerPolicy
    from repro.resilience import ResilienceConfig

    symphony = _build_platform(
        args.seed,
        cluster=ClusterConfig(num_shards=args.shards,
                              replicas_per_shard=args.replicas),
        telemetry=True,
        # Hedging is what lets an added replica absorb latency spikes.
        resilience=ResilienceConfig(),
        controlplane=AutoscalerPolicy(
            latency_high_ms=args.latency_high,
            latency_low_ms=args.latency_low,
            breach_rounds=2, cooldown_ticks=2,
            max_replicas=3, split_min_docs=1, merge_max_docs=0,
        ),
    )
    engine = symphony.engine
    lifecycle = symphony.controlplane

    if args.split is not None or args.merge:
        if args.split is not None:
            migration = lifecycle.begin_split(args.split)
        else:
            migration = lifecycle.begin_merge(*args.merge)
        print(f"{migration.kind}: shard {migration.source_id} -> "
              f"{migration.target_id} "
              f"({len(migration.pending)} docs to move)")
        while lifecycle.active:
            state = lifecycle.step()
            response = engine.search("web", "news")
            status = lifecycle.status() or {"pending": 0}
            print(f"  {state:<9} pending={status['pending']:<5} "
                  f"query: {response.total_matches} matches, "
                  f"topology v{engine.topology_version}")
        print(f"done: shards {list(engine.router.snapshot().shard_ids)}"
              f", topology v{engine.topology_version}")
        return 0

    # Autoscale scenario: one shard runs hot (injected latency spikes);
    # watch the control loop add a replica, then split the shard.
    queries = ("news", "travel", "game review", "wine")
    print(f"cluster: {args.shards} shards x {args.replicas} replicas; "
          f"shard {args.hot_shard} hot "
          f"(+{args.spike_ms:.0f}ms spikes)")
    for __ in range(args.ticks):
        for replica in engine.groups[args.hot_shard].replicas:
            replica.inject_latency(args.spike_ms, 2)
        for query in queries:
            engine.search("web", query)
        decision = symphony.autoscaler.tick()
        marker = "*" if decision.acted else " "
        shard = "" if decision.shard_id is None \
            else f" shard={decision.shard_id}"
        print(f" {marker} tick {decision.tick:>2}: "
              f"{decision.action:<14}{shard}  {decision.reason}")
    while lifecycle.active:     # land any still-open split cleanly
        symphony.autoscaler.tick()
    route = engine.router.snapshot()
    print(f"final topology v{route.version}: shards "
          f"{list(route.shard_ids)}, replicas " + ", ".join(
              f"{sid}:{len(engine.groups[sid].replicas)}"
              for sid in route.shard_ids))
    for event in symphony.telemetry.events.by_kind(
            "autoscale.decision"):
        fields = event.fields
        print(f"  decision @tick {fields['tick']}: {fields['action']} "
              f"(shard {fields['shard']}) — {fields['reason']}")
    return 0


def _cmd_slo(args) -> int:
    """Burn an error budget live: a clustered deployment with the SLO
    layer on, one shard degraded mid-run, then the judgment report —
    and optionally the per-query latency attribution."""
    from repro.cluster import ClusterConfig
    from repro.slo import SLOConfig

    config = SLOConfig(
        latency_threshold_ms=args.latency_threshold,
        fast_window_ms=60_000,
        slow_window_ms=600_000,
        burn_threshold=3.0,
        min_events=6,
    )
    symphony = _build_platform(
        args.seed,
        cluster=ClusterConfig(num_shards=args.shards,
                              replicas_per_shard=2),
        slo=config,     # implies telemetry
        # The workload cycles a handful of titles; with the cache on,
        # post-fault repeats would never reach the degraded shard.
        cache_enabled=False,
    )
    app_id, games, __ = _build_demo_app(symphony)
    engine = symphony.engine
    print(f"cluster: {args.shards} shards x 2 replicas; "
          f"shard {args.hot_shard} slow (+{args.spike_ms:.0f}ms) "
          f"from query {args.fault_at} of {args.queries}")
    for index in range(args.queries):
        if index >= args.fault_at:
            for replica in engine.groups[args.hot_shard].replicas:
                replica.inject_latency(args.spike_ms, 4)
        symphony.query(app_id, games[index % len(games)],
                       session_id=f"cli-slo-{index}")
    print()
    print(symphony.slo_report())
    if args.explain:
        query_id = args.explain
        if query_id == "worst":
            worst = symphony.slo.worst_record()
            if worst is None:
                print("\nno breaching queries recorded")
                return 1
            query_id = worst.query_id
        attribution = symphony.explain_query(query_id)
        if attribution is None:
            print(f"\nno spans retained for query {query_id!r}")
            return 1
        print()
        print(attribution.render())
    return 0


def _cmd_durability(args) -> int:
    """Crash one replica under a live write stream, then repair it:
    checkpoint restore + WAL replay + digest proof, with the before and
    after state printed at each stage."""
    from repro.cluster import ClusterConfig
    from repro.durability import DurabilityConfig, content_digest
    from repro.searchengine.documents import FieldedDocument
    from repro.searchengine.engine import Vertical

    symphony = _build_platform(
        args.seed,
        cluster=ClusterConfig(num_shards=args.shards,
                              replicas_per_shard=args.replicas),
        telemetry=True,
        durability=DurabilityConfig(
            storage=args.storage,
            checkpoint_every=args.checkpoint_every,
        ),
    )
    engine = symphony.engine
    durability = symphony.durability
    shard, replica_index = args.crash_shard, args.crash_replica
    if replica_index >= len(engine.groups[shard].replicas):
        print(f"shard {shard} has no replica {replica_index}")
        return 1
    replica = engine.groups[shard].replicas[replica_index]

    def ingest(start: int, count: int) -> None:
        for number in range(start, start + count):
            engine.add_document(Vertical.WEB, FieldedDocument(
                f"cli-durability-{number}",
                {"title": f"durability doc {number}",
                 "url": f"http://durability.example/{number}"},
                None,
            ))

    print(f"cluster: {args.shards} shards x {args.replicas} replicas, "
          f"WAL storage={args.storage!r}, "
          f"checkpoint every {args.checkpoint_every} records")
    ingest(0, args.docs)
    print(f"ingested {args.docs} docs; shard {shard} WAL head at "
          f"lsn {durability.wal.last_lsn(shard)}")

    durability.crash_replica(shard, replica_index)
    ingest(args.docs, args.docs)
    print(f"\ncrashed {replica.replica_id}, then ingested "
          f"{args.docs} more docs:")
    print(f"  writes missed        {replica.writes_missed}")
    print(f"  docs on crashed node "
          f"{sum(len(v.index) for v in replica.verticals.values())}")
    queries = sum(1 for __ in range(4)
                  if engine.search("web", "durability doc"))
    print(f"  queries while down   {queries} answered "
          f"(reads on crashed node: {replica.reads_served})")

    report = durability.recover_replica(shard, replica_index)
    print(f"\nrecovered {replica.replica_id}:")
    print(f"  checkpoint lsn       {report.checkpoint_lsn} "
          f"({report.docs_restored} docs restored)")
    print(f"  WAL records replayed {report.records_replayed}")
    print(f"  catch-up (sim)       {report.catch_up_ms:.1f}ms")
    match = report.digest_match
    print(f"  digest vs peer       "
          f"{'match' if match else 'n/a (single replica)' if match is None else 'MISMATCH'}")
    peer = engine.groups[shard].primary()
    agree = content_digest(peer) == content_digest(replica)
    print(f"  back in rotation     {replica.healthy} "
          f"(state agrees with {peer.replica_id}: {agree})")
    return 0 if report.converged and agree else 1


def _gateway_request(app_id: str, query: str, round_no: int):
    from repro.core.runtime import QueryRequest
    return QueryRequest(app_id=app_id, query_text=query,
                        session_id=f"cli-gateway-{round_no}")


def _cmd_federation(args) -> int:
    """Compare fusion methods and query-generator strategies on a
    golden set of entity queries over a mixed backend registry."""
    from repro.baselines import RollyoPlatform, YahooBossPlatform
    from repro.federation import (
        FUSION_METHODS,
        STRATEGY_NAMES,
        baseline_backend,
    )

    symphony = _build_platform(args.seed)
    executor = symphony.enable_federation()
    sites = sorted({page.site for page in symphony.web.pages.values()})
    executor.registry.add(baseline_backend(
        RollyoPlatform(symphony.engine), sites=tuple(sites[:3]),
    ))
    executor.registry.add(baseline_backend(
        YahooBossPlatform(symphony.engine, ad_service=symphony.ads),
    ))
    backend_ids = executor.registry.ids()
    print("federated meta-search over backends: "
          + ", ".join(backend_ids))

    golden = _golden_entity_queries(symphony.web, args.queries)
    print(f"golden queries: {len(golden)} entities, "
          f"judged on entity-page URLs\n")

    count = args.count

    def recall(urls, relevant):
        return (len(set(urls[:count]) & relevant) / len(relevant)
                if relevant else 0.0)

    single = {}
    for backend_id in backend_ids:
        scores = [
            recall([i.url for i in executor.search(
                text, backend_ids=(backend_id,), count=count,
            ).items], relevant)
            for text, __, relevant in golden
        ]
        single[backend_id] = sum(scores) / len(scores)
    best_id = max(sorted(single), key=lambda b: single[b])

    print(f"fusion methods (recall@{count}, fused vs single backends)")
    for backend_id in backend_ids:
        marker = "  <- best single" if backend_id == best_id else ""
        print(f"  single:{backend_id:<14} {single[backend_id]:.3f}"
              f"{marker}")
    for method in FUSION_METHODS:
        scores = [
            recall([i.url for i in executor.search(
                text, count=count, fusion=method,
            ).items], relevant)
            for text, __, relevant in golden
        ]
        fused = sum(scores) / len(scores)
        delta = fused - single[best_id]
        print(f"  fused:{method:<15} {fused:.3f}  ({delta:+.3f} "
              f"vs best single)")

    print(f"\nquery-generator strategies (precision@{count} / cost)")
    lab = executor.lab
    # The fusion comparison above already charged the default strategy's
    # ledger; start the strategy shoot-out from a clean slate.
    lab.stats.clear()
    for strategy in STRATEGY_NAMES:
        for text, entity, relevant in golden:
            result = executor.search(
                text, count=count, strategy=strategy,
                context={"entity": entity},
            )
            lab.account(strategy,
                        [i.url for i in result.items], relevant)
    header = (f"  {'strategy':<10} {'queries':>7} {'cost':>8} "
              f"{'precision':>9} {'cost/relevant':>13}")
    print(header)
    for row in lab.report():
        cpr = row["cost_per_relevant"]
        cpr_text = "inf" if cpr == float("inf") else f"{cpr:.2f}"
        print(f"  {row['strategy']:<10} {row['queries']:>7} "
              f"{row['cost']:>8.1f} {row['precision']:>9.3f} "
              f"{cpr_text:>13}")
    return 0


def _golden_entity_queries(web, limit: int) -> list:
    """(query_text, entity, relevant-URL set) per entity, judged by the
    synthetic web's own entity field."""
    by_entity: dict = {}
    for page in web.pages.values():
        if page.entity:
            by_entity.setdefault(page.entity, set()).add(page.url)
    golden = []
    for entity in sorted(by_entity):
        if len(by_entity[entity]) < 2:
            continue
        golden.append((entity, entity, by_entity[entity]))
        if len(golden) >= limit:
            break
    return golden


def _cmd_contracts(args) -> int:
    """Govern a drifting feed live: the committed drifted-feed
    scenario (clean refreshes, silent producer drift, feed outage,
    contract update + quarantine replay), then the contract-status
    report and the rows still held in quarantine. Exits non-zero if
    any governance invariant failed."""
    from repro.contracts.scenario import run_drifted_feed

    symphony = _build_platform(args.seed, contracts=True, slo=True)
    report = run_drifted_feed(symphony)
    print(report.render())
    print()
    print(report.status_text)
    print()
    print("Quarantine")
    print("==========")
    held = 0
    for tenant_id, table in symphony.contracts.quarantine.tables():
        for entry in symphony.contracts.quarantined_rows(
                tenant_id, table):
            held += 1
            print(f"  {tenant_id}/{table} #{entry.seq} "
                  f"(source={entry.source or 'upload'}): {entry.row}")
            for violation in entry.violations:
                print(f"      - {violation.message}")
    if not held:
        print("  (empty)")
    if args.events:
        print()
        print("Event timeline")
        print("==============")
        for timestamp_ms, kind in report.events:
            print(f"  t={timestamp_ms:>6}ms  {kind}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Symphony reproduction command-line interface",
    )
    parser.add_argument("--seed", type=int, default=2010,
                        help="synthetic-web seed (default 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="synthetic web statistics")

    search = sub.add_parser("search", help="query a search vertical")
    search.add_argument("query")
    search.add_argument("--vertical", default="web",
                        choices=("web", "image", "video", "news"))
    search.add_argument("--count", type=int, default=5)
    search.add_argument("--site", action="append",
                        help="restrict to this site (repeatable)")

    suggest = sub.add_parser("suggest",
                             help="Site Suggest for seed sites")
    suggest.add_argument("seeds", nargs="+")
    suggest.add_argument("--count", type=int, default=5)

    table1 = sub.add_parser("table1",
                            help="regenerate the paper's Table I")
    table1.add_argument("--width", type=int, default=22)

    demo = sub.add_parser("demo", help="run the GamerQueen demo")
    demo.add_argument("--query", default="")

    telemetry = sub.add_parser(
        "telemetry",
        help="trace a demo query (or report an exported JSONL file)",
    )
    telemetry.add_argument("--query", default="",
                           help="query to trace (default: first game)")
    telemetry.add_argument("--shards", type=int, default=2,
                           help="cluster shard count (default 2)")
    telemetry.add_argument("--input", default="",
                           help="report a previously exported JSONL "
                                "file instead of running a query")
    telemetry.add_argument("--output", default="",
                           help="also export collected telemetry as "
                                "JSONL to this path")
    telemetry.add_argument("--prometheus", action="store_true",
                           help="print Prometheus text exposition "
                                "instead of the report")

    chaos = sub.add_parser(
        "chaos",
        help="run a chaos fault plan and check resilience invariants",
    )
    chaos.add_argument("--plan", default="",
                       help="path to a fault-plan JSON file (default: "
                            "built-in defaults)")
    chaos.add_argument("--queries", type=int, default=0,
                       help="override the plan's query count")

    gateway = sub.add_parser(
        "gateway",
        help="saturate the serving gateway (or report an export)",
    )
    gateway.add_argument("--rounds", type=int, default=3,
                         help="stampede rounds to submit (default 3)")
    gateway.add_argument("--workers", type=int, default=4,
                         help="modeled dispatch parallelism")
    gateway.add_argument("--queue-depth", type=int, default=16,
                         help="per-tenant queue bound (default 16)")
    gateway.add_argument("--input", default="",
                         help="report a previously exported telemetry "
                              "JSONL file instead of running traffic")
    gateway.add_argument("--output", default="",
                         help="also export collected telemetry as "
                              "JSONL to this path")

    controlplane = sub.add_parser(
        "controlplane",
        help="watch the autoscaler react to a hot shard, or drive a "
             "live shard split/merge",
    )
    controlplane.add_argument("--shards", type=int, default=2,
                              help="initial shard count (default 2)")
    controlplane.add_argument("--replicas", type=int, default=2,
                              help="replicas per shard (default 2)")
    controlplane.add_argument("--ticks", type=int, default=14,
                              help="autoscaler control-loop ticks")
    controlplane.add_argument("--hot-shard", type=int, default=0,
                              help="shard receiving latency spikes")
    controlplane.add_argument("--spike-ms", type=float, default=80.0,
                              help="injected replica latency per tick")
    controlplane.add_argument("--latency-high", type=float,
                              default=30.0,
                              help="scale-up threshold (windowed mean)")
    controlplane.add_argument("--latency-low", type=float, default=5.0,
                              help="scale-down threshold")
    controlplane.add_argument("--split", type=int, default=None,
                              metavar="SHARD",
                              help="instead: split SHARD live and show "
                                   "each migration step")
    controlplane.add_argument("--merge", type=int, nargs=2,
                              default=None,
                              metavar=("SOURCE", "TARGET"),
                              help="instead: merge SOURCE into TARGET")

    slo = sub.add_parser(
        "slo",
        help="burn an error budget against a degraded shard and "
             "report budgets, alerts, and latency attribution",
    )
    slo.add_argument("--queries", type=int, default=20,
                     help="queries to run (default 20)")
    slo.add_argument("--shards", type=int, default=2,
                     help="cluster shard count (default 2)")
    slo.add_argument("--hot-shard", type=int, default=1,
                     help="shard to degrade (default 1)")
    slo.add_argument("--spike-ms", type=float, default=500.0,
                     help="injected latency per read (default 500)")
    slo.add_argument("--fault-at", type=int, default=5,
                     help="query index the fault starts at (default 5)")
    slo.add_argument("--latency-threshold", type=float, default=400.0,
                     help="latency SLO threshold in ms (default 400)")
    slo.add_argument("--explain", default="",
                     metavar="QUERY_ID",
                     help="also print latency attribution for this "
                          "query id ('worst' picks the worst breach)")

    durability = sub.add_parser(
        "durability",
        help="crash a replica under a write stream, repair it from "
             "checkpoint + WAL replay, and prove convergence",
    )
    durability.add_argument("--shards", type=int, default=2,
                            help="cluster shard count (default 2)")
    durability.add_argument("--replicas", type=int, default=2,
                            help="replicas per shard (default 2)")
    durability.add_argument("--docs", type=int, default=40,
                            help="docs ingested before and after the "
                                 "crash (default 40 each)")
    durability.add_argument("--crash-shard", type=int, default=0,
                            help="shard losing a replica (default 0)")
    durability.add_argument("--crash-replica", type=int, default=1,
                            help="replica index to crash (default 1)")
    durability.add_argument("--storage", default="memory",
                            choices=("memory", "blob"),
                            help="WAL storage backend")
    durability.add_argument("--checkpoint-every", type=int, default=24,
                            help="auto-checkpoint cadence in WAL "
                                 "records (default 24)")

    federation = sub.add_parser(
        "federation",
        help="compare rank-fusion methods and query-generator "
             "strategies on a golden entity query set",
    )
    federation.add_argument("--queries", type=int, default=8,
                            help="golden entity queries (default 8)")
    federation.add_argument("--count", type=int, default=10,
                            help="fused results judged per query")

    contracts = sub.add_parser(
        "contracts",
        help="run the drifted-feed governance scenario: drift "
             "detection, quarantine + replay, freshness alerting",
    )
    contracts.add_argument("--events", action="store_true",
                           help="also print the contract/refresh "
                                "event timeline")
    return parser


_COMMANDS = {
    "stats": _cmd_stats,
    "search": _cmd_search,
    "suggest": _cmd_suggest,
    "table1": _cmd_table1,
    "demo": _cmd_demo,
    "telemetry": _cmd_telemetry,
    "chaos": _cmd_chaos,
    "gateway": _cmd_gateway,
    "controlplane": _cmd_controlplane,
    "slo": _cmd_slo,
    "durability": _cmd_durability,
    "federation": _cmd_federation,
    "contracts": _cmd_contracts,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
