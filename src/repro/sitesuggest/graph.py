"""Weighted site co-occurrence graph mined from query/click logs."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

__all__ = ["SiteCooccurrenceGraph"]


@dataclass
class SiteCooccurrenceGraph:
    """Undirected weighted graph: weight = #queries both sites were
    clicked for (log evidence) plus optional link-structure prior."""

    weights: dict = field(default_factory=dict)   # site -> {site: weight}
    site_counts: dict = field(default_factory=dict)  # site -> total weight
    total_weight: float = 0.0

    # -- construction -----------------------------------------------------------

    def add_edge(self, a: str, b: str, weight: float = 1.0) -> None:
        if a == b or weight <= 0:
            return
        for src, dst in ((a, b), (b, a)):
            row = self.weights.setdefault(src, {})
            row[dst] = row.get(dst, 0.0) + weight
        self.site_counts[a] = self.site_counts.get(a, 0.0) + weight
        self.site_counts[b] = self.site_counts.get(b, 0.0) + weight
        self.total_weight += weight

    @classmethod
    def from_query_log(cls, log) -> "SiteCooccurrenceGraph":
        """Each query with clicks on k sites adds C(k,2) co-click edges."""
        graph = cls()
        for sites in log.clicked_sites_by_query().values():
            for a, b in combinations(sorted(sites), 2):
                graph.add_edge(a, b, 1.0)
        return graph

    def blend_link_graph(self, domain_links: dict,
                         weight: float = 0.25) -> None:
        """Mix in the web's cross-site link counts as a weak prior.

        Useful when click logs are sparse (a cold-start application); the
        prior weight keeps log evidence dominant.
        """
        for source, targets in domain_links.items():
            for target, count in targets.items():
                self.add_edge(source, target, weight * count)

    # -- accessors ---------------------------------------------------------------

    def sites(self) -> list[str]:
        return sorted(self.weights)

    def neighbors(self, site: str) -> dict:
        return dict(self.weights.get(site, {}))

    def edge_weight(self, a: str, b: str) -> float:
        return self.weights.get(a, {}).get(b, 0.0)

    def degree(self, site: str) -> float:
        return sum(self.weights.get(site, {}).values())

    def pmi(self, a: str, b: str) -> float:
        """Pointwise mutual information between two sites' occurrences."""
        joint = self.edge_weight(a, b)
        if joint <= 0 or self.total_weight <= 0:
            return 0.0
        p_joint = joint / self.total_weight
        p_a = self.site_counts.get(a, 0.0) / (2 * self.total_weight)
        p_b = self.site_counts.get(b, 0.0) / (2 * self.total_weight)
        if p_a <= 0 or p_b <= 0:
            return 0.0
        import math
        return math.log(p_joint / (p_a * p_b))
