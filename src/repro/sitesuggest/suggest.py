"""Related-site suggestion over the co-occurrence graph.

Two scorers:

* ``random_walk`` (default) — personalized PageRank from the seed set;
  robust to popularity skew because restart mass stays near the seeds;
* ``pmi`` — max pointwise mutual information to any seed; sharper but
  noisier on thin logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["Suggestion", "SiteSuggest"]


@dataclass(frozen=True)
class Suggestion:
    site: str
    score: float
    method: str


class SiteSuggest:
    """Suggests sites related to an already-specified seed set (§II-A)."""

    def __init__(self, graph, restart: float = 0.25,
                 iterations: int = 30) -> None:
        self._graph = graph
        self._restart = restart
        self._iterations = iterations

    def suggest(self, seeds, count: int = 5,
                method: str = "random_walk") -> list[Suggestion]:
        seeds = [s for s in dict.fromkeys(seeds)]
        if not seeds:
            raise ValidationError("site suggestion needs at least one seed")
        if method == "random_walk":
            scores = self._random_walk_scores(seeds)
        elif method == "pmi":
            scores = self._pmi_scores(seeds)
        else:
            raise ValidationError(
                f"unknown suggestion method {method!r}; "
                "expected 'random_walk' or 'pmi'"
            )
        seed_set = set(seeds)
        ranked = sorted(
            ((site, score) for site, score in scores.items()
             if site not in seed_set and score > 0),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return [Suggestion(site, round(score, 8), method)
                for site, score in ranked[:count]]

    # -- scorers -------------------------------------------------------------

    def _random_walk_scores(self, seeds) -> dict:
        graph = self._graph
        known_seeds = [s for s in seeds if s in graph.weights]
        if not known_seeds:
            return {}
        restart_mass = 1.0 / len(known_seeds)
        scores = {seed: restart_mass for seed in known_seeds}
        for _ in range(self._iterations):
            spread: dict[str, float] = {}
            for site, mass in scores.items():
                neighbors = graph.weights.get(site, {})
                degree = sum(neighbors.values())
                if degree <= 0:
                    continue
                for target, weight in neighbors.items():
                    spread[target] = spread.get(target, 0.0) + (
                        (1.0 - self._restart) * mass * weight / degree
                    )
            next_scores = {
                seed: self._restart * restart_mass for seed in known_seeds
            }
            for site, mass in spread.items():
                next_scores[site] = next_scores.get(site, 0.0) + mass
            scores = next_scores
        return scores

    def _pmi_scores(self, seeds) -> dict:
        graph = self._graph
        scores: dict[str, float] = {}
        for site in graph.sites():
            best = 0.0
            for seed in seeds:
                if graph.edge_weight(site, seed) > 0:
                    best = max(best, graph.pmi(site, seed))
            if best > 0:
                scores[site] = best
        return scores
