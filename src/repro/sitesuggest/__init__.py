"""Site Suggest: related-site recommendation from usage data.

The paper's §II-A: "A Site Suggest feature is provided that can suggest
additional related sites to include based on the set already specified",
citing Fuxman et al.'s wisdom-of-the-crowds keyword generation [2]. That
work's core signal is co-occurrence in query/click logs: two sites are
related when users click both for the same queries. We rebuild that signal
from the local engine's logs (optionally blended with the synthetic web's
link structure) and rank candidates by personalized random walk from the
seed set, with a PMI scorer as an alternative.
"""

from repro.sitesuggest.graph import SiteCooccurrenceGraph
from repro.sitesuggest.suggest import SiteSuggest, Suggestion

__all__ = ["SiteCooccurrenceGraph", "SiteSuggest", "Suggestion"]
