"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build. This shim
lets ``python setup.py develop`` (and older pip versions) install the
package from ``pyproject.toml`` metadata instead.
"""

from setuptools import setup

setup()
