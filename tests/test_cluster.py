"""Unit and integration tests for the ``repro.cluster`` subsystem."""

import time

import pytest

from repro.cluster import (
    ClusterConfig,
    ScatterGatherExecutor,
    ShardRouter,
    build_clustered_engine,
    merge_ranked,
)
from repro.cluster.replica import ReplicaGroup, ShardReplica
from repro.errors import (
    DuplicateError,
    NotFoundError,
    ReplicaFaultError,
    ShardUnavailableError,
)
from repro.searchengine.documents import FieldedDocument
from repro.searchengine.engine import (
    SearchOptions,
    build_engine,
    make_vertical_indexes,
)


@pytest.fixture()
def cluster(small_web):
    """A fresh 4x2 cluster per test (tests mutate health/contents)."""
    engine = build_clustered_engine(
        small_web,
        ClusterConfig(num_shards=4, replicas_per_shard=2),
        use_authority=False,
    )
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def single(small_web):
    return build_engine(small_web, use_authority=False)


class TestShardRouter:
    def test_routing_is_stable_and_in_range(self):
        router = ShardRouter(5)
        ids = [f"http://site-{i}.example/page" for i in range(200)]
        first = [router.shard_of(doc_id) for doc_id in ids]
        second = [router.shard_of(doc_id) for doc_id in ids]
        assert first == second
        assert all(0 <= shard < 5 for shard in first)
        # A hash router should actually spread documents around.
        assert len(set(first)) == 5

    def test_partition_covers_everything(self):
        router = ShardRouter(3)
        ids = [f"doc-{i}" for i in range(50)]
        parts = router.partition(ids)
        assert sorted(parts) == [0, 1, 2]
        regathered = [d for shard in parts.values() for d in shard]
        assert sorted(regathered) == sorted(ids)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


def make_replica(shard_id=0, replica_index=0):
    return ShardReplica(shard_id, replica_index,
                        make_vertical_indexes())


class TestReplicaGroup:
    def test_failover_skips_faulted_replica(self):
        first, second = make_replica(0, 0), make_replica(0, 1)
        group = ReplicaGroup(0, [first, second])
        first.inject_fault(count=1)
        second.inject_fault(count=1)
        # Whichever replica rotation picks first is faulted, the group
        # falls through to the other — also faulted, so the first call
        # exhausts the group. The faults are consumed doing so, and the
        # next call succeeds.
        with pytest.raises(ShardUnavailableError):
            group.run(lambda r: r.collect_stats("web", ["x"]))
        stats = group.run(lambda r: r.collect_stats("web", ["x"]))
        assert stats.doc_count == 0

    def test_repeated_failures_remove_replica_from_rotation(self):
        flaky, stable = make_replica(0, 0), make_replica(0, 1)
        group = ReplicaGroup(0, [flaky, stable], failure_threshold=2)
        flaky.inject_fault(count=10)
        for __ in range(4):
            group.run(lambda r: r.collect_stats("web", ["x"]))
        assert not flaky.healthy
        assert stable.healthy

    def test_all_down_raises_shard_unavailable(self):
        group = ReplicaGroup(0, [make_replica(), make_replica(0, 1)])
        group.kill(0)
        group.kill(1)
        assert group.all_down
        with pytest.raises(ShardUnavailableError):
            group.run(lambda r: r.doc_count("web"))

    def test_revive_restores_service(self):
        group = ReplicaGroup(0, [make_replica()])
        group.kill(0)
        with pytest.raises(ShardUnavailableError):
            group.run(lambda r: r.doc_count("web"))
        group.revive(0)
        assert group.run(lambda r: r.doc_count("web")) == 0

    def test_writes_reach_killed_replicas(self):
        group = ReplicaGroup(0, [make_replica(), make_replica(0, 1)])
        group.kill(1)
        doc = FieldedDocument(doc_id="d1", fields={"title": "hello"})
        group.broadcast(lambda r: r.add("web", doc))
        group.revive(1)
        assert group.replicas[1].doc_count("web") == 1


class TestScatterGatherExecutor:
    def test_parallel_dispatch_collects_all(self):
        with ScatterGatherExecutor(max_workers=4) as executor:
            outcomes = executor.scatter(
                {i: (lambda i=i: i * i) for i in range(8)}
            )
        assert all(out.ok for out in outcomes.values())
        assert {i: out.value for i, out in outcomes.items()} == \
            {i: i * i for i in range(8)}

    def test_exception_is_isolated_per_shard(self):
        def boom():
            raise ReplicaFaultError("nope")
        with ScatterGatherExecutor(max_workers=2) as executor:
            outcomes = executor.scatter({0: boom, 1: lambda: "fine"})
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, ReplicaFaultError)
        assert outcomes[1].ok and outcomes[1].value == "fine"

    def test_per_shard_timeout(self):
        with ScatterGatherExecutor(max_workers=2,
                                   shard_timeout_s=0.05) as executor:
            outcomes = executor.scatter({
                0: lambda: time.sleep(0.5) or "late",
                1: lambda: "quick",
            })
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, TimeoutError)
        assert outcomes[1].ok

    def test_merge_ranked_orders_and_tags(self):
        merged = list(merge_ranked({
            0: [("a", 3.0), ("c", 1.0)],
            1: [("b", 2.0), ("d", 1.0)],
        }))
        assert merged == [("a", 3.0, 0), ("b", 2.0, 1),
                          ("c", 1.0, 0), ("d", 1.0, 1)]


class TestClusteredSearch:
    def test_document_partitioning_is_complete(self, cluster, single):
        for vertical in ("web", "image", "video", "news"):
            assert cluster.doc_count(vertical) == \
                len(single.vertical(vertical).index)
        # No shard holds everything: the corpus is actually split.
        web_counts = [
            group.replicas[0].doc_count("web")
            for group in cluster.groups
        ]
        assert all(count > 0 for count in web_counts)
        assert max(web_counts) < cluster.doc_count("web")

    def test_search_logs_query_event(self, cluster):
        cluster.search("web", "wine", app_id="app-x",
                       session_id="s-1")
        event = cluster.log.queries[-1]
        assert event.app_id == "app-x"
        assert event.session_id == "s-1"
        assert event.vertical == "web"

    def test_single_replica_kill_is_invisible(self, cluster, single):
        baseline = cluster.search("web", "wine tasting")
        cluster.kill_replica(0, 0)
        response = cluster.search("web", "wine tasting")
        assert not response.degraded
        assert response.urls() == baseline.urls()

    def test_whole_shard_down_degrades_not_fails(self, cluster):
        everything = SearchOptions(count=500)
        healthy = cluster.search("web", "wine", everything)
        cluster.kill_replica(1, 0)
        cluster.kill_replica(1, 1)
        degraded = cluster.search("web", "wine", everything)
        assert degraded.degraded
        assert degraded.failed_shards == (1,)
        assert degraded.shards_ok == 3
        assert degraded.shards_total == 4
        # Partial results: a subset of the healthy result set.
        assert degraded.total_matches < healthy.total_matches
        assert set(degraded.urls()) <= set(healthy.urls())

    def test_fault_injection_fails_over_silently(self, cluster):
        baseline = cluster.search("web", "wine tasting")
        for group in cluster.groups:
            group.replicas[0].inject_fault(count=1)
        response = cluster.search("web", "wine tasting")
        assert not response.degraded
        assert response.urls() == baseline.urls()

    def test_revive_restores_full_results(self, cluster):
        healthy = cluster.search("web", "wine")
        cluster.kill_replica(2, 0)
        cluster.kill_replica(2, 1)
        assert cluster.search("web", "wine").degraded
        cluster.revive_replica(2, 1)
        recovered = cluster.search("web", "wine")
        assert not recovered.degraded
        assert recovered.urls() == healthy.urls()

    def test_health_snapshot(self, cluster):
        cluster.kill_replica(3, 1)
        health = cluster.health()
        assert health[3] == [True, False]
        assert health[0] == [True, True]

    def test_incremental_add_remove(self, cluster):
        doc = FieldedDocument(
            doc_id="http://added.example/zzyzx",
            fields={"url": "http://added.example/zzyzx",
                    "title": "zzyzx chronicle", "body": "zzyzx body",
                    "site": "added.example", "topic": "wine"},
        )
        shard_id = cluster.add_document("web", doc)
        assert 0 <= shard_id < cluster.num_shards
        found = cluster.search("web", "zzyzx")
        assert found.urls() == [doc.doc_id]
        with pytest.raises(DuplicateError):
            cluster.add_document("web", doc)
        cluster.remove_document("web", doc.doc_id)
        assert cluster.search("web", "zzyzx").total_matches == 0
        with pytest.raises(NotFoundError):
            cluster.remove_document("web", doc.doc_id)

    def test_added_document_survives_replica_failover(self, cluster):
        doc = FieldedDocument(
            doc_id="http://added.example/qwxyz",
            fields={"url": "http://added.example/qwxyz",
                    "title": "qwxyz report", "body": "qwxyz",
                    "site": "added.example", "topic": "wine"},
        )
        shard_id = cluster.add_document("web", doc)
        cluster.kill_replica(shard_id, 0)
        response = cluster.search("web", "qwxyz")
        assert not response.degraded
        assert response.urls() == [doc.doc_id]

    def test_vertical_view_supports_signals_surface(self, cluster):
        view = cluster.vertical("web")
        some_url = cluster.search("web", "wine").urls()[0]
        assert some_url in view.index
        assert view.index.document(some_url).get("url") == some_url
        assert len(view.index) == cluster.doc_count("web")
        assert "http://nowhere.example/" not in view.index
        # Authority is the single shared dict all shards blend from.
        view.authority["boosted"] = 0.5
        assert cluster.authority["boosted"] == 0.5

    def test_pagination_matches_single_node(self, cluster, single):
        for offset in (0, 3, 10):
            options = SearchOptions(count=5, offset=offset)
            assert cluster.search("web", "wine", options).urls() == \
                single.search("web", "wine", options).urls()

    def test_latency_is_max_over_shards_not_sum(self, cluster, single):
        query = "wine"  # broad: many candidates per shard
        a = single.search("web", query)
        b = cluster.search("web", query)
        assert b.elapsed_ms < a.elapsed_ms

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(replicas_per_shard=0)


class TestSymphonyClusterIntegration:
    def test_platform_opt_in_runs_apps_unchanged(self, tiny_web):
        from repro.core.platform import Symphony
        from tests.conftest import make_inventory_csv

        symphony = Symphony(web=tiny_web, use_authority=False,
                            cluster=2)
        account = symphony.register_designer("Ann")
        games = symphony.web.entities["video_games"][:3]
        symphony.upload_http(account, "inv.csv",
                             make_inventory_csv(games), "inventory",
                             content_type="text/csv")
        inventory = symphony.add_proprietary_source(
            account, "inventory", ("title",))
        reviews = symphony.add_web_source("Reviews", "web")
        session = symphony.designer().new_application(
            "Shop", account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",))
        session.add_text(slot, "title")
        session.drag_source_onto_result_layout(
            slot, reviews.source_id, drive_fields=("title",))
        app_id = symphony.host(session)

        response = symphony.query(app_id, games[0])
        assert response.views
        assert symphony.engine.log.queries
        # The app keeps answering with a whole shard dark.
        symphony.engine.kill_replica(0, 0)
        assert symphony.query(app_id, games[1]).views
        symphony.engine.close()
