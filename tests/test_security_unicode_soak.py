"""Security, unicode robustness, and soak tests.

Symphony renders designer- and advertiser-supplied data into HTML that
runs inside *other people's* pages — escaping failures are XSS against
every embedding site. These tests push hostile and non-ASCII content
through the full pipeline, then soak the platform under a mixed workload
and check the global invariants still hold.
"""

import pytest

from repro.errors import ReproError

from tests.conftest import make_inventory_csv


HOSTILE = "<script>alert('xss')</script>"
HOSTILE_ATTR = '" onmouseover="steal()'


class TestXssThroughData:
    @pytest.fixture()
    def hostile_app(self, symphony, designer_account):
        sym = symphony
        rows = (
            "title,description,detail_url\n"
            f'"{HOSTILE}","desc with {HOSTILE_ATTR}",'
            "http://shop.example/1\n"
            '"Clean Game","<b>bold</b> claims",http://shop.example/2\n'
        )
        sym.upload_http(designer_account, "inv.csv", rows.encode(),
                        "inventory", content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory", ("title", "description"))
        session = sym.designer().new_application(
            "Hostile", designer_account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",
                                                "description"))
        session.add_hyperlink(slot, "title", href_field="detail_url")
        session.add_text(slot, "description")
        return sym, sym.host(session)

    def test_script_tags_escaped_in_response(self, hostile_app):
        sym, app_id = hostile_app
        response = sym.query(app_id, "script alert")
        assert response.views  # the hostile row matched
        assert "<script>alert" not in response.html
        assert "&lt;script&gt;" in response.html

    def test_attribute_injection_escaped(self, hostile_app):
        sym, app_id = hostile_app
        response = sym.query(app_id, "desc mouseover")
        assert 'onmouseover="steal()"' not in response.html

    def test_html_in_data_not_interpreted(self, hostile_app):
        sym, app_id = hostile_app
        response = sym.query(app_id, "clean game")
        assert "<b>bold</b>" not in response.html
        assert "&lt;b&gt;bold&lt;/b&gt;" in response.html

    def test_frontend_serves_escaped_html(self, hostile_app):
        sym, app_id = hostile_app
        http = sym.frontend.handle(f"/apps/{app_id}/query",
                                   {"q": "script alert"})
        assert http.ok
        assert "<script>alert" not in http.body

    def test_hostile_ad_copy_escaped(self, symphony, designer_account):
        sym = symphony
        games = sym.web.entities["video_games"][:2]
        sym.upload_http(designer_account, "inv.csv",
                        make_inventory_csv(games), "inventory",
                        content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory", ("title",))
        ads_source = sym.add_ad_source()
        advertiser = sym.ads.create_advertiser("Evil", 10.0)
        sym.ads.create_campaign(
            advertiser.advertiser_id, [games[0]], 0.2,
            headline=HOSTILE, url="http://evil.example",
            body=HOSTILE_ATTR,
        )
        session = sym.designer().new_application(
            "AdApp", designer_account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("title",))
        session.add_text(slot, "title")
        session.drag_source_onto_app(ads_source.source_id)
        app_id = sym.host(session)
        response = sym.query(app_id, games[0])
        assert response.ads
        assert "<script>alert" not in response.html

    def test_hostile_query_text_escaped_in_data_attrs(self,
                                                      hostile_app):
        sym, app_id = hostile_app
        # A query containing quotes must not break out of attributes.
        response = sym.query(app_id, 'clean "game"')
        assert 'data-app="' in response.html


class TestUnicodeRobustness:
    def test_unicode_upload_roundtrips(self, symphony,
                                       designer_account):
        sym = symphony
        rows = ("title,description\n"
                "Café Zürich,übergood niño 東京 игра\n"
                "Plain Game,ascii only\n").encode("utf-8")
        report = sym.upload_http(designer_account, "inv.csv", rows,
                                 "inventory", content_type="text/csv")
        assert report.inserted == 2
        table = designer_account.tenant.table("inventory")
        record = table.find("title", "Café Zürich")[0]
        assert "東京" in record.values["description"]

    def test_unicode_searchable_via_ascii_tokens(self, symphony,
                                                 designer_account):
        sym = symphony
        rows = ("title,description\n"
                "Café Game,delicious coffee game\n").encode("utf-8")
        sym.upload_http(designer_account, "inv.csv", rows,
                        "inventory", content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory", ("title", "description"))
        from repro.core.datasources import SourceQuery
        # The ASCII tokens of the row remain searchable; non-ASCII
        # codepoints are outside the tokenizer's alphabet by design.
        assert inventory.search(SourceQuery("coffee")).total_matches \
            == 1

    def test_unicode_renders_escaped_but_intact(self, symphony,
                                                designer_account):
        sym = symphony
        rows = ("title,description\n"
                "Café Zürich,great für alle\n").encode("utf-8")
        sym.upload_http(designer_account, "inv.csv", rows,
                        "inventory", content_type="text/csv")
        inventory = sym.add_proprietary_source(
            designer_account, "inventory", ("description",))
        session = sym.designer().new_application(
            "U", designer_account.tenant.tenant_id)
        slot = session.drag_source_onto_app(
            inventory.source_id, search_fields=("description",))
        session.add_text(slot, "title")
        app_id = sym.host(session)
        response = sym.query(app_id, "great alle")
        assert "Café Zürich" in response.html

    def test_unicode_query_does_not_crash(self, gamerqueen):
        symphony, app_id, __ = gamerqueen
        response = symphony.query(app_id, "東京 ゲーム café")
        assert response.views == ()  # no ASCII tokens -> no matches


class TestSoak:
    def test_mixed_workload_invariants(self, symphony_small):
        """Three apps, many sessions: logs, cache, ledger, and traces
        all stay consistent."""
        sym = symphony_small
        app_ids = []
        all_games = sym.web.entities["video_games"]
        for owner_index in range(3):
            account = sym.register_designer(f"Owner{owner_index}")
            games = all_games[owner_index * 4:(owner_index + 1) * 4]
            sym.upload_http(account, "inv.csv",
                            make_inventory_csv(games), "inventory",
                            content_type="text/csv")
            inventory = sym.add_proprietary_source(
                account, "inventory", ("title",))
            reviews = sym.add_web_source(
                f"Reviews {owner_index}", "web",
                sites=("gamespot.com", "ign.com"))
            session = sym.designer().new_application(
                f"App{owner_index}", account.tenant.tenant_id)
            slot = session.drag_source_onto_app(
                inventory.source_id, max_results=2,
                search_fields=("title",))
            session.add_hyperlink(slot, "title",
                                  href_field="detail_url")
            session.drag_source_onto_result_layout(
                slot, reviews.source_id, drive_fields=("title",),
                max_results=2, query_suffix="review")
            app_ids.append((sym.host(session), games))

        total_queries = 0
        for round_number in range(5):
            for app_id, games in app_ids:
                for game in games[:3]:
                    response = sym.query(
                        app_id, game,
                        session_id=f"r{round_number}")
                    total_queries += 1
                    assert response.html
                    # Warnings must never mention hard failures.
                    assert not any("failed" in w
                                   for w in response.trace.warnings)
                    if response.views and response.views[0].item.url:
                        sym.record_click(
                            app_id, game,
                            response.views[0].item.url,
                            session_id=f"r{round_number}")

        # Per-app logs partition the traffic exactly.
        app_query_counts = sum(
            len([q for q in sym.engine.log.queries_for_app(app_id)
                 if q.vertical == "app"])
            for app_id, __ in app_ids
        )
        assert app_query_counts == total_queries
        # The cache never exceeds its bound.
        assert len(sym.runtime.cache) <= sym.runtime.cache.max_entries
        # Repeat rounds were served with cache participation.
        final = sym.query(app_ids[0][0], app_ids[0][1][0])
        assert final.trace.cache_hits > 0
        # Summaries agree with the raw log.
        for app_id, __ in app_ids:
            summary = sym.traffic_summary(app_id)
            assert summary.click_count == len(
                sym.engine.log.clicks_for_app(app_id))

    def test_errors_never_escape_the_frontend(self, gamerqueen):
        """The HTTP surface maps every library error to a status."""
        symphony, app_id, games = gamerqueen
        attempts = [
            (f"/apps/{app_id}/query", {"q": games[0]}),
            (f"/apps/{app_id}/query", {"q": "   "}),
            (f"/apps/{app_id}/query", {"q": "((("}),
            ("/apps/ghost/query", {"q": "x"}),
            (f"/apps/{app_id}/query", {"q": "x", "page": "NaN"}),
        ]
        for path, params in attempts:
            try:
                response = symphony.frontend.handle(path, params)
            except ReproError as exc:  # pragma: no cover
                pytest.fail(f"{path} {params} leaked {exc!r}")
            assert 200 <= response.status < 500
