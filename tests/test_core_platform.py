"""Tests for the Symphony facade: accounts, uploads, sources, hosting,
execution, monetization, Site Suggest, and capability probes."""

import pytest

from repro.errors import AuthorizationError, NotFoundError
from repro.ingest.crawler import CrawlPolicy
from repro.storage.tokens import Scope

from tests.conftest import make_inventory_csv


class TestAccounts:
    def test_register_creates_tenant_and_admin_token(self, symphony):
        account = symphony.register_designer("Ann")
        assert account.tenant.tenant_id.startswith("tenant-")
        tenant = symphony.catalog.open(
            account.token, account.tenant.tenant_id, Scope.ADMIN
        )
        assert tenant is account.tenant

    def test_designers_isolated(self, symphony):
        ann = symphony.register_designer("Ann")
        bea = symphony.register_designer("Bea")
        with pytest.raises(AuthorizationError):
            symphony.catalog.open(ann.token, bea.tenant.tenant_id,
                                  Scope.READ)


class TestUploads:
    def test_http_upload_creates_table(self, symphony, designer_account):
        games = symphony.web.entities["video_games"][:3]
        report = symphony.upload_http(
            designer_account, "inv.csv", make_inventory_csv(games),
            "inventory", content_type="text/csv",
        )
        assert report.inserted == 3
        assert designer_account.tenant.has_table("inventory")

    def test_ftp_upload(self, symphony, designer_account):
        games = symphony.web.entities["video_games"][:2]
        symphony.ftp.put("/drop/inv.csv", make_inventory_csv(games))
        report = symphony.upload_ftp(
            designer_account, "/drop/inv.csv", "inventory",
            content_type="text/csv",
        )
        assert report.inserted == 2

    def test_rss_ingest_from_simweb(self, symphony, designer_account):
        domain = next(iter(symphony.web.sites))
        report = symphony.ingest_rss_feed(
            designer_account, domain, "news_items"
        )
        assert report.inserted > 0
        table = designer_account.tenant.table("news_items")
        assert "link" in table.schema.field_names()

    def test_crawl_into_table(self, symphony, designer_account):
        seeds = [p.url
                 for p in symphony.web.pages_on("gamespot.com")[:2]]
        report = symphony.crawl_into(
            designer_account, seeds, "crawled",
            CrawlPolicy(max_pages=6),
        )
        assert 0 < report.inserted <= 6


class TestSources:
    def test_proprietary_source_requires_table(self, symphony,
                                               designer_account):
        with pytest.raises(NotFoundError):
            symphony.add_proprietary_source(
                designer_account, "missing", ("title",)
            )

    def test_source_ids_unique(self, symphony):
        a = symphony.add_web_source("A", "web")
        b = symphony.add_web_source("B", "image")
        assert a.source_id != b.source_id
        assert symphony.sources.get(a.source_id) is a

    def test_service_source_wired_to_bus(self, symphony):
        from repro.services.samples import PricingService
        symphony.bus.register(PricingService(seed=2))
        source = symphony.add_service_source(
            "Pricing", "pricing", "GET /prices/{sku}", "sku",
            item_fields=("sku", "price"),
        )
        from repro.core.datasources import SourceQuery
        result = source.search(SourceQuery("halo"))
        assert result.items[0].fields["price"] > 0

    def test_customer_source(self, symphony):
        source = symphony.add_customer_source()
        source.set_profile("u1", ("rpg",))
        assert source.rewrite("x", "u1") != "x"


class TestHostingAndExecution:
    def test_gamerqueen_end_to_end(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        response = symphony.query(app_id, games[0])
        assert response.views
        first = response.views[0]
        assert games[0].lower() in first.item.title.lower()
        supplemental = list(first.supplemental.values())[0]
        assert supplemental.items  # reviews found on restricted sites
        assert "symphony-app" in response.html

    def test_host_rejects_invalid_session(self, symphony,
                                          designer_account):
        designer = symphony.designer()
        session = designer.new_application(
            "Empty", designer_account.tenant.tenant_id
        )
        with pytest.raises(Exception):
            symphony.host(session)

    def test_publish_embed_mounts_route(self, gamerqueen):
        symphony, app_id, __ = gamerqueen
        snippet = symphony.publish_embed(app_id,
                                         "http://gamerqueen.example")
        resolved = symphony.router.resolve(
            f"/apps/{app_id}/query", snippet.embed_key
        )
        assert resolved == app_id

    def test_publish_social(self, gamerqueen):
        symphony, app_id, __ = gamerqueen
        publication = symphony.publish_social(app_id)
        assert publication.target == "facebook"
        assert "facebook.example" in publication.location

    def test_queries_logged_per_app(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        symphony.query(app_id, games[0], session_id="s1")
        app_queries = symphony.engine.log.queries_for_app(app_id)
        assert app_queries


class TestMonetizationFacade:
    def test_click_and_summary(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        response = symphony.query(app_id, games[0])
        url = response.views[0].item.get("detail_url")
        symphony.record_click(app_id, games[0], url)
        summary = symphony.traffic_summary(app_id)
        assert summary.click_count == 1
        report = symphony.referral_report(app_id, rate_per_click=0.25)
        assert report.total_owed() == 0.25

    def test_ad_flow_credits_designer(self, symphony, designer_account):
        games = symphony.web.entities["video_games"][:3]
        symphony.upload_http(
            designer_account, "inv.csv", make_inventory_csv(games),
            "inventory", content_type="text/csv",
        )
        inventory = symphony.add_proprietary_source(
            designer_account, "inventory", ("title",)
        )
        ads_source = symphony.add_ad_source()
        advertiser = symphony.ads.create_advertiser("GameCo", 20.0)
        symphony.ads.create_campaign(
            advertiser.advertiser_id, [games[0]], 0.50,
            "Buy it", "http://gameco.example",
        )
        designer = symphony.designer()
        session = designer.new_application(
            "Shop", designer_account.tenant.tenant_id
        )
        slot = session.drag_source_onto_app(inventory.source_id,
                                            search_fields=("title",))
        session.add_text(slot, "title")
        session.drag_source_onto_app(ads_source.source_id,
                                     heading="Sponsored")
        app_id = symphony.host(session)
        response = symphony.query(app_id, games[0])
        assert response.ads
        ad = response.ads[0]
        symphony.record_click(app_id, games[0], ad.url,
                              ad_id=ad.get("ad_id"))
        assert symphony.designer_ad_earnings(app_id) > 0


class TestSiteSuggestFacade:
    def test_suggest_after_usage(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        # Generate co-clicks: same query clicking two review sites.
        for game in games[:3]:
            symphony.record_click(app_id, game,
                                  f"http://gamespot.com/{game}")
            symphony.record_click(app_id, game,
                                  f"http://ign.com/{game}")
        suggestions = symphony.site_suggest(["gamespot.com"], count=3,
                                            blend_links=False)
        assert suggestions
        assert suggestions[0].site == "ign.com"

    def test_blend_links_widens_cold_start(self, symphony):
        suggestions = symphony.site_suggest(["gamespot.com"], count=3,
                                            blend_links=True)
        assert suggestions  # works with zero click history


class TestCapabilityProbes:
    def test_profile_matches_paper_claims(self, symphony):
        profile = symphony.capability_profile()
        assert profile.system == "Symphony"
        assert profile.custom_sites == "Supported"
        assert "Drag'n'drop" == profile.custom_ui

    def test_monetization_policy_voluntary_with_share(self, symphony):
        policy = symphony.monetization_policy()
        assert policy["ads_mandatory"] is False
        assert 0 < policy["revenue_share"] < 1

    def test_deployment_options(self, symphony):
        options = symphony.deployment_options()
        assert "facebook" in options and "hosted" in options

    def test_structured_upload_probe(self, symphony, designer_account):
        report = symphony.upload_structured_data(
            designer_account,
            [{"title": "Halo", "price": "49.99"}],
            "probe_data",
        )
        assert report.inserted == 1
