"""Tests for repro.slo: budgets, burn alerts, recorder, attribution.

Covers the error-budget window math, the multi-window edge-triggered
burn alerting (including the determinism contract: identical runs give
identical alert timestamps), the tail-sampling flight recorder, the
per-query latency attributor, the runtime/platform wiring behind
``Symphony(slo=...)``, the autoscaler burn trigger, and the chaos-plan
expectations.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig
from repro.controlplane import Autoscaler
from repro.core.platform import Symphony
from repro.errors import NotFoundError
from repro.slo import (
    NULL_SLO,
    BurnRateAlerter,
    ErrorBudget,
    FlightRecord,
    FlightRecorder,
    SLOConfig,
    SLODefinition,
    SLOEngine,
    explain_spans,
)
from repro.telemetry import Telemetry

from tests.conftest import make_inventory_csv


LATENCY_SLO = SLODefinition(
    name="latency", kind="latency", objective=0.9,
    latency_threshold_ms=100.0, fast_window_ms=1_000,
    slow_window_ms=10_000, burn_threshold=2.0, min_events=4,
)


def build_slo_app(sym):
    """A primary + supplemental app on a platform; ``(app_id, games)``."""
    account = sym.register_designer("Ann")
    games = sym.web.entities["video_games"][:4]
    sym.upload_http(
        account, "inventory.csv", make_inventory_csv(games),
        "inventory", content_type="text/csv",
    )
    inventory = sym.add_proprietary_source(
        account, "inventory",
        search_fields=("title", "producer", "description"),
    )
    reviews = sym.add_web_source("Game reviews", "web")
    session = sym.designer().new_application(
        "GamerQueen", account.tenant.tenant_id
    )
    slot = session.drag_source_onto_app(
        inventory.source_id, heading="Games", max_results=2,
        search_fields=("title", "producer", "description"),
    )
    session.drag_source_onto_result_layout(
        slot, reviews.source_id, drive_fields=("title",),
        heading="Reviews", max_results=2, query_suffix="review",
    )
    return sym.host(session), games


# -- objectives and budgets ---------------------------------------------------


class TestSLODefinition:
    def test_judge_latency(self):
        assert LATENCY_SLO.judge(100.0, False, False, 1.0)
        assert not LATENCY_SLO.judge(100.1, False, False, 1.0)

    def test_errors_are_always_bad(self):
        for kind in ("latency", "availability", "completeness"):
            slo = SLODefinition(name="x", kind=kind, objective=0.9)
            assert not slo.judge(0.0, False, True, 1.0)

    def test_tenant_scoping(self):
        scoped = SLODefinition(name="x", kind="latency",
                               objective=0.9, tenant="app-1")
        assert scoped.matches("app-1")
        assert not scoped.matches("app-2")
        assert LATENCY_SLO.matches("anyone")

    def test_rejects_bad_kind_and_objective(self):
        with pytest.raises(ValueError):
            SLODefinition(name="x", kind="vibes")
        with pytest.raises(ValueError):
            SLODefinition(name="x", kind="latency", objective=1.0)

    def test_config_builds_three_defaults(self):
        slos = SLOConfig().build_slos()
        assert [s.kind for s in slos] == [
            "latency", "availability", "completeness"]

    def test_config_from_dict_with_explicit_slos(self):
        config = SLOConfig.from_dict({
            "burn_threshold": 3.0,
            "slos": [{"name": "gold", "kind": "latency",
                      "objective": 0.999, "tenant": "app-1"}],
        })
        (slo,) = config.build_slos()
        assert slo.tenant == "app-1"
        assert config.burn_threshold == 3.0


class TestErrorBudget:
    def test_burn_rate_is_bad_fraction_over_allowance(self):
        budget = ErrorBudget(LATENCY_SLO)
        for i in range(8):
            budget.record(now_ms=i, good=(i % 2 == 0))
        fast, slow = budget.burn_rates(now_ms=8)
        # 4 of 8 bad; objective 0.9 allows 10% -> burn 5.0.
        assert fast == pytest.approx(5.0)
        assert slow == pytest.approx(5.0)

    def test_windows_forget_old_events(self):
        budget = ErrorBudget(LATENCY_SLO)
        budget.record(now_ms=0, good=False)
        budget.record(now_ms=500, good=True)
        fast, slow = budget.burn_rates(now_ms=1_400)
        # The bad event at t=0 left the 1s fast window, not the 10s one.
        assert fast == 0.0
        assert slow == pytest.approx(5.0)
        fast, slow = budget.burn_rates(now_ms=50_000)
        assert (fast, slow) == (0.0, 0.0)

    def test_status_budget_consumption(self):
        budget = ErrorBudget(LATENCY_SLO)
        for i in range(10):
            budget.record(now_ms=i, good=(i != 0))
        status = budget.status(now_ms=10)
        assert status["events"] == 10
        assert status["bad"] == 1
        assert status["budget_consumed"] == pytest.approx(1.0)
        assert status["budget_remaining"] == 0.0


# -- burn-rate alerting -------------------------------------------------------


class TestBurnRateAlerter:
    def observe_n(self, alerter, budget, start_ms, count, good):
        for i in range(count):
            budget.record(start_ms + i, good)
            alerter.check(start_ms + i)

    def test_fires_only_after_min_events(self):
        budget = ErrorBudget(LATENCY_SLO)
        alerter = BurnRateAlerter(LATENCY_SLO, budget)
        self.observe_n(alerter, budget, 0, 3, good=False)
        assert not alerter.active     # 3 < min_events=4
        self.observe_n(alerter, budget, 10, 1, good=False)
        assert alerter.active
        assert [a["kind"] for a in alerter.alerts] == ["fire"]

    def test_edge_triggered_fire_then_clear(self):
        telemetry = Telemetry()
        budget = ErrorBudget(LATENCY_SLO)
        alerter = BurnRateAlerter(LATENCY_SLO, budget,
                                  events=telemetry.events,
                                  metrics=telemetry.metrics)
        self.observe_n(alerter, budget, 0, 6, good=False)
        assert alerter.active
        # Stays fired without duplicate transitions while still burning.
        assert len(alerter.fired()) == 1
        # Good traffic past the fast window clears the fast burn.
        self.observe_n(alerter, budget, 2_000, 8, good=True)
        assert not alerter.active
        kinds = [a["kind"] for a in alerter.alerts]
        assert kinds == ["fire", "clear"]
        assert telemetry.events.counts() == {
            "slo.burn": 1, "slo.burn_cleared": 1}

    def test_needs_both_windows_burning(self):
        # Seed the slow window with enough good history that its burn
        # stays under threshold even when the fast window is all bad.
        budget = ErrorBudget(LATENCY_SLO)
        alerter = BurnRateAlerter(LATENCY_SLO, budget)
        self.observe_n(alerter, budget, 0, 200, good=True)
        self.observe_n(alerter, budget, 9_000, 4, good=False)
        fast, slow = budget.burn_rates(9_010)
        assert fast >= LATENCY_SLO.burn_threshold
        assert slow < LATENCY_SLO.burn_threshold
        assert not alerter.active


# -- flight recorder ----------------------------------------------------------


def make_record(query_id, reasons=("slow",), latency=500.0):
    return FlightRecord(
        query_id=query_id, tenant="app-1", start_ms=0, end_ms=1,
        latency_ms=latency, degraded=False, errored=False,
        completeness=1.0, reasons=tuple(reasons),
    )


class TestFlightRecorder:
    def test_bounded_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(3):
            recorder.note_seen(True)
            recorder.record(make_record(f"q{i}"))
        assert [r.query_id for r in recorder.records] == ["q1", "q2"]
        assert recorder.stats.evicted == 1
        assert recorder.get("q0") is None
        assert recorder.get("q2").latency_ms == 500.0

    def test_breaching_excludes_clean_samples(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(make_record("bad", reasons=("slo:latency",)))
        recorder.record(make_record("ok", reasons=("sampled",)))
        assert [r.query_id for r in recorder.breaching()] == ["bad"]

    def test_clean_sampling_is_periodic(self):
        telemetry = Telemetry()
        engine = SLOEngine(telemetry, SLOConfig(
            latency_threshold_ms=1e9, completeness_floor=0.0,
            clean_sample_every=3,
        ))
        for __ in range(9):
            engine.observe(tenant="app-1", latency_ms=1.0)
        stats = engine.recorder.stats
        assert stats.clean_seen == 9
        assert stats.clean_retained == 3
        assert all(r.reasons == ("sampled",)
                   for r in engine.recorder.records)


# -- latency attribution ------------------------------------------------------


def span(trace_id, span_id, parent_id, name, start, end, **attrs):
    return {"trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, "name": name, "start_ms": start,
            "end_ms": end, "status": "ok", "attrs": attrs}


class TestExplain:
    def test_self_time_attribution_and_dominant(self):
        spans = [
            span("t1", "a", None, "query", 0, 100),
            span("t1", "b", "a", "stage:primary", 0, 20),
            span("t1", "c", "a", "cluster.search", 20, 95),
            span("t1", "d", "c", "exec:shard-2", 25, 90),
        ]
        attribution = explain_spans(spans)
        contributions = dict(attribution.contributions)
        assert attribution.total_ms == 100.0
        assert contributions["shard:2"] == 65.0
        assert contributions["cluster"] == 10.0
        assert contributions["runtime"] == 5.0
        assert attribution.dominant_label == "shard:2 65%"
        assert attribution.share("shard:2") == pytest.approx(0.65)

    def test_queue_wait_widens_denominator(self):
        spans = [
            span("t1", "a", None, "gateway", 100, 160,
                 queue_wait_ms=40.0),
            span("t1", "b", "a", "query", 100, 160),
        ]
        attribution = explain_spans(spans)
        contributions = dict(attribution.contributions)
        assert attribution.total_ms == 100.0  # 60 span + 40 queue
        assert contributions["queue_wait"] == 40.0
        assert attribution.dominant[0] == "runtime"

    def test_replica_and_gather_span_components(self):
        spans = [
            span("t1", "a", None, "query", 0, 50),
            span("t1", "b", "a", "attempt:shard-1/replica-0", 0, 10),
            span("t1", "c", "a", "gather:shard-1", 10, 50),
        ]
        contributions = dict(explain_spans(spans).contributions)
        assert contributions["shard:1 replica:0"] == 10.0
        assert contributions["shard:1"] == 40.0

    def test_overlapping_children_clamp_to_zero(self):
        # Scatter-gather children share the SimClock, so their summed
        # durations can exceed the parent's; self time clamps at 0.
        spans = [
            span("t1", "a", None, "query", 0, 10),
            span("t1", "b", "a", "stage:primary", 0, 10),
            span("t1", "c", "a", "stage:supplemental", 0, 10),
        ]
        attribution = explain_spans(spans)
        contributions = dict(attribution.contributions)
        assert contributions["runtime"] == 0.0
        assert attribution.total_ms == 10.0

    def test_no_spans(self):
        attribution = explain_spans([], query_id="missing")
        assert attribution.dominant_label == "(no spans)"
        assert attribution.to_dict()["contributions"] == []


# -- engine + platform integration --------------------------------------------


TIGHT = SLOConfig(latency_threshold_ms=200.0, fast_window_ms=60_000,
                  slow_window_ms=600_000, burn_threshold=3.0,
                  min_events=4)


def burn_scenario(tiny_web):
    """A clustered platform with shard 1 degraded; returns Symphony."""
    sym = Symphony(
        web=tiny_web, use_authority=False,
        cluster=ClusterConfig(num_shards=2, replicas_per_shard=1),
        slo=TIGHT, cache_enabled=False,
    )
    app_id, games = build_slo_app(sym)
    for index in range(8):
        for replica in sym.engine.groups[1].replicas:
            replica.inject_latency(400.0, 4)
        sym.query(app_id, games[index % len(games)],
                  session_id=f"t-{index}")
    return sym


class TestSLOEngineIntegration:
    def test_slo_implies_telemetry(self, tiny_web):
        sym = Symphony(web=tiny_web, use_authority=False, slo=True)
        assert sym.telemetry.enabled
        assert sym.slo.enabled
        assert sym.runtime._slo is sym.slo

    def test_burn_fires_and_recorder_retains(self, tiny_web):
        sym = burn_scenario(tiny_web)
        assert sym.slo.burning()
        assert {"slo": "latency", "tenant": ""} \
            in sym.slo.active_alerts()
        assert sym.slo.first_burn_ms() is not None
        breaching = sym.slo.recorder.breaching()
        assert breaching
        # Every breaching record carries its full span tree.
        assert all(r.spans for r in breaching)
        counters = sym.telemetry.metrics.snapshot()["counter"]
        assert counters["slo_burn_alerts_total{slo=latency}"] >= 1.0
        report = sym.slo_report()
        assert "BURNING" in report

    def test_explain_blames_the_degraded_shard(self, tiny_web):
        sym = burn_scenario(tiny_web)
        worst = sym.slo.worst_record()
        attribution = sym.explain_query(worst.query_id)
        assert attribution.share("shard:1") >= 0.5
        assert attribution.dominant_label.startswith("shard:1")

    def test_alert_timestamps_are_deterministic(self, tiny_web):
        first = burn_scenario(tiny_web).slo.alerts()
        second = burn_scenario(tiny_web).slo.alerts()
        assert first == second
        assert first  # the scenario actually alerted

    def test_errored_query_consumes_availability_budget(self,
                                                        tiny_web):
        sym = Symphony(web=tiny_web, use_authority=False, slo=True)
        with pytest.raises(NotFoundError):
            sym.query("nope", "anything")
        status = sym.slo.status()
        bad = {obj["slo"]: obj["bad"]
               for obj in status["objectives"]}
        assert bad["availability"] == 1
        (record,) = sym.slo.recorder.breaching()
        assert record.errored
        assert "error" in record.reasons

    def test_completeness_tracks_source_outcomes(self, tiny_web):
        sym = Symphony(web=tiny_web, use_authority=False, slo=True)
        app_id, games = build_slo_app(sym)
        response = sym.query(app_id, games[0])
        assert response.trace.completeness() == 1.0
        assert response.trace.sources_ok > 0

    def test_explain_unknown_query_returns_none(self, tiny_web):
        sym = Symphony(web=tiny_web, use_authority=False, slo=True)
        assert sym.explain_query("no-such-trace") is None


class TestNullPath:
    def test_default_platform_uses_null_slo(self, symphony):
        assert symphony.slo is NULL_SLO
        assert not symphony.slo.enabled
        assert symphony.runtime._slo is NULL_SLO
        assert symphony.slo.observe(tenant="x", latency_ms=1.0) is None
        assert "disabled" in symphony.slo_report()
        assert symphony.explain_query("anything") is None

    def test_null_slo_status_shape(self):
        status = NULL_SLO.status()
        assert status["observed"] == 0
        assert NULL_SLO.alerts() == []
        assert not NULL_SLO.burning()


# -- autoscaler hookup --------------------------------------------------------


class _BurningStub:
    def __init__(self, burning=True):
        self._burning = burning

    def burning(self):
        return self._burning


class TestAutoscalerBurnTrigger:
    def test_burn_credits_hottest_shard(self):
        scaler = Autoscaler(engine=None, lifecycle=None,
                            slo=_BurningStub())
        scaler._note_slo_burn({0: 10.0, 1: 50.0, 2: None})
        assert scaler._hot_rounds == {1: 1}

    def test_no_credit_when_not_burning(self):
        scaler = Autoscaler(engine=None, lifecycle=None,
                            slo=_BurningStub(burning=False))
        scaler._note_slo_burn({0: 10.0, 1: 50.0})
        assert scaler._hot_rounds == {}

    def test_no_slo_no_credit(self):
        scaler = Autoscaler(engine=None, lifecycle=None)
        scaler._note_slo_burn({0: 99.0})
        assert scaler._hot_rounds == {}

    def test_platform_wires_slo_into_autoscaler(self, tiny_web):
        sym = Symphony(
            web=tiny_web, use_authority=False,
            cluster=ClusterConfig(num_shards=2, replicas_per_shard=1),
            controlplane=True, slo=True,
        )
        assert sym.autoscaler.slo is sym.slo


# -- chaos plan ---------------------------------------------------------------


class TestChaosSLO:
    def test_slow_shard_plan_alerts_and_attributes(self):
        from repro.resilience.chaos import FaultPlan, run_chaos

        plan = FaultPlan(
            name="slo-test", seed=2028, queries=10,
            deadline_ms=1500.0, grace_ms=900.0,
            num_shards=2, replicas_per_shard=2,
            slow_shard=1, slow_shard_ms=500.0,
            slo={"latency_threshold_ms": 400.0,
                 "fast_window_ms": 60_000,
                 "slow_window_ms": 600_000,
                 "burn_threshold": 3.0, "min_events": 6,
                 "expect_burn": True,
                 "expect_dominant": "shard:1"},
        )
        report = run_chaos(plan)
        assert report.ok, report.violations
        assert report.slo_burn_alerts >= 1
        assert 0 < report.slo_detection_ms <= 60_000
        assert report.slo_dominant.startswith("shard:1")
        assert report.slo_breaching_retained > 0
        assert "slo burn alerts" in report.render()

    def test_unmet_expectation_is_a_violation(self):
        from repro.resilience.chaos import FaultPlan, run_chaos

        plan = FaultPlan(
            name="slo-clean", seed=2028, queries=6,
            deadline_ms=1500.0, grace_ms=900.0,
            num_shards=2, replicas_per_shard=2,
            slo={"expect_burn": True},   # nothing injected: no burn
        )
        report = run_chaos(plan)
        assert not report.ok
        assert any("expected a burn-rate alert" in v
                   for v in report.violations)
