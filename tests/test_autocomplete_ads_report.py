"""Tests for autocomplete, ad match types / negative keywords, the
designer dashboard, and cross-instance determinism."""

import pytest
from hypothesis import given, strategies as st

from repro.analytics.report import designer_dashboard
from repro.errors import ValidationError
from repro.searchengine.autocomplete import AutocompleteIndex
from repro.searchengine.logs import QueryEvent, QueryLog
from repro.services.ads import AdService


class TestAutocomplete:
    def make(self):
        index = AutocompleteIndex()
        index.add("halo review", 5)
        index.add("halo trailer", 3)
        index.add("halo", 10)
        index.add("zelda guide", 2)
        return index

    def test_prefix_completion_by_weight(self):
        index = self.make()
        completions = [c.text for c in index.complete("hal")]
        assert completions == ["halo", "halo review", "halo trailer"]

    def test_exact_entry_included(self):
        index = self.make()
        assert index.complete("halo review")[0].text == "halo review"

    def test_no_match(self):
        assert self.make().complete("wine") == []

    def test_count_limits(self):
        assert len(self.make().complete("hal", count=2)) == 2

    def test_weights_accumulate(self):
        index = AutocompleteIndex()
        index.add("halo")
        index.add("halo")
        assert index.complete("ha")[0].weight == 2

    def test_normalization(self):
        index = AutocompleteIndex()
        index.add("  Halo   Review ")
        assert index.complete("halo r")[0].text == "halo review"

    def test_empty_and_nonpositive_ignored(self):
        index = AutocompleteIndex()
        index.add("", 5)
        index.add("x", 0)
        assert len(index) == 0
        assert index.complete("") == []

    def test_from_query_log_scoped_by_app(self):
        log = QueryLog()
        for app_id, query in (("a", "halo"), ("a", "halo"),
                              ("b", "zelda")):
            log.log_query(QueryEvent(
                timestamp_ms=0, query=query, vertical="app",
                app_id=app_id,
            ))
        index = AutocompleteIndex.from_query_log(log, app_id="a")
        assert index.complete("h")[0].weight == 2
        assert index.complete("z") == []

    def test_seed_from_vocabulary(self, engine):
        index = AutocompleteIndex()
        added = index.seed_from_vocabulary(
            engine.vertical("web").index, "body", min_df=5
        )
        assert added > 0
        assert index.complete("gam")  # 'game' stems present

    @given(st.lists(st.sampled_from(
        ["halo", "halo review", "hal", "zeld", "zelda guide"]
    ), min_size=1, max_size=20))
    def test_every_added_entry_is_completable(self, entries):
        index = AutocompleteIndex()
        for entry in entries:
            index.add(entry)
        for entry in set(entries):
            texts = [c.text for c in index.complete(entry, count=50)]
            assert entry in texts


class TestAdMatchTypes:
    def make(self, **campaign_kwargs):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 100.0)
        ads.create_campaign(
            advertiser.advertiser_id, campaign_kwargs.pop(
                "keywords", ["halo game"]),
            0.50, "Ad", "http://a.example", **campaign_kwargs,
        )
        return ads

    def test_broad_matches_any_keyword(self):
        ads = self.make(match_type="broad")
        assert ads.select_ads("best halo ever", "app")
        assert ads.select_ads("game deals", "app")
        assert not ads.select_ads("wine tasting", "app")

    def test_phrase_requires_contiguous_order(self):
        ads = self.make(match_type="phrase")
        assert ads.select_ads("buy halo game now", "app")
        assert not ads.select_ads("game halo", "app")
        assert not ads.select_ads("halo best game", "app")

    def test_exact_requires_full_equality(self):
        ads = self.make(match_type="exact")
        assert ads.select_ads("halo game", "app")
        assert ads.select_ads("game halo", "app")  # order-insensitive
        assert not ads.select_ads("halo game cheap", "app")

    def test_negative_keywords_veto(self):
        ads = self.make(match_type="broad",
                        negative_keywords=["free"])
        assert ads.select_ads("halo deals", "app")
        assert not ads.select_ads("free halo download", "app")

    def test_negative_keywords_analyzed(self):
        # "reviews" stems to "review"; the negative must track that.
        ads = self.make(negative_keywords=["reviews"])
        assert not ads.select_ads("halo review", "app")

    def test_unknown_match_type_rejected(self):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 1.0)
        with pytest.raises(ValidationError):
            ads.create_campaign(advertiser.advertiser_id, ["x"], 0.1,
                                "H", "http://x.example",
                                match_type="fuzzy")

    def test_mixed_marketplace_auction(self):
        ads = AdService()
        advertiser = ads.create_advertiser("A", 100.0)
        ads.create_campaign(advertiser.advertiser_id, ["halo"],
                            0.30, "Broad", "http://b.example")
        ads.create_campaign(advertiser.advertiser_id, ["halo game"],
                            0.60, "Exact", "http://e.example",
                            match_type="exact")
        both = ads.select_ads("halo game", "app", count=2)
        assert [ad.headline for ad in both] == ["Exact", "Broad"]
        only_broad = ads.select_ads("halo news", "app", count=2)
        assert [ad.headline for ad in only_broad] == ["Broad"]


class TestDesignerDashboard:
    def test_dashboard_sections(self, gamerqueen):
        symphony, app_id, games = gamerqueen
        for game in games[:3]:
            response = symphony.query(app_id, game, session_id="s1")
            if response.views and response.views[0].item.url:
                symphony.record_click(
                    app_id, game, response.views[0].item.url,
                    session_id="s1",
                )
        text = designer_dashboard(symphony, app_id)
        for heading in ("[Traffic]", "[Top queries]",
                        "[Rising queries", "[Click-through by "
                        "position]", "[Clicked sites]",
                        "[Monetization]"):
            assert heading in text
        assert "queries: " in text

    def test_dashboard_empty_app(self, gamerqueen):
        symphony, app_id, __ = gamerqueen
        text = designer_dashboard(symphony, app_id)
        assert "(no recent activity)" in text or "Rising" in text


class TestDeterminism:
    def test_fresh_platforms_identical_results(self, tiny_web):
        from repro.core.platform import Symphony

        def build_and_query():
            symphony = Symphony(web=tiny_web, use_authority=False)
            account = symphony.register_designer("Ann")
            games = symphony.web.entities["video_games"][:3]
            from tests.conftest import make_inventory_csv
            symphony.upload_http(
                account, "inv.csv", make_inventory_csv(games),
                "inventory", content_type="text/csv",
            )
            inventory = symphony.add_proprietary_source(
                account, "inventory", ("title",))
            session = symphony.designer().new_application(
                "D", account.tenant.tenant_id)
            slot = session.drag_source_onto_app(
                inventory.source_id, search_fields=("title",))
            session.add_text(slot, "title")
            app_id = symphony.host(session)
            return symphony.query(app_id, games[0]).html

        assert build_and_query() == build_and_query()

    def test_engine_results_identical_across_instances(self, small_web):
        from repro.searchengine.engine import SearchOptions, \
            build_engine
        a = build_engine(small_web, use_authority=True)
        b = build_engine(small_web, use_authority=True)
        for query in ("game review", "wine", "breaking report"):
            ra = a.search("web", query, SearchOptions(count=10))
            rb = b.search("web", query, SearchOptions(count=10))
            assert ra.urls() == rb.urls()
            assert [r.score for r in ra.results] == \
                [r.score for r in rb.results]
