"""Tests for embed snippets, social publishing, and hosting routes."""

import pytest

from repro.core.application import (
    ApplicationDefinition,
    SourceBinding,
    SourceRole,
    SourceSlot,
)
from repro.core.distribution import (
    HostingRouter,
    Publisher,
    SnippetGenerator,
    SocialPlatform,
)
from repro.errors import NotFoundError, PublicationError


def app(app_id="app-1", name="GamerQueen"):
    return ApplicationDefinition(
        app_id=app_id, name=name, owner_tenant="t1",
        bindings=(SourceBinding("b1", "s1", SourceRole.PRIMARY),),
        slots=(SourceSlot(binding_id="b1"),),
    )


class TestSnippets:
    def test_snippet_contains_html_and_js(self):
        snippet = SnippetGenerator().generate(app())
        assert "<form" in snippet.html
        assert "XMLHttpRequest" in snippet.javascript
        assert "app-1" in snippet.javascript

    def test_snippet_targets_endpoint(self):
        generator = SnippetGenerator(endpoint="https://sym.example/api")
        snippet = generator.generate(app())
        assert "https://sym.example/api/apps/app-1/query" in \
            snippet.javascript

    def test_embed_key_unique_per_generation(self):
        generator = SnippetGenerator()
        a = generator.generate(app())
        b = generator.generate(app())
        assert a.embed_key != b.embed_key

    def test_combined_wraps_script(self):
        snippet = SnippetGenerator().generate(app())
        combined = snippet.combined()
        assert combined.startswith("<div")
        assert "<script>" in combined

    def test_container_id_from_app_name(self):
        snippet = SnippetGenerator().generate(app(name="Wine Cellar!"))
        assert 'id="symphony-wine-cellar"' in snippet.html


class TestSocialPlatform:
    def test_install_returns_canvas_url(self):
        platform = SocialPlatform("facebook")
        url = platform.install_app(app())
        assert url == "https://facebook.example/apps/gamerqueen"

    def test_reinstall_same_app_idempotent(self):
        platform = SocialPlatform("facebook")
        platform.install_app(app())
        platform.install_app(app())  # same app id, fine
        assert len(platform.installed_apps()) == 1

    def test_slug_collision_rejected(self):
        platform = SocialPlatform("facebook")
        platform.install_app(app(app_id="a1"))
        with pytest.raises(PublicationError):
            platform.install_app(app(app_id="a2"))


class TestPublisher:
    def test_embed_records_publication(self):
        publisher = Publisher()
        snippet = publisher.embed_on_site(app(),
                                          "http://gamerqueen.example")
        pubs = publisher.publications_for("app-1")
        assert len(pubs) == 1
        assert pubs[0].target == "web"
        assert pubs[0].embed_key == snippet.embed_key

    def test_publish_to_platform(self):
        publisher = Publisher()
        publisher.register_platform(SocialPlatform("facebook"))
        publication = publisher.publish_to_platform(app(), "facebook")
        assert publication.target == "facebook"
        assert "facebook.example" in publication.location

    def test_unknown_platform(self):
        with pytest.raises(NotFoundError):
            Publisher().publish_to_platform(app(), "myspace")


class TestRouter:
    def test_mount_and_resolve(self):
        router = HostingRouter()
        path = router.mount(app())
        assert router.resolve(path) == "app-1"

    def test_unmounted_path(self):
        with pytest.raises(NotFoundError):
            HostingRouter().resolve("/apps/ghost/query")

    def test_embed_key_enforced_once_registered(self):
        router = HostingRouter()
        path = router.mount(app(), embed_key="key-1")
        assert router.resolve(path, "key-1") == "app-1"
        with pytest.raises(PublicationError):
            router.resolve(path, "wrong-key")

    def test_open_access_before_keys_registered(self):
        router = HostingRouter()
        path = router.mount(app())
        assert router.resolve(path, "anything") == "app-1"

    def test_mounted_paths_listing(self):
        router = HostingRouter()
        router.mount(app(app_id="a1"))
        router.mount(app(app_id="a2"))
        assert router.mounted_paths() == [
            "/apps/a1/query", "/apps/a2/query"
        ]
